//! PyPerf end-to-end Python stack reconstruction (§4, Figure 5).
//!
//! Shows how PyPerf merges the sampled CPython system stack with the
//! interpreter's virtual call stack to produce a precise end-to-end trace —
//! and what the Scalene-style approximation loses.
//!
//! Run with: `cargo run --example pyperf_stacks`

use fbdetect::profiler::pyperf::{
    reconstruct, scalene_view, synthesize_stacks, CapturedStacks, MergedFrame, NativeFrame,
    VcsFrame,
};

fn main() {
    // A Python request handler that ends up inside a native zlib call.
    let captured = synthesize_stacks(
        &[
            "wsgi_app",
            "handle_request",
            "render_response",
            "compress_body",
        ],
        Some("zlib_deflate"),
    );

    println!("--- sampled system stack (what eBPF sees) ---");
    for f in &captured.system {
        match f {
            NativeFrame::Start => println!("  _start"),
            NativeFrame::CPythonInternal(n) => println!("  [cpython] {n}"),
            NativeFrame::PyEvalFrameDefault => println!("  _PyEval_EvalFrameDefault"),
            NativeFrame::CLibrary(n) => println!("  [native] {n}"),
        }
    }

    println!("\n--- virtual call stack (walked from its head) ---");
    for f in &captured.vcs {
        println!("  {} @ {}", f.function, f.source);
    }

    let merged = reconstruct(&captured).expect("well-formed capture");
    println!("\n--- PyPerf merged end-to-end stack ---");
    for f in &merged {
        match f {
            MergedFrame::Native(n) => println!("  [native] {n}"),
            MergedFrame::Python(n) => println!("  [python] {n}"),
        }
    }

    let (python_only, native_attributed) = scalene_view(&captured);
    println!("\n--- Scalene-style approximation ---");
    for f in &python_only {
        println!("  [python] {f}");
    }
    println!(
        "  (native leaf time {}: the zlib frame itself is invisible)",
        if native_attributed {
            "folded into compress_body"
        } else {
            "absent"
        }
    );

    // A malformed capture (VCS out of sync) is rejected, not misattributed.
    let broken = CapturedStacks {
        system: captured.system.clone(),
        vcs: vec![VcsFrame {
            function: "only_one".to_string(),
            source: "x.py:1".to_string(),
        }],
    };
    assert!(reconstruct(&broken).is_err());
    println!("\nmalformed VCS is rejected rather than misattributed ✓");
}
