//! Capacity Triage (CT): throughput-regression detection with relative
//! thresholds (§3, Table 1 last three rows).
//!
//! CT watches per-server maximum throughput (supply side) and total peak
//! requests (demand side). A drop in max throughput or an unexpected rise
//! in demand is a regression at a 5% *relative* threshold. This example
//! benchmarks a synthetic service's supply series, injects a 12% supply
//! regression, and shows CT catching it while ignoring a 2% wiggle.
//!
//! Run with: `cargo run --example capacity_triage`

use fbdetect::core::{report, DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::spec::{Event, SeriesSpec};
use fbdetect::tsdb::window::{DAY, HOUR};
use fbdetect::tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};

fn main() {
    let store = TsdbStore::new();
    // Nine days of hourly Kraken-style max-throughput benchmarks.
    let len = 9 * 24;
    let cadence = HOUR;

    // Service A: per-server max throughput drops 12% on day 8 (supply
    // regression — e.g. a slow code path shipped).
    let supply_regressed = SeriesSpec::flat(len, 1_000.0, 12.0).with_event(Event::Step {
        at: 8 * 24,
        delta: -120.0,
    });
    let id_a = SeriesId::new("serviceA", MetricKind::Throughput, "max-per-server");
    store.insert_series(
        id_a.clone(),
        TimeSeries::from_values(0, cadence, &supply_regressed.generate(1).unwrap()),
    );

    // Service B: an innocuous 2% wiggle, below the 5% relative threshold.
    let supply_ok = SeriesSpec::flat(len, 800.0, 10.0).with_event(Event::Step {
        at: 8 * 24,
        delta: -16.0,
    });
    let id_b = SeriesId::new("serviceB", MetricKind::Throughput, "max-per-server");
    store.insert_series(
        id_b.clone(),
        TimeSeries::from_values(0, cadence, &supply_ok.generate(2).unwrap()),
    );

    // CT-supply (short) configuration: 7d historic, 1d analysis, 1d
    // extended, 5% relative threshold. The analysis window must contain the
    // step, so we scan at the end of day 9.
    let windows = WindowConfig {
        historic: 7 * DAY,
        analysis: DAY,
        extended: 0,
        rerun_interval: 12 * HOUR,
    };
    let config = DetectorConfig::new("CT-supply (short)", windows, Threshold::Relative(0.05));
    let mut pipeline = Pipeline::new(config).unwrap();
    let now = len as u64 * cadence;
    let outcome = pipeline
        .scan(&store, &[id_a, id_b], now, &ScanContext::default())
        .unwrap();

    println!("CT-supply scan of 2 services:");
    println!("  change points: {}", outcome.funnel.change_points);
    println!("  reported     : {}\n", outcome.reports.len());
    print!("{}", report::render_batch(&outcome.reports, None));

    assert_eq!(
        outcome.reports.len(),
        1,
        "only the 12% drop is a regression"
    );
    assert_eq!(outcome.reports[0].series.service, "serviceA");
    // Throughput series are negated internally so a drop reads as an
    // increase; the relative change reported is the supply loss.
    println!(
        "serviceA supply regression: {:.1}% relative",
        outcome.reports[0].relative_change().abs() * 100.0
    );
}
