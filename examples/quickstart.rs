//! Quickstart: detect a step regression in a single gCPU series.
//!
//! Builds a time series with an injected 0.01 (absolute gCPU) step, runs
//! one pipeline scan, and prints the resulting report.
//!
//! Run with: `cargo run --example quickstart`

use fbdetect::core::{report, DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::spec::{Event, SeriesSpec};
use fbdetect::tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};

fn main() {
    // 1. Synthesize a gCPU series: base 1% gCPU, noise, step +1% at sample
    //    380 of 450 (inside the analysis window).
    let spec = SeriesSpec::flat(450, 0.010, 0.001).with_event(Event::Step {
        at: 380,
        delta: 0.010,
    });
    let values = spec.generate(42).expect("valid spec");

    // 2. Load it into the store at a 10-second cadence.
    let store = TsdbStore::new();
    let id = SeriesId::new("my-service", MetricKind::GCpu, "request_handler");
    store.insert_series(id.clone(), TimeSeries::from_values(0, 10, &values));

    // 3. Configure the detector: 3000s historic, 1000s analysis, 500s
    //    extended window, 0.5% absolute threshold.
    let windows = WindowConfig {
        historic: 3_000,
        analysis: 1_000,
        extended: 500,
        rerun_interval: 500,
    };
    let config = DetectorConfig::new("quickstart", windows, Threshold::Absolute(0.005));
    let mut pipeline = Pipeline::new(config).expect("valid config");

    // 4. Scan at t = 4500 (the end of the series).
    let outcome = pipeline
        .scan(&store, &[id], 4_500, &ScanContext::default())
        .expect("scan succeeds");

    // 5. Report.
    println!("--- funnel ---");
    println!("change points detected : {}", outcome.funnel.change_points);
    println!(
        "after went-away filter : {}",
        outcome.funnel.after_went_away
    );
    println!(
        "after seasonality      : {}",
        outcome.funnel.after_seasonality
    );
    println!(
        "after threshold        : {}",
        outcome.funnel.after_threshold
    );
    println!("final reports          : {}", outcome.reports.len());
    println!();
    print!("{}", report::render_batch(&outcome.reports, None));
    assert_eq!(outcome.reports.len(), 1, "the injected step must be caught");
}
