//! The headline result: detecting a 0.005% CPU regression (§2).
//!
//! Reproduces the feasibility argument of Figures 1(a), 2, and 3:
//!
//! 1. on a single server the 0.005% shift is invisible (SNR ≈ 0);
//! 2. averaging process-level CPU across m servers reveals it only at
//!    absurd fleet sizes (tens of millions);
//! 3. subroutine-level measurement (k = 1000 subroutines) reaches the same
//!    signal-to-noise with 1000× fewer servers.
//!
//! Run with: `cargo run --release --example tiny_regression`

use fbdetect::fleet::lln::{
    averaged_fleet_series, averaged_subroutine_series, shift_signal_to_noise, FIGURE2_POPULATIONS,
};
use fbdetect::stats::{cusum, hypothesis};

fn main() {
    let len = 1_000;
    let change_at = len / 2;

    println!("injected regression: 0.003%/0.007% across two server generations\n");

    // --- Figure 1(a): a single server. ---
    let single = averaged_fleet_series(&FIGURE2_POPULATIONS, 1, len, change_at, 1, u64::MAX)
        .expect("valid populations");
    let snr = shift_signal_to_noise(&single, change_at).unwrap();
    println!("single server        : signal-to-noise = {snr:+.3}  (invisible)");

    // --- Figure 2: process-level averaging across m servers. ---
    println!("\nprocess-level averages (Figure 2):");
    for m in [500_000u64, 5_000_000, 50_000_000] {
        let avg = averaged_fleet_series(&FIGURE2_POPULATIONS, m, len, change_at, 2, 2_000)
            .expect("valid populations");
        let snr = shift_signal_to_noise(&avg, change_at).unwrap();
        let verdict = if snr > 2.0 {
            "detectable"
        } else {
            "buried in noise"
        };
        println!("  m = {m:>11}: SNR = {snr:5.2}  ({verdict})");
    }

    // --- Figure 3: subroutine-level averaging, k = 1000. ---
    println!("\nsubroutine-level averages, k = 1000 (Figure 3):");
    for m in [500u64, 5_000, 50_000] {
        let avg =
            averaged_subroutine_series(&FIGURE2_POPULATIONS, 1_000, m, len, change_at, 3, 2_000)
                .expect("valid populations");
        let snr = shift_signal_to_noise(&avg, change_at).unwrap();
        let verdict = if snr > 2.0 {
            "detectable"
        } else {
            "buried in noise"
        };
        println!("  m = {m:>11}: SNR = {snr:5.2}  ({verdict})");
    }

    // --- Statistical confirmation at the practical scale. ---
    let avg = averaged_subroutine_series(
        &FIGURE2_POPULATIONS,
        1_000,
        50_000,
        len,
        change_at,
        4,
        2_000,
    )
    .unwrap();
    let cp = cusum::detect_change_point(&avg).unwrap();
    let test = hypothesis::likelihood_ratio_test(&avg, cp.index, 0.01).unwrap();
    println!(
        "\nCUSUM locates the change at index {} (true: {change_at}); \
         likelihood-ratio p = {:.2e} -> regression confirmed",
        cp.index, test.p_value
    );
    assert!(test.reject_null);
    assert!((cp.index as i64 - change_at as i64).unsigned_abs() < 50);
}
