//! Fault tolerance: a scan survives corrupt series and a buggy detector.
//!
//! Builds a small fleet where some collectors are broken — one series is
//! empty, one is drowned in NaNs, one panics the detector itself — next to
//! a healthy series with a real 5% step. A monitoring run completes
//! anyway: the step is reported, the faulted series are quarantined with
//! exponential backoff, and `ScanHealth` accounts for every series. A
//! final scan with a zero deadline shows graceful degradation.
//!
//! Run with: `cargo run --example fault_tolerance`

use std::sync::Arc;
use std::time::Duration;

use fbdetect::core::scheduler::MonitoringScheduler;
use fbdetect::core::{DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::{DataFault, DataFaultKind, Event, SeriesSpec};
use fbdetect::tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};

fn id(target: &str) -> SeriesId {
    SeriesId::new("svc", MetricKind::GCpu, target)
}

fn main() {
    use rand::SeedableRng;
    let store = TsdbStore::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // A healthy series with a 5% step at t=5200.
    let spec = SeriesSpec {
        interval: 10,
        ..SeriesSpec::flat(820, 1.0, 0.005)
    }
    .with_event(Event::Step { at: 520, delta: 0.05 });
    let values = spec.generate(1).expect("valid spec");
    store.insert_series(id("healthy"), TimeSeries::from_values(0, 10, &values));

    // A collector that stopped reporting: the series is empty.
    store.insert_series(id("silent"), TimeSeries::new());

    // A collector emitting a NaN burst across the whole range.
    let flat = SeriesSpec {
        interval: 10,
        ..SeriesSpec::flat(820, 1.0, 0.005)
    }
    .generate(2)
    .expect("valid spec");
    let samples: Vec<(u64, f64)> = flat
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u64 * 10, v))
        .collect();
    let nan_fault = DataFault {
        kind: DataFaultKind::NaNBurst,
        start: 0,
        duration: 10_000,
        intensity: 0.95,
    };
    let corrupted = nan_fault.apply(&mut rng, &samples);
    store.insert_series(
        id("noisy"),
        TimeSeries::from_pairs(corrupted).expect("sorted samples"),
    );

    // A series that is fine — but the detector panics on it (a bug).
    store.insert_series(
        id("cursed"),
        TimeSeries::from_values(0, 10, &flat),
    );

    let config = DetectorConfig::new(
        "fault-tolerance",
        WindowConfig {
            historic: 3_000,
            analysis: 1_000,
            extended: 500,
            rerun_interval: 500,
        },
        Threshold::Absolute(0.02),
    );
    let mut scheduler = MonitoringScheduler::new(Pipeline::new(config).expect("valid config"));
    scheduler
        .pipeline_mut()
        .set_chaos_hook(Arc::new(|sid: &SeriesId| {
            assert!(sid.target != "cursed", "simulated detector bug");
        }));

    let series = [id("healthy"), id("silent"), id("noisy"), id("cursed")];
    let outcome = scheduler
        .run(&store, &series, 5_000, 8_000, &ScanContext::default())
        .expect("faults are isolated; the run completes");

    println!("scans: {}", outcome.scans);
    println!("reports: {}", outcome.reports.len());
    for r in &outcome.reports {
        println!(
            "  {} changed {:+.2}% at t={}",
            r.regression.series.target,
            r.regression.relative_change() * 100.0,
            r.regression.change_time
        );
    }
    let h = &outcome.health;
    println!(
        "health: total={} scanned={} skipped={} quarantined={} panicked={} degraded={}",
        h.series_total, h.series_scanned, h.series_skipped, h.series_quarantined, h.panicked, h.degraded
    );
    println!("quarantine after the run:");
    for sid in &series[1..] {
        if let Some(entry) = scheduler.pipeline().quarantine().entry(sid) {
            println!(
                "  {}: {:?} ({} consecutive failures) — {}",
                sid.target, entry.kind, entry.consecutive_failures, entry.detail
            );
        }
    }

    // An impossible deadline: the expensive stages are shed, the scan
    // still ships the thresholded candidates.
    scheduler.pipeline_mut().budget.deadline = Some(Duration::ZERO);
    scheduler.pipeline_mut().clear_chaos_hook();
    let mut pipeline = Pipeline::new(DetectorConfig::new(
        "degraded",
        WindowConfig {
            historic: 3_000,
            analysis: 1_000,
            extended: 500,
            rerun_interval: 500,
        },
        Threshold::Absolute(0.02),
    ))
    .expect("valid config");
    pipeline.budget.deadline = Some(Duration::ZERO);
    let degraded = pipeline
        .scan(&store, &series, 6_000, &ScanContext::default())
        .expect("degrades instead of failing");
    println!(
        "zero-deadline scan: degraded={} stages_skipped={:?} reports={}",
        degraded.health.degraded,
        degraded.health.stages_skipped,
        degraded.reports.len()
    );
}
