//! Continuous monitoring with the re-run scheduler: detection latency and
//! planned-change suppression.
//!
//! Simulates a service under continuous scanning (Table 1's re-run
//! intervals). Two events happen: an operator-registered capacity drain
//! (expected CPU increase — suppressed per §8's planned-change
//! correlation) and a genuine code regression (reported, with detection
//! latency measured).
//!
//! Run with: `cargo run --release --example continuous_monitoring`

use fbdetect::core::known_changes::PlannedChange;
use fbdetect::core::scheduler::MonitoringScheduler;
use fbdetect::core::{DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::spec::{Event, SeriesSpec};
use fbdetect::tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};

fn main() {
    let store = TsdbStore::new();
    let cadence = 10u64;
    let len = 1_200usize; // 12,000 seconds of data.

    // The service's gCPU series: a genuine regression at t = 9,000.
    let hot = SeriesSpec::flat(len, 0.010, 0.0008).with_event(Event::Step {
        at: 900,
        delta: 0.012,
    });
    let hot_id = SeriesId::new("web", MetricKind::GCpu, "checkout::submit");
    store.insert_series(
        hot_id.clone(),
        TimeSeries::from_values(0, cadence, &hot.generate(1).unwrap()),
    );

    // Service CPU: rises at t = 6,000 because of a *planned* capacity
    // drain (fewer servers, same load).
    let cpu = SeriesSpec::flat(len, 0.50, 0.01).with_event(Event::Step {
        at: 600,
        delta: 0.10,
    });
    let cpu_id = SeriesId::new("web", MetricKind::Cpu, "");
    store.insert_series(
        cpu_id.clone(),
        TimeSeries::from_values(0, cadence, &cpu.generate(2).unwrap()),
    );

    let config = DetectorConfig::new(
        "web",
        WindowConfig {
            historic: 4_000,
            analysis: 1_200,
            extended: 600,
            rerun_interval: 600,
        },
        Threshold::Absolute(0.005),
    );
    let mut scheduler = MonitoringScheduler::new(Pipeline::new(config).unwrap());
    scheduler.planned_changes_mut().register(PlannedChange {
        description: "planned capacity drain: web tier -15%".to_string(),
        start: 5_500,
        end: 7_000,
        services: vec!["web".to_string()],
        metrics: vec![MetricKind::Cpu],
        expect_increase: Some(true),
    });

    let outcome = scheduler
        .run(
            &store,
            &[hot_id, cpu_id],
            6_000,
            12_000,
            &ScanContext::default(),
        )
        .unwrap();

    println!("scans performed : {}", outcome.scans);
    println!("change points   : {}", outcome.funnel.change_points);
    println!("suppressed      : {}", outcome.suppressed.len());
    for (r, why) in &outcome.suppressed {
        println!("  - {} explained by \"{why}\"", r.metric_id());
    }
    println!("reported        : {}", outcome.reports.len());
    for r in &outcome.reports {
        println!(
            "  - {} at t={} (detection latency {}s, magnitude {:+.4})",
            r.regression.metric_id(),
            r.regression.change_time,
            r.detection_latency,
            r.regression.magnitude()
        );
    }
    if let Some(latency) = outcome.median_latency() {
        println!("median detection latency: {latency}s");
    }

    // The capacity drain is suppressed; the code regression is reported.
    assert_eq!(outcome.reports.len(), 1);
    assert!(outcome.reports[0]
        .regression
        .metric_id()
        .contains("checkout"));
    assert!(
        outcome
            .suppressed
            .iter()
            .any(|(r, _)| r.series.metric == MetricKind::Cpu),
        "the planned capacity change should be suppressed, not reported"
    );
}
