//! FrontFaaS-style monitoring: a full service simulation end to end.
//!
//! Simulates a serverless-platform service — a weighted call graph sampled
//! by a fleet-wide profiler, background change traffic, an injected true
//! regression blamed on a specific commit, a cost-shift refactor, and
//! transient issues — then runs the detection pipeline and prints which
//! regressions survive and what root causes are suggested.
//!
//! Run with: `cargo run --release --example frontfaas_monitoring`

use fbdetect::changelog::{ChangeLog, ChangeTrafficConfig, ChangeTrafficGenerator};
use fbdetect::core::cost_shift::{ClassDomain, CostDomainProvider, UpstreamCallerDomain};
use fbdetect::core::{report, DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::server::Fleet;
use fbdetect::fleet::transient::{TransientIssue, TransientKind};
use fbdetect::fleet::{ServiceSim, ServiceSimConfig};
use fbdetect::profiler::callgraph::CallGraphBuilder;
use fbdetect::tsdb::{TsdbStore, WindowConfig};

fn main() {
    // --- Build the service: a dispatch tree with named subsystems. ---
    let mut b = CallGraphBuilder::new("main", 0.01);
    let dispatch = b.add_child(0, "dispatch", 0.01, "Runtime").unwrap();
    let render = b
        .add_child(dispatch, "Render::page", 0.30, "Render")
        .unwrap();
    b.add_child(render, "Render::header", 0.10, "Render")
        .unwrap();
    let body = b.add_child(render, "Render::body", 0.20, "Render").unwrap();
    b.add_child(body, "Render::widgets", 0.08, "Render")
        .unwrap();
    let data = b.add_child(dispatch, "Data::fetch", 0.20, "Data").unwrap();
    b.add_child(data, "Data::cache_lookup", 0.12, "Data")
        .unwrap();
    let serialize = b.add_child(data, "Data::serialize", 0.05, "Data").unwrap();
    b.add_child(dispatch, "Auth::check", 0.08, "Auth").unwrap();
    let log_frame = b.add_child(dispatch, "Log::write", 0.06, "Log").unwrap();
    let graph = b.build().unwrap();

    // --- Fleet and simulator. ---
    let fleet = Fleet::two_generations(200).unwrap();
    let sim_config = ServiceSimConfig {
        name: "FrontFaaS".to_string(),
        tick_interval: 60,
        samples_per_tick: 4_000,
        base_cpu: 0.5,
        ..Default::default()
    };
    let mut sim = ServiceSim::new(sim_config, graph.clone(), fleet).unwrap();

    // --- Change traffic with two planted culprits. ---
    let mut log = ChangeLog::new();
    let mut traffic = ChangeTrafficGenerator::new(
        ChangeTrafficConfig {
            service: "FrontFaaS".to_string(),
            changes_per_day: 200.0,
            subroutine_pool: graph.names().iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        },
        7,
    );
    let day = 86_400;
    traffic.generate_background(&mut log, 0, day);
    // A true regression: Data::serialize gets 60% more expensive at t=68000.
    let culprit = traffic.plant_culprit(
        &mut log,
        67_900,
        &["Data::serialize"],
        Some("Switch serializer to schema-validating mode"),
    );
    sim.inject_regression(serialize, 68_000, 0.03, culprit)
        .unwrap();
    // A cost shift: work moves from Log::write to Render::widgets (a
    // refactor) — the pipeline must NOT report this.
    let refactor = traffic.plant_culprit(
        &mut log,
        67_900,
        &["Log::write", "Render::widgets"],
        Some("Move inline logging into widget renderer"),
    );
    let widgets = graph.frame_by_name("Render::widgets").unwrap();
    sim.inject_cost_shift(log_frame, widgets, 68_000, 0.03, refactor)
        .unwrap();
    // A transient load spike that recovers — must be filtered.
    sim.transients_mut().add(TransientIssue {
        kind: TransientKind::LoadSpike,
        start: 50_000,
        duration: 1_800,
        severity: 0.8,
    });

    // --- Run one day of simulation. ---
    println!(
        "simulating one day of FrontFaaS ({} frames)...",
        graph.len()
    );
    let store = TsdbStore::new();
    sim.run(&store, 0, day).unwrap();
    println!("stored {} series", store.series_count());

    // --- Detect. ---
    let windows = WindowConfig {
        historic: 16 * 3_600,
        analysis: 4 * 3_600,
        extended: 2 * 3_600,
        rerun_interval: 2 * 3_600,
    };
    let config = DetectorConfig::new("FrontFaaS", windows, Threshold::Absolute(0.005));
    let mut pipeline = Pipeline::new(config).unwrap();
    let upstream = UpstreamCallerDomain { graph: &graph };
    let class = ClassDomain { graph: &graph };
    let providers: Vec<&dyn CostDomainProvider> = vec![&upstream, &class];
    let context = ScanContext {
        changelog: Some(&log),
        samples: Some(sim.retained_samples()),
        graph: Some(&graph),
        domain_providers: providers,
    };
    let ids = store.series_ids_for_service("FrontFaaS");
    let outcome = pipeline.scan(&store, &ids, day, &context).unwrap();

    println!("\n--- funnel (of {} series) ---", ids.len());
    println!("change points   : {}", outcome.funnel.change_points);
    println!("after went-away : {}", outcome.funnel.after_went_away);
    println!("after seasonal  : {}", outcome.funnel.after_seasonality);
    println!("after threshold : {}", outcome.funnel.after_threshold);
    println!("after SOM dedup : {}", outcome.funnel.after_som_dedup);
    println!("after cost-shift: {}", outcome.funnel.after_cost_shift);
    println!("after pairwise  : {}", outcome.funnel.after_pairwise_dedup);
    println!("\n{}", report::render_batch(&outcome.reports, Some(&log)));

    // The serializer regression must be reported; the cost shift must not.
    let reported: Vec<String> = outcome
        .reports
        .iter()
        .map(|r| r.series.target.clone())
        .collect();
    assert!(
        reported.iter().any(|t| t.contains("serialize")
            || t.contains("Data::fetch")
            || t.contains("dispatch")),
        "the serializer regression chain should be reported, got {reported:?}"
    );
    println!("culprit change id: #{culprit} — suggested candidates shown above");
}
