//! Offline facade for `serde`.
//!
//! Re-exports the workspace's no-op derive macros so `use serde::{
//! Serialize, Deserialize }` and `#[derive(Serialize, Deserialize)]`
//! compile without the real crate. No serialization machinery exists —
//! nothing in-tree performs serialization; the derives only mark types
//! as intended-serializable for future consumers.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
