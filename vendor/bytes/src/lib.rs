//! Offline stand-in for the `bytes` crate: contiguous byte buffers with
//! the `Bytes` / `BytesMut` / `BufMut` API surface this workspace uses.
//! Backed by plain `Vec<u8>` (cheap clones via `Arc` are not needed here).

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian append operations (the subset of `bytes::BufMut` in use).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(7);
        buf.put_u8(1);
        buf.put_u16(258);
        buf.put_u64(u64::MAX);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 4 + 1 + 2 + 8 + 2);
        assert_eq!(&frozen[..4], &[0, 0, 0, 7]);
        assert_eq!(frozen[4], 1);
        assert_eq!(&frozen[5..7], &[1, 2]);
        assert_eq!(&frozen[15..], b"xy");
    }

    #[test]
    fn bytes_equality_and_deref() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        let slice: &[u8] = &a;
        assert_eq!(slice.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
