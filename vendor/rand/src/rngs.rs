//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not the same algorithm (or stream) as upstream `rand`'s `StdRng`, but a
/// well-tested generator with 256 bits of state — more than adequate for
/// simulation and property testing.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point for xoshiro; nudge it.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

/// Alias: the small-footprint generator is the same engine here.
pub type SmallRng = StdRng;
