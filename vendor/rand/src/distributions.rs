//! Distributions: [`Standard`] primitives and [`WeightedIndex`].

use crate::{RngCore, SampleUniform};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, the full range for integers, fair coin for bool).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Error from [`WeightedIndex::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were provided.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` proportionally to a weight vector, via binary
/// search over the cumulative weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex<W> {
    cumulative: Vec<W>,
    total: W,
}

impl WeightedIndex<f64> {
    /// Builds the sampler from an iterator of non-negative weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *std::borrow::Borrow::borrow(&w);
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let needle = f64::sample_half_open(0.0, self.total, rng);
        self.cumulative.partition_point(|&c| c <= needle).min(self.cumulative.len() - 1)
    }
}

/// `rand::distributions::uniform` compatibility: re-export of the trait
/// that range sampling is keyed on.
pub mod uniform {
    pub use crate::SampleUniform;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_proportions() {
        let dist = WeightedIndex::new([1.0, 3.0, 0.0, 6.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[0] as f64 / 20_000.0 - 0.1).abs() < 0.02);
        assert!((counts[3] as f64 / 20_000.0 - 0.6).abs() < 0.02);
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new([1.0, -1.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([f64::NAN]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }
}
