//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`Rng::gen_range`] / [`Rng::gen`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`distributions::WeightedIndex`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and of
//! ample quality for simulation and testing (it is *not* the same stream as
//! upstream `rand`, so seeds produce different but equally valid data).

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, Standard};

/// Low-level entropy source: 32/64-bit outputs and byte fills.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from the given range.
    ///
    /// Panics when the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // without rejection is irrelevant at test scale.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                low.wrapping_add((wide >> 64) as $ty)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                if low == <$ty>::MIN && high == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                let span = (high as i128 - low as i128) as u128 + 1;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                low.wrapping_add((wide >> 64) as $ty)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                let v = low + (high - low) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= high { low } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as $ty / ((1u64 << 53) - 1) as $ty;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of U(0,1) ~ 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
