//! Offline stand-in for `parking_lot`: std locks with the poison handling
//! hidden. `parking_lot` locks are not poisoned by panics; this shim
//! matches that by recovering the inner guard when a std lock is poisoned
//! — fitting, since the scan supervisor intentionally survives panicking
//! worker threads that may hold these locks.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with the `parking_lot` API (no `Result` returns).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A mutex with the `parking_lot` API (no `Result` returns).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn survives_poisoning() {
        let lock = Arc::new(RwLock::new(5));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*lock.read(), 5);
    }
}
