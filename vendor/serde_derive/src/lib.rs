//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives serde traits on a few data types for downstream
//! consumers, but nothing in-tree serializes them and the real `serde`
//! crate is unavailable offline. These derives accept the same attribute
//! grammar (`#[serde(...)]` is tolerated as inert) and expand to nothing,
//! so the derive sites compile unchanged.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
