//! Offline minimal `criterion`.
//!
//! Provides just enough of the criterion API for the workspace's benches
//! to build and run without the real crate: `Criterion::bench_function`,
//! benchmark groups, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! mean-of-samples timer — adequate for relative stage-cost comparisons,
//! with none of criterion's statistical analysis.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// How batched inputs are sized (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` over inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.iterations == 0 {
            Duration::ZERO
        } else {
            self.total / self.iterations as u32
        }
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        println!(
            "bench {name:<40} {:>12.3?} /iter ({} iters)",
            bencher.mean(),
            bencher.iterations
        );
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.criterion.bench_function(&format!("  {name}"), f);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group: a function wiring targets to a configured
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        let mut group = c.benchmark_group("grp");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
