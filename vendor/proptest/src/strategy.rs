//! Value-generation strategies.

use crate::{sample_usize, TestRng, UniformSample};
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking; a
/// strategy simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying up to a bounded
    /// number of draws (then returning the last candidate regardless —
    /// the mini-harness has no global rejection accounting).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        let mut candidate = self.inner.new_value(rng);
        for _ in 0..100 {
            if (self.pred)(&candidate) {
                break;
            }
            candidate = self.inner.new_value(rng);
        }
        candidate
    }
}

impl<T: UniformSample> Strategy for Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: UniformSample> Strategy for RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

/// Types with a natural "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: arbitrary bit patterns (NaN, inf) are rarely
        // what a property over "any float" means in these tests.
        rng.gen_range(-1e12f64..1e12)
    }
}

/// Strategy returned by [`crate::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Size argument for collection strategies: a fixed length or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1).max(*r.start() + 1),
        }
    }
}

/// Strategy for vectors of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = sample_usize(rng, self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors with element strategy and size.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// String-pattern strategy: a small regex subset.
///
/// Supports patterns of the form `[class]{lo,hi}`, `[class]{n}`,
/// `[class]+`, `[class]*`, and bare `[class]`, where the class is a list
/// of characters and `a-z` style ranges. This covers the patterns used in
/// the workspace's property tests; anything else panics with a clear
/// message so the gap is visible instead of silently misgenerating.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_simple_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = sample_usize(rng, lo, hi + 1);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_simple_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, suffix) = rest.split_once(']')?;
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let (lo, hi) = match suffix {
        "" => (1, 1),
        "+" => (1, 8),
        "*" => (0, 8),
        _ => {
            let counts = suffix.strip_prefix('{')?.strip_suffix('}')?;
            match counts.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = counts.trim().parse().ok()?;
                    (n, n)
                }
            }
        }
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn pattern_parser_handles_supported_forms() {
        let (alpha, lo, hi) = parse_simple_pattern("[a-z]{1,20}").unwrap();
        assert_eq!(alpha.len(), 26);
        assert_eq!((lo, hi), (1, 20));
        let (alpha, lo, hi) = parse_simple_pattern("[abc]").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (1, 1));
        let (_, lo, hi) = parse_simple_pattern("[0-9a-f]{4}").unwrap();
        assert_eq!((lo, hi), (4, 4));
        assert!(parse_simple_pattern("plainliteral").is_none());
        assert!(parse_simple_pattern("[z-a]").is_none());
    }

    #[test]
    fn filter_retries_until_predicate_holds() {
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = test_rng("filter");
        for _ in 0..200 {
            assert_eq!(strat.new_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn vec_of_tuples_generates() {
        let strat = vec((0u8..4, 0u8..4), 2..5);
        let mut rng = test_rng("tuples");
        let v = strat.new_value(&mut rng);
        assert!((2..5).contains(&v.len()));
    }
}
