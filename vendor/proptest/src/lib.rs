//! Offline mini `proptest`.
//!
//! The build environment cannot fetch the real `proptest` crate, so this
//! vendored harness implements the subset of its API that the workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, range / string-pattern / tuple / `any` strategies,
//! `prop::collection::vec`, [`ProptestConfig`], and the `prop_assert*`
//! macros. Failing cases report their inputs; there is no shrinking.
//!
//! Case generation is fully deterministic: each test's RNG is seeded from
//! the test's module path and name, so failures reproduce across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

pub mod strategy;

pub use strategy::{Any, Map, Strategy, VecStrategy};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps offline CI fast while still
        // exercising meaningful input diversity.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result alias used by generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test RNG, seeded from the test's full name.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Uniform strategy over a range (used by `any` and the size sampling in
/// collection strategies).
pub(crate) fn sample_usize(rng: &mut TestRng, lo: usize, hi: usize) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

/// Marker re-export so `T: SampleUniform` bounds resolve in this crate.
pub(crate) use SampleUniform as UniformSample;

/// The `prop` module namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Builds a strategy producing arbitrary values of `T`.
pub fn any<T: strategy::Arbitrary>() -> Any<T> {
    Any::new()
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property; failures abort the case with
/// the inputs attached rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the case when an assumption does not hold. The mini-harness
/// counts a skipped case as passing (no global rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __proptest_case in 0..config.cases {
                    let mut __proptest_inputs: Vec<String> = Vec::new();
                    let __proptest_result: $crate::TestCaseResult = {
                        $crate::__proptest_binds!(__proptest_rng, __proptest_inputs; $($args)*);
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    if let ::std::result::Result::Err(err) = __proptest_result {
                        panic!(
                            "property '{}' failed at case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            __proptest_case + 1,
                            config.cases,
                            err,
                            __proptest_inputs.join("; ")
                        );
                    }
                }
            }
        )*
    };
}

/// Expands the argument list of a property into strategy-drawn bindings.
/// Each argument is either `name in strategy` or `name: Type` (shorthand
/// for `name in any::<Type>()`).
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_binds {
    ($rng:ident, $inputs:ident;) => {};
    ($rng:ident, $inputs:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::new_value(&($strat), &mut $rng);
        $inputs.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));
    };
    ($rng:ident, $inputs:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::new_value(&($strat), &mut $rng);
        $inputs.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));
        $crate::__proptest_binds!($rng, $inputs; $($rest)*);
    };
    ($rng:ident, $inputs:ident; $arg:ident : $ty:ty) => {
        let $arg = $crate::Strategy::new_value(&$crate::any::<$ty>(), &mut $rng);
        $inputs.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));
    };
    ($rng:ident, $inputs:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg = $crate::Strategy::new_value(&$crate::any::<$ty>(), &mut $rng);
        $inputs.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));
        $crate::__proptest_binds!($rng, $inputs; $($rest)*);
    };
    ($rng:ident, $inputs:ident; mut $arg:ident in $strat:expr) => {
        let mut $arg = $crate::Strategy::new_value(&($strat), &mut $rng);
        $inputs.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));
    };
    ($rng:ident, $inputs:ident; mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        let mut $arg = $crate::Strategy::new_value(&($strat), &mut $rng);
        $inputs.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));
        $crate::__proptest_binds!($rng, $inputs; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        #[test]
        fn ranges_stay_in_bounds(a in 0u64..100, b in -2.0f64..2.0) {
            prop_assert!(a < 100);
            prop_assert!((-2.0..2.0).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0i64..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn string_patterns_match_class(s in "[a-z]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u32..5, 10u32..20),
            mapped in (0usize..4).prop_map(|x| x * 2)
        ) {
            prop_assert!(pair.0 < 5 && (10..20).contains(&pair.1));
            prop_assert_eq!(mapped % 2, 0);
            prop_assert!(mapped < 8);
        }

        #[test]
        fn any_u8_is_total(x in any::<u8>()) {
            let _ = x; // every u8 is valid; just exercise the strategy
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 200, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("always_fails"), "message: {msg}");
        assert!(msg.contains("inputs"), "message: {msg}");
    }
}
