//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is used by this workspace. Since Rust 1.63 the
//! standard library provides scoped threads, so this shim is a thin
//! adapter that preserves crossbeam's API shape: the closure receives a
//! scope handle whose `spawn` passes the scope back to the spawned
//! closure (enabling nested spawns), and `scope` returns a `Result`
//! instead of propagating panics from the main closure.

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` API.

    use std::any::Any;

    /// Result of a scope or join: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; spawned threads may borrow from the enclosing
    /// environment `'env`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned in a scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its value or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope: all threads spawned within it are joined before
    /// `scope` returns. Returns `Err` when the main closure (or an
    /// unjoined child) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_returns() {
            let data = vec![1, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn panic_in_main_closure_is_err() {
            let r = super::scope(|_| -> () { panic!("boom") });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_works() {
            let r = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap()
            })
            .unwrap();
            assert_eq!(r, 7);
        }
    }
}
