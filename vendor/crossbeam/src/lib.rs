//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace uses [`thread::scope`] and the bounded
//! [`channel`](self::channel) subset of `crossbeam-channel`. Since Rust
//! 1.63 the standard library provides scoped threads, so the thread shim
//! is a thin adapter that preserves crossbeam's API shape: the closure
//! receives a scope handle whose `spawn` passes the scope back to the
//! spawned closure (enabling nested spawns), and `scope` returns a
//! `Result` instead of propagating panics from the main closure. The
//! channel shim is a bounded MPMC queue over `Mutex<VecDeque>` + two
//! condvars — far simpler than upstream's lock-free design, but with the
//! same blocking/try semantics and disconnect behavior.

#![warn(missing_docs)]

pub mod channel {
    //! Bounded multi-producer multi-consumer channels with the
    //! `crossbeam_channel` API subset this workspace uses.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a bounded channel. Cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`]: every receiver is gone. The
    /// unsent message is returned to the caller.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is returned.
        Full(T),
        /// Every receiver is gone; the message is returned.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates a bounded channel holding at most `capacity` messages.
    /// A capacity of zero is rounded up to one (the shim has no
    /// rendezvous mode; nothing in-tree relies on it).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            // A panic while holding these short critical sections is a
            // shim bug; recover the guard rather than poisoning forever.
            match self.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns it when every
        /// receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < self.chan.capacity {
                    state.queue.push_back(msg);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                state = match self.chan.not_full.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Enqueues without blocking, reporting a full or disconnected
        /// channel via [`TrySendError`].
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if state.queue.len() >= self.chan.capacity {
                return Err(TrySendError::Full(msg));
            }
            state.queue.push_back(msg);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or returns [`RecvError`] when
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = match self.chan.not_empty.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            if let Some(msg) = state.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake all blocked receivers so they observe disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake all blocked senders so they observe disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn try_send_full_and_disconnect() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            drop(rx);
            assert!(matches!(
                tx.try_send(3),
                Err(TrySendError::Disconnected(3))
            ));
            assert!(matches!(tx.send(4), Err(SendError(4))));
        }

        #[test]
        fn recv_disconnect_after_drain() {
            let (tx, rx) = bounded(4);
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn blocking_send_unblocks_on_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap().unwrap();
        }

        #[test]
        fn mpmc_all_messages_arrive_once() {
            let (tx, rx) = bounded(8);
            let mut senders = Vec::new();
            for w in 0..4 {
                let tx = tx.clone();
                senders.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(w * 100 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut receivers = Vec::new();
            for _ in 0..2 {
                let rx = rx.clone();
                receivers.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for s in senders {
                s.join().unwrap();
            }
            let mut all: Vec<i32> = receivers
                .into_iter()
                .flat_map(|r| r.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..400).collect::<Vec<_>>());
        }
    }
}

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` API.

    use std::any::Any;

    /// Result of a scope or join: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; spawned threads may borrow from the enclosing
    /// environment `'env`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned in a scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its value or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope: all threads spawned within it are joined before
    /// `scope` returns. Returns `Err` when the main closure (or an
    /// unjoined child) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_returns() {
            let data = vec![1, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn panic_in_main_closure_is_err() {
            let r = super::scope(|_| -> () { panic!("boom") });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_works() {
            let r = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap()
            })
            .unwrap();
            assert_eq!(r, 7);
        }
    }
}
