//! `fbdetect` — command-line front end to the reproduction.
//!
//! Subcommands:
//!
//! - `simulate` — run the fleet simulator and write a store snapshot;
//! - `scan` — run the detection pipeline over a snapshot and print reports;
//! - `inspect` — list the series in a snapshot;
//! - `demo` — simulate, inject a regression, scan, and report in one shot.
//!
//! Arguments are deliberately simple (`key=value` pairs) so the binary has
//! no dependencies beyond the workspace. Run `fbdetect help` for usage.

use fbdetect::changelog::{ChangeLog, ChangeTrafficConfig, ChangeTrafficGenerator};
use fbdetect::core::{report, DetectorConfig, Pipeline, ScanContext, Threshold};
use fbdetect::fleet::server::Fleet;
use fbdetect::fleet::{ServiceSim, ServiceSimConfig};
use fbdetect::profiler::callgraph::uniform_service_graph;
use fbdetect::tsdb::snapshot::{read_snapshot, write_snapshot};
use fbdetect::tsdb::{TsdbStore, WindowConfig};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn usage() -> &'static str {
    "fbdetect — FBDetect (SOSP 2024) reproduction CLI

USAGE:
    fbdetect <COMMAND> [key=value ...]

COMMANDS:
    simulate out=store.tsdb [hours=12] [subroutines=50] [servers=100]
             [regress=subroutine_00007] [regress-at=36000] [regress-delta=0.02]
        Simulate a service and write a store snapshot.

    scan in=store.tsdb [threshold=0.005] [relative=false]
         [historic=28800] [analysis=7200] [extended=3600] [now=<last>]
        Run the detection pipeline over a snapshot and print reports.

    inspect in=store.tsdb
        List the series in a snapshot.

    demo
        Simulate + inject + scan in one shot (no files).

    help
        Show this message.
"
}

fn parse_args(args: &[String]) -> HashMap<String, String> {
    args.iter()
        .filter_map(|a| a.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn get<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    args.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn simulate(args: &HashMap<String, String>) -> Result<(), String> {
    let out = args.get("out").ok_or("simulate requires out=<path>")?;
    let hours: u64 = get(args, "hours", 12);
    let subroutines: usize = get(args, "subroutines", 50);
    let servers: usize = get(args, "servers", 100);
    let graph = uniform_service_graph(subroutines, 1.0).map_err(|e| e.to_string())?;
    let fleet = Fleet::two_generations(servers).map_err(|e| e.to_string())?;
    let config = ServiceSimConfig {
        name: "svc".to_string(),
        samples_per_tick: 2_000,
        ..Default::default()
    };
    let mut sim = ServiceSim::new(config, graph.clone(), fleet).map_err(|e| e.to_string())?;
    // Background change traffic plus an optional planted regression.
    let mut log = ChangeLog::new();
    let mut traffic = ChangeTrafficGenerator::new(
        ChangeTrafficConfig {
            service: "svc".to_string(),
            subroutine_pool: graph.names().iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        },
        7,
    );
    traffic.generate_background(&mut log, 0, hours * 3_600);
    if let Some(victim) = args.get("regress") {
        let at: u64 = get(args, "regress-at", hours * 3_600 * 5 / 6);
        let delta: f64 = get(args, "regress-delta", 0.02);
        let frame = graph
            .frame_by_name(victim)
            .map_err(|_| format!("unknown subroutine {victim}"))?;
        let culprit = traffic.plant_culprit(
            &mut log,
            at.saturating_sub(100),
            &[victim.as_str()],
            Some(&format!("Rework {victim}")),
        );
        sim.inject_regression(frame, at, delta, culprit)
            .map_err(|e| e.to_string())?;
        eprintln!("injected +{delta} weight on {victim} at t={at} (change #{culprit})");
    }
    eprintln!("simulating {hours}h of 'svc' ({subroutines} subroutines, {servers} servers)...");
    let store = TsdbStore::new();
    sim.run(&store, 0, hours * 3_600)
        .map_err(|e| e.to_string())?;
    let file = File::create(out).map_err(|e| e.to_string())?;
    write_snapshot(&store, BufWriter::new(file)).map_err(|e| e.to_string())?;
    eprintln!("wrote {} series to {out}", store.series_count());
    Ok(())
}

fn load(args: &HashMap<String, String>) -> Result<TsdbStore, String> {
    let path = args.get("in").ok_or("requires in=<path>")?;
    let file = File::open(path).map_err(|e| e.to_string())?;
    read_snapshot(BufReader::new(file)).map_err(|e| e.to_string())
}

fn scan(args: &HashMap<String, String>) -> Result<(), String> {
    let store = load(args)?;
    let ids = store.series_ids();
    let now: u64 = match args.get("now") {
        Some(v) => v.parse().map_err(|_| "bad now")?,
        None => {
            ids.iter()
                .filter_map(|id| store.last_timestamp(id).ok().flatten())
                .max()
                .unwrap_or(0)
                + 1
        }
    };
    let threshold_value: f64 = get(args, "threshold", 0.005);
    let relative: bool = get(args, "relative", false);
    let threshold = if relative {
        Threshold::Relative(threshold_value)
    } else {
        Threshold::Absolute(threshold_value)
    };
    let windows = WindowConfig {
        historic: get(args, "historic", 28_800),
        analysis: get(args, "analysis", 7_200),
        extended: get(args, "extended", 3_600),
        rerun_interval: get(args, "rerun", 3_600),
    };
    let config = DetectorConfig::new("cli", windows, threshold);
    let mut pipeline = Pipeline::new(config).map_err(|e| e.to_string())?;
    let outcome = pipeline
        .scan(&store, &ids, now, &ScanContext::default())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "scanned {} series at t={now}: {} change points -> {} reports",
        ids.len(),
        outcome.funnel.change_points,
        outcome.reports.len()
    );
    let health = &outcome.health;
    if health.series_scanned < health.series_total || health.degraded {
        eprintln!(
            "health: {} of {} series scanned ({} skipped for data quality, \
             {} quarantined, {} panicked, {} errored){}",
            health.series_scanned,
            health.series_total,
            health.series_skipped,
            health.series_quarantined,
            health.panicked,
            health.errored,
            if health.degraded {
                format!("; DEGRADED, stages shed: {:?}", health.stages_skipped)
            } else {
                String::new()
            }
        );
    }
    print!("{}", report::render_batch(&outcome.reports, None));
    Ok(())
}

fn inspect(args: &HashMap<String, String>) -> Result<(), String> {
    let store = load(args)?;
    for id in store.series_ids() {
        store
            .with_series(&id, |series| {
                println!(
                    "{}\t{} points\t[{:?}..{:?}]",
                    id.metric_id(),
                    series.len(),
                    series.first_timestamp(),
                    series.last_timestamp()
                );
            })
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn demo() -> Result<(), String> {
    let args: HashMap<String, String> = [
        ("out".to_string(), "/tmp/fbdetect-demo.tsdb".to_string()),
        ("regress".to_string(), "subroutine_00007".to_string()),
    ]
    .into_iter()
    .collect();
    simulate(&args)?;
    let scan_args: HashMap<String, String> =
        [("in".to_string(), "/tmp/fbdetect-demo.tsdb".to_string())]
            .into_iter()
            .collect();
    scan(&scan_args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = parse_args(&argv[1..]);
    let result = match command.as_str() {
        "simulate" => simulate(&args),
        "scan" => scan(&args),
        "inspect" => inspect(&args),
        "demo" => demo(),
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
