//! # fbdetect — a reproduction of FBDetect (SOSP 2024)
//!
//! FBDetect is Meta's in-production performance-regression detection
//! system, able to catch regressions as small as **0.005%** of CPU usage in
//! noisy production environments. This workspace reproduces the complete
//! system in Rust: the detection pipeline, every statistical substrate it
//! depends on, a fleet simulator standing in for Meta's production
//! environment, the EGADS baseline it is compared against, and a benchmark
//! harness regenerating every table and figure of the paper's evaluation.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`core`] — the detection pipeline (change-point, went-away,
//!   seasonality, cost-shift, SOMDedup/PairwiseDedup, root-cause analysis);
//! - [`stats`] — CUSUM, EM, SAX, STL, Mann-Kendall, Theil-Sen, TF-IDF and
//!   the rest of the statistics toolbox;
//! - [`tsdb`] — the in-memory time-series store with Figure 4 windows;
//! - [`profiler`] — stack-trace sampling, gCPU derivation, and PyPerf;
//! - [`fleet`] — the synthetic production environment;
//! - [`ingest`] — the staged, bounded multi-tenant ingestion front-end
//!   (wire format, validation, quotas, backpressure);
//! - [`changelog`] — the synthetic code/configuration change stream;
//! - [`cluster`] — SOM, pairwise, and alternative clustering algorithms;
//! - [`egads`] — the Yahoo EGADS baseline detectors.
//!
//! # Quick start
//!
//! ```
//! use fbdetect::core::{DetectorConfig, Pipeline, ScanContext, Threshold};
//! use fbdetect::tsdb::{MetricKind, SeriesId, TsdbStore, WindowConfig};
//!
//! // Store a gCPU series with a step regression at t = 3800.
//! let store = TsdbStore::new();
//! let id = SeriesId::new("my-service", MetricKind::GCpu, "hot_function");
//! for t in 0..450u64 {
//!     let ts = t * 10;
//!     let noise = ((t * 2_654_435_761) % 97) as f64 * 1e-5;
//!     let base = if ts >= 3_800 { 0.020 } else { 0.010 };
//!     store.append(&id, ts, base + noise).unwrap();
//! }
//!
//! // Configure windows and threshold, then scan.
//! let windows = WindowConfig {
//!     historic: 3_000,
//!     analysis: 1_000,
//!     extended: 500,
//!     rerun_interval: 500,
//! };
//! let config = DetectorConfig::new("demo", windows, Threshold::Absolute(0.005));
//! let mut pipeline = Pipeline::new(config).unwrap();
//! let outcome = pipeline
//!     .scan(&store, &[id], 4_500, &ScanContext::default())
//!     .unwrap();
//! assert_eq!(outcome.reports.len(), 1);
//! assert!((outcome.reports[0].magnitude() - 0.010).abs() < 0.004);
//! ```
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub use fbd_changelog as changelog;
pub use fbd_cluster as cluster;
pub use fbd_egads as egads;
pub use fbd_fleet as fleet;
pub use fbd_ingest as ingest;
pub use fbd_profiler as profiler;
pub use fbd_stats as stats;
pub use fbd_tsdb as tsdb;
pub use fbdetect_core as core;
