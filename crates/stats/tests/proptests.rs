//! Property-based tests for the statistical substrate.

use fbd_stats::prefix::PrefixStats;
use fbd_stats::streaming::RollingStats;
use fbd_stats::{
    acf, changepoint, cusum, descriptive, distributions, em, fourier, hypothesis, online,
    regression, sax, smoothing, stl, text, trend,
};
use proptest::prelude::*;

fn finite_series(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, min_len..max_len)
}

proptest! {
    #[test]
    fn mean_within_min_max(data in finite_series(1, 200)) {
        let m = descriptive::mean(&data).unwrap();
        let lo = descriptive::min(&data).unwrap();
        let hi = descriptive::max(&data).unwrap();
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_non_negative(data in finite_series(2, 200)) {
        prop_assert!(descriptive::variance(&data).unwrap() >= 0.0);
        prop_assert!(descriptive::population_variance(&data).unwrap() >= 0.0);
    }

    #[test]
    fn percentiles_monotone(data in finite_series(1, 100)) {
        let p10 = descriptive::percentile(&data, 10.0).unwrap();
        let p50 = descriptive::percentile(&data, 50.0).unwrap();
        let p90 = descriptive::percentile(&data, 90.0).unwrap();
        prop_assert!(p10 <= p50 + 1e-9);
        prop_assert!(p50 <= p90 + 1e-9);
    }

    #[test]
    fn median_equals_p50(data in finite_series(1, 100)) {
        let med = descriptive::median(&data).unwrap();
        let p50 = descriptive::percentile(&data, 50.0).unwrap();
        prop_assert!((med - p50).abs() < 1e-9);
    }

    #[test]
    fn mad_invariant_under_shift(data in finite_series(3, 100), shift in -1e3f64..1e3) {
        let m1 = descriptive::mad(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|v| v + shift).collect();
        let m2 = descriptive::mad(&shifted).unwrap();
        prop_assert!((m1 - m2).abs() < 1e-6 * (1.0 + m1.abs()));
    }

    #[test]
    fn cusum_series_ends_near_zero(data in finite_series(2, 200)) {
        let s = cusum::cusum_series(&data).unwrap();
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(s.last().unwrap().abs() < 1e-6 * scale * data.len() as f64);
    }

    #[test]
    fn change_point_in_bounds(data in finite_series(4, 200)) {
        let r = cusum::detect_change_point(&data).unwrap();
        prop_assert!(r.index < data.len() - 1);
    }

    #[test]
    fn injected_step_is_found(
        n1 in 20usize..60,
        n2 in 20usize..60,
        base in -100.0f64..100.0,
        step in 1.0f64..50.0,
    ) {
        let mut data = vec![base; n1];
        data.extend(vec![base + step; n2]);
        let r = cusum::detect_change_point(&data).unwrap();
        prop_assert_eq!(r.index, n1 - 1);
        prop_assert!((r.mean_shift - step).abs() < 1e-9);
    }

    #[test]
    fn optimal_split_cost_never_exceeds_unsplit(data in finite_series(4, 150)) {
        let r = changepoint::optimal_single_split(&data).unwrap();
        prop_assert!(r.cost <= r.unsplit_cost + 1e-6);
        prop_assert!((0.0..=1.0).contains(&r.gain()));
    }

    #[test]
    fn theil_sen_shift_invariance(data in finite_series(3, 60), shift in -1e3f64..1e3) {
        let f1 = trend::theil_sen(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|v| v + shift).collect();
        let f2 = trend::theil_sen(&shifted).unwrap();
        prop_assert!((f1.slope - f2.slope).abs() < 1e-6 * (1.0 + f1.slope.abs()));
    }

    #[test]
    fn mann_kendall_antisymmetry(data in finite_series(4, 60)) {
        let up = trend::mann_kendall(&data, 0.05).unwrap();
        let negated: Vec<f64> = data.iter().map(|v| -v).collect();
        let down = trend::mann_kendall(&negated, 0.05).unwrap();
        prop_assert_eq!(up.s, -down.s);
    }

    #[test]
    fn sax_symbols_in_range(data in finite_series(1, 100), buckets in 1usize..30) {
        let cfg = sax::SaxConfig { buckets, validity_fraction: 0.03 };
        let s = sax::encode(&data, cfg).unwrap();
        prop_assert!(s.symbols.iter().all(|&x| (x as usize) < buckets));
        prop_assert_eq!(s.histogram.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn sax_reencode_own_data_matches(data in finite_series(2, 100)) {
        let cfg = sax::SaxConfig { buckets: 10, validity_fraction: 0.0 };
        let s = sax::encode(&data, cfg).unwrap();
        let re = s.encode_with_same_buckets(&data).unwrap();
        prop_assert_eq!(&s.symbols, &re.symbols);
    }

    #[test]
    fn pearson_bounds(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Ok(r) = regression::pearson(&a, &b) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn linear_fit_residual_orthogonality(data in finite_series(3, 80)) {
        if let Ok(fit) = regression::linear_fit(&data) {
            // Residuals sum to ~0 for OLS with intercept.
            let resid_sum: f64 = data
                .iter()
                .enumerate()
                .map(|(i, &y)| y - fit.predict(i as f64))
                .sum();
            let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
            prop_assert!(resid_sum.abs() < 1e-6 * scale * data.len() as f64);
        }
    }

    #[test]
    fn stl_reconstruction(data in finite_series(48, 150)) {
        let cfg = stl::StlConfig::for_period(12);
        let d = stl::decompose(&data, cfg).unwrap();
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (i, &value) in data.iter().enumerate() {
            let sum = d.seasonal[i] + d.trend[i] + d.residual[i];
            prop_assert!((sum - value).abs() < 1e-6 * scale);
        }
    }

    #[test]
    fn moving_average_bounded_by_extremes(data in finite_series(5, 100)) {
        let out = smoothing::centered_moving_average(&data, 5).unwrap();
        let lo = descriptive::min(&data).unwrap();
        let hi = descriptive::max(&data).unwrap();
        prop_assert!(out.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
    }

    #[test]
    fn spectrum_non_negative(data in finite_series(4, 128)) {
        let mags = fourier::magnitude_spectrum(&data).unwrap();
        prop_assert!(mags.iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn fft_spectrum_matches_naive_dft(data in finite_series(4, 200)) {
        // The O(n log n) FFT path (radix-2 or Bluestein) must reproduce the
        // O(n²) direct DFT bin for bin.
        let fast = fourier::magnitude_spectrum(&data).unwrap();
        let naive = fourier::magnitude_spectrum_naive(&data).unwrap();
        prop_assert_eq!(fast.len(), naive.len());
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (f, n) in fast.iter().zip(&naive) {
            prop_assert!((f - n).abs() < 1e-9 * scale, "fft {f} vs dft {n}");
        }
    }

    #[test]
    fn prefix_single_ll_matches_naive(data in finite_series(2, 200)) {
        let ps = PrefixStats::new(&data);
        let fast = ps.single_mean_log_likelihood();
        let naive = em::single_mean_log_likelihood_naive(&data).unwrap();
        prop_assert!(
            (fast - naive).abs() < 1e-9 * (1.0 + naive.abs()),
            "fast {fast} vs naive {naive}"
        );
    }

    #[test]
    fn prefix_two_mean_ll_matches_naive(data in finite_series(4, 200), cp_seed in 0usize..1000) {
        let cp = 1 + cp_seed % (data.len() - 2);
        let ps = PrefixStats::new(&data);
        let fast = ps.two_mean_log_likelihood(cp);
        let naive = em::two_mean_log_likelihood_naive(&data, cp).unwrap();
        prop_assert!(
            (fast - naive).abs() < 1e-9 * (1.0 + naive.abs()),
            "fast {fast} vs naive {naive} at cp {cp}"
        );
    }

    #[test]
    fn prefix_cusum_matches_series(data in finite_series(2, 200)) {
        // The centered prefix sums ARE the CUSUM series.
        let ps = PrefixStats::new(&data);
        let series = cusum::cusum_series(&data).unwrap();
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (i, s) in series.iter().enumerate() {
            prop_assert!((ps.cusum_at(i + 1) - s).abs() < 1e-9 * scale * data.len() as f64);
        }
    }

    #[test]
    fn cosine_similarity_symmetric(a in "[a-z]{1,20}", b in "[a-z]{1,20}") {
        let model = text::TfIdf::fit(&[a.as_str(), b.as_str()], &[2, 3]);
        let s1 = model.similarity(&a, &b);
        let s2 = model.similarity(&b, &a);
        prop_assert!((s1 - s2).abs() < 1e-9);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s1));
    }

    #[test]
    fn normal_cdf_monotone(z1 in -5.0f64..5.0, z2 in -5.0f64..5.0) {
        let (lo, hi) = if z1 < z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(distributions::normal_cdf(lo) <= distributions::normal_cdf(hi) + 1e-12);
    }

    #[test]
    fn t_critical_decreases_with_alpha(dof in 2.0f64..200.0) {
        let t01 = distributions::student_t_critical(0.01, dof);
        let t05 = distributions::student_t_critical(0.05, dof);
        prop_assert!(t01 > t05);
    }

    #[test]
    fn mann_kendall_fast_bit_identical_to_naive(data in finite_series(4, 160)) {
        // The O(n log n) inversion-counting Mann-Kendall is an exact integer
        // algorithm: S, variance, z, and p must match the O(n²) pairwise
        // definition bit for bit.
        let fast = trend::mann_kendall(&data, 0.05).unwrap();
        let naive = trend::mann_kendall_naive(&data, 0.05).unwrap();
        prop_assert_eq!(fast.s, naive.s);
        prop_assert_eq!(fast.z.to_bits(), naive.z.to_bits());
        prop_assert_eq!(fast.p_value.to_bits(), naive.p_value.to_bits());
        prop_assert_eq!(fast.direction, naive.direction);
    }

    #[test]
    fn mann_kendall_fast_handles_ties_exactly(
        raw in prop::collection::vec(-20i64..20, 4..120),
        significance in 0.01f64..0.2,
    ) {
        // Integer-valued series maximize ties, stressing the tie-run
        // correction shared by both implementations.
        let data: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        let fast = trend::mann_kendall(&data, significance).unwrap();
        let naive = trend::mann_kendall_naive(&data, significance).unwrap();
        prop_assert_eq!(fast.s, naive.s);
        prop_assert_eq!(fast.z.to_bits(), naive.z.to_bits());
        prop_assert_eq!(fast.p_value.to_bits(), naive.p_value.to_bits());
    }

    #[test]
    fn theil_sen_selection_bit_identical_to_sort(data in finite_series(2, 80)) {
        // Median-by-selection over pairwise slopes must reproduce the
        // sort-based median exactly (total_cmp ties are bit-equal values).
        let fast = trend::theil_sen(&data).unwrap();
        let naive = trend::theil_sen_naive(&data).unwrap();
        prop_assert_eq!(fast.slope.to_bits(), naive.slope.to_bits());
        prop_assert_eq!(fast.intercept.to_bits(), naive.intercept.to_bits());
    }

    #[test]
    fn acf_fft_matches_naive_all_lags(data in finite_series(16, 220)) {
        // Wiener–Khinchin all-lags ACF against the direct O(n·k) definition.
        let max_lag = data.len() - 2;
        let fast = acf::acf_fft(&data, max_lag).unwrap();
        let naive = acf::acf_naive(&data, max_lag).unwrap();
        prop_assert_eq!(fast.len(), naive.len());
        for (lag, (f, n)) in fast.iter().zip(&naive).enumerate() {
            // Autocorrelations are normalized, so the tolerance is absolute.
            prop_assert!((f - n).abs() < 1e-7, "lag {} fft {f} vs naive {n}", lag + 1);
        }
    }

    #[test]
    fn loess_fft_matches_naive_uniform(data in finite_series(32, 220), fraction in 0.15f64..0.5) {
        let ones = vec![1.0; data.len()];
        let fast = stl::loess_smooth_fft(&data, fraction, &ones).unwrap();
        let naive = stl::loess_smooth_naive(&data, fraction, &ones).unwrap();
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (i, (f, n)) in fast.iter().zip(&naive).enumerate() {
            prop_assert!((f - n).abs() < 1e-9 * scale, "i={i} fft {f} vs naive {n}");
        }
    }

    #[test]
    fn loess_fft_matches_naive_robustness(
        data in finite_series(32, 160),
        weight_seed in 1usize..13,
        fraction in 0.15f64..0.5,
    ) {
        // Bounded-below weights keep the local fits away from the singular
        // guard, where fast and naive could legitimately branch-diverge.
        let weights: Vec<f64> = (0..data.len())
            .map(|i| 0.25 + 0.75 * ((i * weight_seed) % 7) as f64 / 7.0)
            .collect();
        let fast = stl::loess_smooth_fft(&data, fraction, &weights).unwrap();
        let naive = stl::loess_smooth_naive(&data, fraction, &weights).unwrap();
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (i, (f, n)) in fast.iter().zip(&naive).enumerate() {
            prop_assert!((f - n).abs() < 1e-9 * scale, "i={i} fft {f} vs naive {n}");
        }
    }

    #[test]
    fn loess_dispatch_close_to_naive(data in finite_series(16, 300), fraction in 0.15f64..0.5) {
        // Whatever path the cost model picks, the public entry point stays
        // within float tolerance of the reference implementation.
        let ones = vec![1.0; data.len()];
        let dispatched = stl::loess_smooth(&data, fraction, &ones).unwrap();
        let naive = stl::loess_smooth_naive(&data, fraction, &ones).unwrap();
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (i, (d, n)) in dispatched.iter().zip(&naive).enumerate() {
            prop_assert!((d - n).abs() < 1e-9 * scale, "i={i} dispatch {d} vs naive {n}");
        }
    }

    #[test]
    fn loess_range_mean_matches_full_smooth(
        data in finite_series(16, 300),
        fraction in 0.15f64..0.5,
        bounds in (0usize..1000, 1usize..1000),
    ) {
        // The long-term fast path averages a Loess slice without smoothing
        // the whole series; it must agree with the mean of the full smooth.
        let (a, b) = bounds;
        let lo = a % data.len();
        let hi = lo + 1 + b % (data.len() - lo);
        let ranged = stl::loess_uniform_range_mean(&data, fraction, lo, hi).unwrap();
        let full = stl::loess_smooth_uniform(&data, fraction).unwrap();
        let direct = full[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        let scale = data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(
            (ranged - direct).abs() < 1e-9 * scale,
            "range [{lo},{hi}) mean {ranged} vs full-smooth mean {direct}"
        );
    }

    #[test]
    fn lrt_bound_dominates_exact_over_arbitrary_histories(
        values in prop::collection::vec(-1e3f64..1e3, 40..220),
        step in (0usize..1000, -50.0f64..50.0),
        nan_sel in 0usize..2000,
        evict in 0usize..30,
    ) {
        // The online short-term refuter may only ever overestimate the cold
        // LRT statistic: over arbitrary histories — appends, front
        // evictions, NaN injection, a step anywhere — a bound below the
        // exact maximum would let Level C suppress a detection the cold
        // path makes.
        let mut values = values;
        let (at, delta) = step;
        let at = at % values.len();
        for v in values[at..].iter_mut() {
            *v += delta;
        }
        // Half the cases inject a single NaN somewhere in the history.
        if nan_sel < 1000 {
            let i = nan_sel % values.len();
            values[i] = f64::NAN;
        }
        let mut stats = RollingStats::new(0);
        for &v in &values {
            stats.append(v);
        }
        let evict = evict.min(values.len() - 12);
        stats.evict_front(evict);
        let a = evict as u64;
        let b = values.len() as u64;
        let window = &values[evict..];
        let n = window.len() as u64;
        // Split range spanning the window's middle third, as an analysis
        // region would.
        let t_lo = a + n / 3 + 1;
        let t_hi = a + 2 * n / 3;
        if let Some(bound) = online::max_lrt_upper_bound(&stats, a, b, t_lo, t_hi, 1e-9) {
            // A bound implies the range was fully finite and retained.
            prop_assert!(window.iter().all(|v| v.is_finite()));
            let ps = PrefixStats::new(window);
            let exact = hypothesis::max_lrt_statistic_in_range(
                &ps,
                (t_lo - a - 1) as usize,
                (t_hi - a - 1) as usize,
            )
            .unwrap_or(0.0);
            prop_assert!(bound >= exact, "bound {bound} < exact {exact}");
        } else {
            // Refusal must be justified: a NaN in the window (or none
            // injected at all means the geometry was degenerate, which this
            // generator never produces).
            prop_assert!(window.iter().any(|v| !v.is_finite()));
        }
    }

    #[test]
    fn sliding_bounds_contain_every_cold_window_mean(
        values in prop::collection::vec(-1e3f64..1e3, 30..200),
        evict in 0usize..20,
        geom in (0usize..1000, 1usize..60, 0usize..20, 1usize..40),
    ) {
        // The online pre-filter replica must bracket every width-`edge`
        // sliding mean the cold pre-filter enumerates; a mean escaping the
        // bracket could flip the long-term refuter's verdict.
        let mut stats = RollingStats::new(0);
        for &v in &values {
            stats.append(v);
        }
        let evict = evict.min(values.len() - 10);
        stats.evict_front(evict);
        let a = evict as u64;
        let b = values.len() as u64;
        let window = &values[evict..];
        let n = window.len();
        let (lo_seed, span, d, edge) = geom;
        let lo = lo_seed % n;
        let hi = (lo + 1 + span).min(n);
        let (omin, omax) = online::sliding_mean_bounds(
            &stats,
            a,
            b,
            a + lo as u64,
            a + hi as u64,
            d as u64,
            edge as u64,
        );
        prop_assert!(omin.is_finite() && omax.is_finite());
        prop_assert!(omin <= omax);
        if edge <= n {
            let ps = PrefixStats::new(window);
            // Cold enumeration, mirrored from the long-term pre-filter.
            let lo_d = lo.saturating_sub(d);
            let hi_d = (hi + d).min(n);
            let first = lo_d.saturating_sub(edge - 1);
            let last = hi_d.min(n - edge + 1);
            let scale = values.iter().map(|v| v.abs()).fold(1.0, f64::max);
            let tol = 1e-9 * scale;
            for s in first..last {
                let m = ps.segment_mean(s, s + edge);
                prop_assert!(
                    m >= omin - tol && m <= omax + tol,
                    "window [{s}, {}) mean {m} escapes [{omin}, {omax}]",
                    s + edge
                );
            }
        }
    }

    #[test]
    fn rolling_stats_bit_identical_to_cold_rebuild(
        ops in prop::collection::vec((0u8..10, -1e6f64..1e6, 1usize..40), 1..200),
        query in (0u64..400, 1u64..400),
    ) {
        // Incremental append/evict maintenance must be indistinguishable —
        // to the bit — from rebuilding over the retained samples with the
        // same pivot. The streaming scan engine's round-over-round
        // determinism rests on exactly this property.
        use fbd_stats::streaming::RollingStats;
        let mut inc = RollingStats::new(0);
        let mut shadow: Vec<f64> = Vec::new();
        let mut evicted = 0usize;
        for &(sel, value, k) in &ops {
            match sel {
                // Mostly appends, with occasional non-finite samples mixed
                // in: they occupy indices but stay out of the sums.
                0..=6 => {
                    inc.append(value);
                    shadow.push(value);
                }
                7 => {
                    inc.append(f64::NAN);
                    shadow.push(f64::NAN);
                }
                8 => {
                    inc.append(f64::INFINITY);
                    shadow.push(f64::INFINITY);
                }
                _ => {
                    let k = k.min(shadow.len() - evicted.min(shadow.len()));
                    inc.evict_front(k);
                    evicted += k;
                }
            }
        }
        let retained = &shadow[evicted..];
        let cold = RollingStats::rebuild(retained, evicted as u64, inc.pivot());
        prop_assert_eq!(inc.first_index(), cold.first_index());
        prop_assert_eq!(inc.len(), cold.len());
        let (qa, qlen) = query;
        // Probe several ranges: the random one, the full retained range,
        // and block-straddling edges.
        let end = inc.end_index();
        let ranges = [
            (qa, qa + qlen),
            (inc.first_index(), end),
            (inc.first_index() + (inc.len() as u64) / 3, end.saturating_sub(1).max(1)),
        ];
        for (a, b) in ranges {
            prop_assert_eq!(inc.finite_count(a, b), cold.finite_count(a, b));
            prop_assert_eq!(
                inc.centered_sum(a, b).to_bits(),
                cold.centered_sum(a, b).to_bits(),
                "centered_sum diverged on [{}, {})", a, b
            );
            prop_assert_eq!(
                inc.centered_sum_sq(a, b).to_bits(),
                cold.centered_sum_sq(a, b).to_bits(),
                "centered_sum_sq diverged on [{}, {})", a, b
            );
            let im = inc.mean(a, b).map(f64::to_bits);
            let cm = cold.mean(a, b).map(f64::to_bits);
            prop_assert_eq!(im, cm, "mean diverged on [{}, {})", a, b);
        }
    }
}
