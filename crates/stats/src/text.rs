//! Text features: n-gram tokenization, TF-IDF, and cosine similarity.
//!
//! SOMDedup converts metric IDs (subroutine name + metric name) into
//! numerical features using TF-IDF with 2- and 3-gram lengths (§5.5.1);
//! PairwiseDedup and root-cause analysis compute cosine similarity between
//! textual feature vectors (§5.5.2, §5.6).

use std::collections::HashMap;

/// A sparse term-weight vector.
pub type SparseVector = HashMap<String, f64>;

/// Splits text into lowercase word tokens (alphanumeric runs).
pub fn word_tokens(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(|s| s.to_lowercase())
        .collect()
}

/// Character n-grams of `text` for each length in `lengths`.
///
/// The paper's metric-ID encoding uses 2- and 3-grams.
///
/// # Examples
///
/// ```
/// let grams = fbd_stats::text::char_ngrams("foo", &[2]);
/// assert_eq!(grams, vec!["fo".to_string(), "oo".to_string()]);
/// ```
pub fn char_ngrams(text: &str, lengths: &[usize]) -> Vec<String> {
    let chars: Vec<char> = text.to_lowercase().chars().collect();
    let mut grams = Vec::new();
    for &n in lengths {
        if n == 0 || chars.len() < n {
            continue;
        }
        for window in chars.windows(n) {
            grams.push(window.iter().collect());
        }
    }
    grams
}

/// Raw term-frequency vector of a token list.
pub fn term_frequencies(tokens: &[String]) -> SparseVector {
    let mut tf = SparseVector::new();
    for t in tokens {
        *tf.entry(t.clone()).or_insert(0.0) += 1.0;
    }
    let total: f64 = tf.values().sum();
    if total > 0.0 {
        for v in tf.values_mut() {
            *v /= total;
        }
    }
    tf
}

/// Cosine similarity between two sparse vectors, in `[0, 1]` for
/// non-negative weights. Returns 0 when either vector is empty or zero.
pub fn cosine_similarity(a: &SparseVector, b: &SparseVector) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small
        .iter()
        .filter_map(|(k, &va)| large.get(k).map(|&vb| va * vb))
        .sum();
    let na: f64 = a.values().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|v| v * v).sum::<f64>().sqrt();
    if !(na > 0.0 && nb > 0.0) {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// A TF-IDF model fitted over a corpus of documents.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    /// Smoothed inverse document frequencies.
    idf: HashMap<String, f64>,
    /// Number of documents the model was fitted on.
    n_documents: usize,
    /// n-gram lengths used for tokenization.
    ngram_lengths: Vec<usize>,
}

impl TfIdf {
    /// Fits IDF weights over `documents` using character n-grams of the
    /// given lengths (the paper uses `[2, 3]` for metric IDs).
    pub fn fit(documents: &[&str], ngram_lengths: &[usize]) -> Self {
        let mut document_frequency: HashMap<String, usize> = HashMap::new();
        for doc in documents {
            let mut seen: Vec<String> = char_ngrams(doc, ngram_lengths);
            seen.sort();
            seen.dedup();
            for gram in seen {
                *document_frequency.entry(gram).or_insert(0) += 1;
            }
        }
        let n = documents.len();
        let idf = document_frequency
            .into_iter()
            .map(|(term, df)| {
                // Smoothed IDF keeps weights positive for ubiquitous terms.
                let w = ((1.0 + n as f64) / (1.0 + df as f64)).ln() + 1.0;
                (term, w)
            })
            .collect();
        TfIdf {
            idf,
            n_documents: n,
            ngram_lengths: ngram_lengths.to_vec(),
        }
    }

    /// Number of documents used to fit the model.
    pub fn n_documents(&self) -> usize {
        self.n_documents
    }

    /// TF-IDF vector of a document under this model. Unknown terms receive
    /// the maximum IDF (they are maximally distinctive).
    pub fn transform(&self, document: &str) -> SparseVector {
        let default_idf = ((1.0 + self.n_documents as f64) / 1.0).ln() + 1.0;
        let tokens = char_ngrams(document, &self.ngram_lengths);
        let tf = term_frequencies(&tokens);
        tf.into_iter()
            .map(|(term, f)| {
                let idf = self.idf.get(&term).copied().unwrap_or(default_idf);
                (term, f * idf)
            })
            .collect()
    }

    /// TF-IDF cosine similarity of two documents under this model.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        cosine_similarity(&self.transform(a), &self.transform(b))
    }

    /// Projects a document to a single integer hash of its strongest terms,
    /// the scalable encoding the paper uses to avoid pairwise comparisons in
    /// SOMDedup ("we convert metric IDs into integers using TF-IDF").
    pub fn integer_signature(&self, document: &str) -> u64 {
        let v = self.transform(document);
        let mut terms: Vec<(&String, &f64)> = v.iter().collect();
        terms.sort_by(|a, b| b.1.total_cmp(a.1).then_with(|| a.0.cmp(b.0)));
        // FNV-1a over the top terms gives a stable, locality-free signature.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for (term, _) in terms.into_iter().take(8) {
            for byte in term.as_bytes() {
                hash ^= *byte as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        }
        hash
    }
}

/// Builds a word-level feature vector from weighted text fields, e.g.
/// `[(title, 2.0), (summary, 1.0)]` — used by root-cause text similarity
/// (§5.6) where titles matter more than bodies.
pub fn weighted_word_vector(fields: &[(&str, f64)]) -> SparseVector {
    let mut v = SparseVector::new();
    for (text, weight) in fields {
        for token in word_tokens(text) {
            *v.entry(token).or_insert(0.0) += weight;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tokens_splits_punctuation() {
        let t = word_tokens("Fix foo::bar, loosen-constraints (v2)");
        assert_eq!(t, vec!["fix", "foo", "bar", "loosen", "constraints", "v2"]);
    }

    #[test]
    fn ngrams_of_short_string() {
        assert!(char_ngrams("a", &[2, 3]).is_empty());
        assert_eq!(char_ngrams("ab", &[2, 3]), vec!["ab".to_string()]);
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = term_frequencies(&word_tokens("alpha beta gamma"));
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let a = term_frequencies(&word_tokens("alpha beta"));
        let b = term_frequencies(&word_tokens("gamma delta"));
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn tfidf_similar_names_score_high() {
        let corpus = vec![
            "ServiceA::handleRequest.cpu",
            "ServiceA::handleRequest.latency",
            "ServiceB::processQueue.cpu",
            "Database::query.throughput",
        ];
        let model = TfIdf::fit(&corpus, &[2, 3]);
        let same_subroutine = model.similarity(
            "ServiceA::handleRequest.cpu",
            "ServiceA::handleRequest.latency",
        );
        let different =
            model.similarity("ServiceA::handleRequest.cpu", "Database::query.throughput");
        assert!(same_subroutine > different + 0.2);
        assert!(same_subroutine > 0.5);
    }

    #[test]
    fn tfidf_downweights_ubiquitous_terms() {
        // "cpu" appears in every doc; its grams should matter less than the
        // distinctive subroutine names.
        let corpus = vec!["aaa.cpu", "bbb.cpu", "ccc.cpu", "ddd.cpu"];
        let model = TfIdf::fit(&corpus, &[3]);
        let shared_suffix = model.similarity("aaa.cpu", "bbb.cpu");
        assert!(shared_suffix < 0.8, "similarity = {shared_suffix}");
    }

    #[test]
    fn integer_signature_stable_and_distinct() {
        let corpus = vec!["foo.cpu", "bar.cpu", "baz.mem"];
        let model = TfIdf::fit(&corpus, &[2, 3]);
        assert_eq!(
            model.integer_signature("foo.cpu"),
            model.integer_signature("foo.cpu")
        );
        assert_ne!(
            model.integer_signature("foo.cpu"),
            model.integer_signature("baz.mem")
        );
    }

    #[test]
    fn weighted_fields_bias_similarity() {
        let a = weighted_word_vector(&[("loosening constraints for foo", 2.0)]);
        let b = weighted_word_vector(&[("regression in subroutine foo", 1.0)]);
        let c = weighted_word_vector(&[("unrelated database migration", 1.0)]);
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
    }

    #[test]
    fn empty_vectors_similarity_zero() {
        let empty = SparseVector::new();
        let v = term_frequencies(&word_tokens("x"));
        assert_eq!(cosine_similarity(&empty, &v), 0.0);
    }
}
