//! Discrete Fourier features for clustering (§5.5.1).
//!
//! SOMDedup represents each regression with "typical time-series metrics like
//! Fourier frequencies, variance, change points". This module computes the
//! DFT magnitude spectrum and compact spectral features (dominant
//! frequencies, spectral energy) for use as clustering inputs.
//!
//! The spectrum is computed with an O(n log n) FFT: an iterative radix-2
//! transform when the length is a power of two, and Bluestein's chirp-z
//! algorithm otherwise (which zero-pads to the next power of two internally
//! while still producing the *exact* length-n DFT, so bin frequencies are
//! identical to the direct O(n²) transform it replaced).

use crate::error::{ensure_finite, ensure_len};
use crate::scratch::ScratchVec;
use crate::Result;
use std::f64::consts::{PI, TAU};

/// Magnitudes of the first `n/2` DFT coefficients (excluding DC).
///
/// O(n log n) via FFT; numerically pinned to [`magnitude_spectrum_naive`]
/// by property tests.
pub fn magnitude_spectrum(data: &[f64]) -> Result<Vec<f64>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let mut centered = ScratchVec::with_capacity(n);
    centered.extend(data.iter().map(|x| x - mean));
    let (re, im) = dft_real(&centered);
    Ok((1..=n / 2)
        .map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt() / n as f64)
        .collect())
}

/// Reference spectrum via the direct O(n²) DFT.
///
/// Ground truth for the property tests pinning the FFT fast path; not used
/// on the scan hot path.
pub fn magnitude_spectrum_naive(data: &[f64]) -> Result<Vec<f64>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let half = n / 2;
    let mut mags = Vec::with_capacity(half);
    for k in 1..=half {
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &x) in data.iter().enumerate() {
            let angle = -TAU * k as f64 * t as f64 / n as f64;
            let centered = x - mean;
            re += centered * angle.cos();
            im += centered * angle.sin();
        }
        mags.push((re * re + im * im).sqrt() / n as f64);
    }
    Ok(mags)
}

/// Full length-n DFT of a real signal: `X_k = Σ_t x_t e^(−2πi·kt/n)`.
///
/// Dispatches to the radix-2 FFT for power-of-two lengths and to
/// Bluestein's algorithm otherwise.
fn dft_real(data: &[f64]) -> (ScratchVec, ScratchVec) {
    let n = data.len();
    if n.is_power_of_two() {
        let mut re = ScratchVec::copied(data);
        let mut im = ScratchVec::zeroed(n);
        fft_pow2(&mut re, &mut im, false);
        (re, im)
    } else {
        bluestein(data)
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT. `re.len()` must be a power
/// of two and equal to `im.len()`. When `invert` is set, computes the
/// inverse transform including the 1/n normalization.
///
/// Crate-internal: the ACF (Wiener–Khinchin) and Loess sliding-regression
/// fast paths reuse this transform directly.
pub(crate) fn fft_pow2(re: &mut [f64], im: &mut [f64], invert: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two() && im.len() == n);
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let sign = if invert { 1.0 } else { -1.0 };
    // One trig table, computed directly (not by recurrence) so round-off
    // stays at machine epsilon, serves every stage: the stage-`len` twiddle
    // e^(sign·iτk/len) is entry k·(n/len), and both index computations
    // round the same real angle to the same float (power-of-two scaling),
    // so the transform is bit-identical to per-stage tables.
    let step = sign * TAU / n as f64;
    // Interleaved (cos, sin) pairs in one pooled buffer.
    let mut twiddle = ScratchVec::with_capacity(n);
    for k in 0..n / 2 {
        let a = step * k as f64;
        twiddle.push(a.cos());
        twiddle.push(a.sin());
    }
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let (wr, wi) = (twiddle[2 * k * stride], twiddle[2 * k * stride + 1]);
                let a = start + k;
                let b = a + half;
                let vr = re[b] * wr - im[b] * wi;
                let vi = re[b] * wi + im[b] * wr;
                re[b] = re[a] - vr;
                im[b] = im[a] - vi;
                re[a] += vr;
                im[a] += vi;
            }
        }
        len <<= 1;
    }
    if invert {
        let inv = 1.0 / n as f64;
        for v in re.iter_mut() {
            *v *= inv;
        }
        for v in im.iter_mut() {
            *v *= inv;
        }
    }
}

/// Bluestein's chirp-z transform: the exact length-n DFT for arbitrary n,
/// expressed as a circular convolution evaluated with power-of-two FFTs.
fn bluestein(data: &[f64]) -> (ScratchVec, ScratchVec) {
    let n = data.len();
    let m = (2 * n - 1).next_power_of_two();
    // Chirp w_j = e^(−iπ·j²/n) as interleaved (cos, sin) pairs; the
    // exponent is reduced mod 2n before the float conversion so the angle
    // never grows with j².
    let mut chirp = ScratchVec::with_capacity(2 * n);
    for j in 0..n {
        let e = (j * j) % (2 * n);
        let a = -PI * e as f64 / n as f64;
        chirp.push(a.cos());
        chirp.push(a.sin());
    }
    // a_j = x_j·w_j, zero-padded to m.
    let mut ar = ScratchVec::zeroed(m);
    let mut ai = ScratchVec::zeroed(m);
    for (j, &x) in data.iter().enumerate() {
        ar[j] = x * chirp[2 * j];
        ai[j] = x * chirp[2 * j + 1];
    }
    // b_j = conj(w_j), mirrored so index m−j stands in for −j.
    let mut br = ScratchVec::zeroed(m);
    let mut bi = ScratchVec::zeroed(m);
    br[0] = chirp[0];
    bi[0] = -chirp[1];
    for j in 1..n {
        br[j] = chirp[2 * j];
        bi[j] = -chirp[2 * j + 1];
        br[m - j] = br[j];
        bi[m - j] = bi[j];
    }
    fft_pow2(&mut ar, &mut ai, false);
    fft_pow2(&mut br, &mut bi, false);
    for j in 0..m {
        let r = ar[j] * br[j] - ai[j] * bi[j];
        let i = ar[j] * bi[j] + ai[j] * br[j];
        ar[j] = r;
        ai[j] = i;
    }
    fft_pow2(&mut ar, &mut ai, true);
    // X_k = w_k · (a ⊛ b)_k.
    let mut re = ScratchVec::zeroed(n);
    let mut im = ScratchVec::zeroed(n);
    for k in 0..n {
        re[k] = ar[k] * chirp[2 * k] - ai[k] * chirp[2 * k + 1];
        im[k] = ar[k] * chirp[2 * k + 1] + ai[k] * chirp[2 * k];
    }
    (re, im)
}

/// Sliding dot products ("valid" cross-correlations) of `signal` against a
/// set of kernels that all share one length `w`, with `0 < w <=
/// signal.len()`.
///
/// For each kernel `ker` the output vector holds, at every alignment
/// `j ∈ 0..=n−w`, the dot product `Σ_k ker[k] · signal[j + k]`. The signal
/// spectrum is computed once and shared across kernels, so the total cost is
/// `(kernels + 2)` power-of-two FFTs of length `m = n.next_power_of_two()`.
/// Zero-padding to `m ≥ n` is sufficient because only convolution outputs at
/// positions `t ≥ w − 1` are read, which never wrap circularly.
///
/// Kernels whose length differs from the first kernel's, or an empty kernel
/// set, yield empty outputs rather than panicking.
pub(crate) fn sliding_dots(signal: &[f64], kernels: &[&[f64]]) -> Vec<Vec<f64>> {
    let n = signal.len();
    let w = kernels.first().map_or(0, |k| k.len());
    if w == 0 || w > n {
        return kernels.iter().map(|_| Vec::new()).collect();
    }
    let m = n.next_power_of_two();
    let mut sig_re = ScratchVec::zeroed(m);
    sig_re[..n].copy_from_slice(signal);
    let mut sig_im = ScratchVec::zeroed(m);
    fft_pow2(&mut sig_re, &mut sig_im, false);
    kernels
        .iter()
        .map(|ker| {
            if ker.len() != w {
                return Vec::new();
            }
            // Reverse the kernel so linear convolution at t = j + w − 1
            // equals the sliding dot product at alignment j.
            let mut kr = ScratchVec::zeroed(m);
            let mut ki = ScratchVec::zeroed(m);
            for (j, &v) in ker.iter().enumerate() {
                kr[w - 1 - j] = v;
            }
            fft_pow2(&mut kr, &mut ki, false);
            for idx in 0..m {
                let r = kr[idx] * sig_re[idx] - ki[idx] * sig_im[idx];
                let i = kr[idx] * sig_im[idx] + ki[idx] * sig_re[idx];
                kr[idx] = r;
                ki[idx] = i;
            }
            fft_pow2(&mut kr, &mut ki, true);
            (0..=n - w).map(|j| kr[j + w - 1]).collect()
        })
        .collect()
}

/// Compact spectral features for clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralFeatures {
    /// Indices (1-based DFT bin) of the `top_k` strongest frequencies.
    pub dominant_bins: Vec<usize>,
    /// Their magnitudes, same order.
    pub dominant_magnitudes: Vec<f64>,
    /// Total spectral energy (sum of squared magnitudes).
    pub energy: f64,
    /// Fraction of energy in the lowest quartile of frequencies — high for
    /// trend/step series, low for fast oscillation.
    pub low_frequency_fraction: f64,
}

/// Extracts [`SpectralFeatures`] with the `top_k` dominant bins.
pub fn spectral_features(data: &[f64], top_k: usize) -> Result<SpectralFeatures> {
    let mags = magnitude_spectrum(data)?;
    let energy: f64 = mags.iter().map(|m| m * m).sum();
    let quarter = (mags.len() / 4).max(1);
    let low_energy: f64 = mags[..quarter].iter().map(|m| m * m).sum();
    let mut indexed: Vec<(usize, f64)> =
        mags.iter().enumerate().map(|(i, &m)| (i + 1, m)).collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top = indexed.into_iter().take(top_k);
    let (dominant_bins, dominant_magnitudes) = top.fold(
        (Vec::new(), Vec::new()),
        |(mut bins, mut mags), (bin, mag)| {
            bins.push(bin);
            mags.push(mag);
            (bins, mags)
        },
    );
    Ok(SpectralFeatures {
        dominant_bins,
        dominant_magnitudes,
        energy,
        low_frequency_fraction: if energy > 0.0 {
            low_energy / energy
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_sine_has_single_peak() {
        // 8 full cycles over 128 samples -> bin 8 dominates.
        let data: Vec<f64> = (0..128)
            .map(|i| (i as f64 * 8.0 / 128.0 * std::f64::consts::TAU).sin())
            .collect();
        let f = spectral_features(&data, 1).unwrap();
        assert_eq!(f.dominant_bins[0], 8);
    }

    #[test]
    fn constant_series_zero_energy() {
        let data = vec![3.0; 64];
        let f = spectral_features(&data, 3).unwrap();
        assert!(f.energy < 1e-20);
    }

    #[test]
    fn step_concentrates_low_frequency() {
        let mut data = vec![0.0; 64];
        data.extend(vec![1.0; 64]);
        let f = spectral_features(&data, 4).unwrap();
        assert!(
            f.low_frequency_fraction > 0.8,
            "lf = {}",
            f.low_frequency_fraction
        );
        assert_eq!(f.dominant_bins[0], 1);
    }

    #[test]
    fn fast_oscillation_is_high_frequency() {
        let data: Vec<f64> = (0..128)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let f = spectral_features(&data, 1).unwrap();
        assert!(f.low_frequency_fraction < 0.1);
        assert_eq!(f.dominant_bins[0], 64);
    }

    #[test]
    fn parseval_energy_relation() {
        // Spectrum energy tracks time-domain variance for a sine.
        let data: Vec<f64> = (0..256)
            .map(|i| 2.0 * (i as f64 * 4.0 / 256.0 * std::f64::consts::TAU).sin())
            .collect();
        let f = spectral_features(&data, 1).unwrap();
        // A sine of amplitude A has its DFT magnitude A/2 in one bin (for
        // our 1/n normalization).
        assert!((f.dominant_magnitudes[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn spectrum_length_is_half() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(magnitude_spectrum(&data).unwrap().len(), 50);
    }

    fn pseudo_series(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z >> 33) % 10_000) as f64 / 1_000.0 - 5.0
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft_power_of_two() {
        let data = pseudo_series(128, 17);
        let fast = magnitude_spectrum(&data).unwrap();
        let slow = magnitude_spectrum_naive(&data).unwrap();
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-9, "fast {f} vs slow {s}");
        }
    }

    #[test]
    fn fft_matches_naive_dft_arbitrary_lengths() {
        for &n in &[2usize, 3, 5, 7, 31, 100, 225, 900] {
            let data = pseudo_series(n, n as u64);
            let fast = magnitude_spectrum(&data).unwrap();
            let slow = magnitude_spectrum_naive(&data).unwrap();
            assert_eq!(fast.len(), slow.len());
            for (k, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert!((f - s).abs() < 1e-9, "n={n} bin {k}: fast {f} vs slow {s}");
            }
        }
    }
}
