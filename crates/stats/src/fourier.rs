//! Discrete Fourier features for clustering (§5.5.1).
//!
//! SOMDedup represents each regression with "typical time-series metrics like
//! Fourier frequencies, variance, change points". This module computes the
//! DFT magnitude spectrum and compact spectral features (dominant
//! frequencies, spectral energy) for use as clustering inputs.

use crate::error::{ensure_finite, ensure_len};
use crate::Result;

/// Magnitudes of the first `n/2` DFT coefficients (excluding DC).
///
/// A direct O(n²) DFT — the pipeline applies it to analysis windows of at
/// most a few thousand samples, where this is fast enough and dependency-free.
pub fn magnitude_spectrum(data: &[f64]) -> Result<Vec<f64>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let half = n / 2;
    let mut mags = Vec::with_capacity(half);
    for k in 1..=half {
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &x) in data.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64;
            let centered = x - mean;
            re += centered * angle.cos();
            im += centered * angle.sin();
        }
        mags.push((re * re + im * im).sqrt() / n as f64);
    }
    Ok(mags)
}

/// Compact spectral features for clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralFeatures {
    /// Indices (1-based DFT bin) of the `top_k` strongest frequencies.
    pub dominant_bins: Vec<usize>,
    /// Their magnitudes, same order.
    pub dominant_magnitudes: Vec<f64>,
    /// Total spectral energy (sum of squared magnitudes).
    pub energy: f64,
    /// Fraction of energy in the lowest quartile of frequencies — high for
    /// trend/step series, low for fast oscillation.
    pub low_frequency_fraction: f64,
}

/// Extracts [`SpectralFeatures`] with the `top_k` dominant bins.
pub fn spectral_features(data: &[f64], top_k: usize) -> Result<SpectralFeatures> {
    let mags = magnitude_spectrum(data)?;
    let energy: f64 = mags.iter().map(|m| m * m).sum();
    let quarter = (mags.len() / 4).max(1);
    let low_energy: f64 = mags[..quarter].iter().map(|m| m * m).sum();
    let mut indexed: Vec<(usize, f64)> =
        mags.iter().enumerate().map(|(i, &m)| (i + 1, m)).collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite magnitudes"));
    let top = indexed.into_iter().take(top_k);
    let (dominant_bins, dominant_magnitudes) = top.fold(
        (Vec::new(), Vec::new()),
        |(mut bins, mut mags), (bin, mag)| {
            bins.push(bin);
            mags.push(mag);
            (bins, mags)
        },
    );
    Ok(SpectralFeatures {
        dominant_bins,
        dominant_magnitudes,
        energy,
        low_frequency_fraction: if energy > 0.0 {
            low_energy / energy
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_sine_has_single_peak() {
        // 8 full cycles over 128 samples -> bin 8 dominates.
        let data: Vec<f64> = (0..128)
            .map(|i| (i as f64 * 8.0 / 128.0 * std::f64::consts::TAU).sin())
            .collect();
        let f = spectral_features(&data, 1).unwrap();
        assert_eq!(f.dominant_bins[0], 8);
    }

    #[test]
    fn constant_series_zero_energy() {
        let data = vec![3.0; 64];
        let f = spectral_features(&data, 3).unwrap();
        assert!(f.energy < 1e-20);
    }

    #[test]
    fn step_concentrates_low_frequency() {
        let mut data = vec![0.0; 64];
        data.extend(vec![1.0; 64]);
        let f = spectral_features(&data, 4).unwrap();
        assert!(
            f.low_frequency_fraction > 0.8,
            "lf = {}",
            f.low_frequency_fraction
        );
        assert_eq!(f.dominant_bins[0], 1);
    }

    #[test]
    fn fast_oscillation_is_high_frequency() {
        let data: Vec<f64> = (0..128)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let f = spectral_features(&data, 1).unwrap();
        assert!(f.low_frequency_fraction < 0.1);
        assert_eq!(f.dominant_bins[0], 64);
    }

    #[test]
    fn parseval_energy_relation() {
        // Spectrum energy tracks time-domain variance for a sine.
        let data: Vec<f64> = (0..256)
            .map(|i| 2.0 * (i as f64 * 4.0 / 256.0 * std::f64::consts::TAU).sin())
            .collect();
        let f = spectral_features(&data, 1).unwrap();
        // A sine of amplitude A has its DFT magnitude A/2 in one bin (for
        // our 1/n normalization).
        assert!((f.dominant_magnitudes[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn spectrum_length_is_half() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(magnitude_spectrum(&data).unwrap().len(), 50);
    }
}
