//! Autocorrelation for seasonality presence checks (§5.2.3).
//!
//! Before running STL, FBDetect applies the autocorrelation function and only
//! treats a series as seasonal if the correlation at some lag is significant.

use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// Autocorrelation of `data` at a single `lag`.
///
/// Uses the standard biased estimator normalized by the lag-0 variance, so
/// values lie in `[-1, 1]`.
pub fn autocorrelation(data: &[f64], lag: usize) -> Result<f64> {
    ensure_len(data, lag + 2)?;
    ensure_finite(data)?;
    if lag == 0 {
        return Ok(1.0);
    }
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let denom: f64 = data.iter().map(|v| (v - mean) * (v - mean)).sum();
    if !(denom > 0.0) {
        return Err(StatsError::Degenerate("zero variance in autocorrelation"));
    }
    let num: f64 = (0..n - lag)
        .map(|i| (data[i] - mean) * (data[i + lag] - mean))
        .sum();
    Ok(num / denom)
}

/// Autocorrelations for all lags `1..=max_lag`.
pub fn acf(data: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    (1..=max_lag)
        .map(|lag| autocorrelation(data, lag))
        .collect()
}

/// Detected seasonality, if any.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Seasonality {
    /// The dominant period in samples.
    pub period: usize,
    /// Autocorrelation at that period.
    pub strength: f64,
}

/// Searches for a dominant seasonal period via the ACF.
///
/// Scans lags `min_period..=max_lag` for local ACF maxima exceeding
/// `threshold` (the significance bound `~1.96/√n` is a common choice; the
/// detector uses a stricter default). Returns the strongest peak.
///
/// # Examples
///
/// ```
/// let data: Vec<f64> = (0..200)
///     .map(|i| (i as f64 / 20.0 * std::f64::consts::TAU).sin())
///     .collect();
/// let s = fbd_stats::acf::find_seasonality(&data, 2, 60, 0.3).unwrap();
/// assert_eq!(s.unwrap().period, 20);
/// ```
pub fn find_seasonality(
    data: &[f64],
    min_period: usize,
    max_lag: usize,
    threshold: f64,
) -> Result<Option<Seasonality>> {
    if min_period < 2 {
        return Err(StatsError::InvalidParameter("min_period must be >= 2"));
    }
    let max_lag = max_lag.min(data.len().saturating_sub(2));
    if max_lag < min_period {
        return Ok(None);
    }
    let correlations = acf(data, max_lag)?;
    let mut best: Option<Seasonality> = None;
    for lag in min_period..=max_lag {
        let c = correlations[lag - 1];
        if c < threshold {
            continue;
        }
        // Require a local maximum so harmonics of smaller peaks don't win on
        // plateaus.
        let prev = if lag >= 2 {
            correlations[lag - 2]
        } else {
            f64::MIN
        };
        let next = if lag < max_lag {
            correlations[lag]
        } else {
            f64::MIN
        };
        if c >= prev && c >= next {
            match best {
                Some(b) if b.strength >= c => {}
                _ => {
                    best = Some(Seasonality {
                        period: lag,
                        strength: c,
                    })
                }
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(autocorrelation(&data, 0).unwrap(), 1.0);
    }

    #[test]
    fn sine_peaks_at_period() {
        let data: Vec<f64> = (0..240)
            .map(|i| (i as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let s = find_seasonality(&data, 2, 72, 0.3).unwrap().unwrap();
        assert_eq!(s.period, 24);
        assert!(s.strength > 0.85, "strength = {}", s.strength);
    }

    #[test]
    fn white_noise_has_no_seasonality() {
        // SplitMix-style bit mixing gives properly decorrelated noise.
        let data: Vec<f64> = (0..300)
            .map(|i| {
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let h = z ^ (z >> 31);
                ((h >> 33) % 1000) as f64 / 1000.0 - 0.5
            })
            .collect();
        let s = find_seasonality(&data, 2, 100, 0.3).unwrap();
        assert!(s.is_none());
    }

    #[test]
    fn trend_does_not_register_as_short_seasonality() {
        // A pure linear trend produces high ACF at all lags but no local
        // peaks in short lags (monotone decreasing ACF).
        let data: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let s = find_seasonality(&data, 2, 50, 0.95).unwrap();
        // Only the first lag can be a "peak"; period should not be mid-range.
        if let Some(s) = s {
            assert!(s.period <= 3, "unexpected period {}", s.period);
        }
    }

    #[test]
    fn anticorrelated_at_half_period() {
        let data: Vec<f64> = (0..240)
            .map(|i| (i as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let c = autocorrelation(&data, 12).unwrap();
        assert!(c < -0.7, "half-period ACF = {c}");
    }

    #[test]
    fn constant_series_degenerate() {
        let data = vec![5.0; 50];
        assert!(matches!(
            autocorrelation(&data, 3),
            Err(StatsError::Degenerate(_))
        ));
    }

    #[test]
    fn acf_returns_requested_lags() {
        let data: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let v = acf(&data, 10).unwrap();
        assert_eq!(v.len(), 10);
        assert!(v.iter().all(|c| (-1.0001..=1.0001).contains(c)));
    }
}
