//! Autocorrelation for seasonality presence checks (§5.2.3).
//!
//! Before running STL, FBDetect applies the autocorrelation function and only
//! treats a series as seasonal if the correlation at some lag is significant.

use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// Autocorrelation of `data` at a single `lag`.
///
/// Uses the standard biased estimator normalized by the lag-0 variance, so
/// values lie in `[-1, 1]`.
pub fn autocorrelation(data: &[f64], lag: usize) -> Result<f64> {
    ensure_len(data, lag + 2)?;
    ensure_finite(data)?;
    if lag == 0 {
        return Ok(1.0);
    }
    let n = data.len();
    let mean = data.iter().sum::<f64>() / n as f64;
    let denom: f64 = data.iter().map(|v| (v - mean) * (v - mean)).sum();
    if !(denom > 0.0) {
        return Err(StatsError::Degenerate("zero variance in autocorrelation"));
    }
    let num: f64 = (0..n - lag)
        .map(|i| (data[i] - mean) * (data[i + lag] - mean))
        .sum();
    Ok(num / denom)
}

/// Autocorrelations for all lags `1..=max_lag`.
///
/// Dispatches between the per-lag estimator ([`acf_naive`], O(n·max_lag))
/// and the Wiener–Khinchin FFT path ([`acf_fft`], O(n log n) for *all* lags
/// at once). The choice depends only on `(data.len(), max_lag)`, so it is
/// deterministic; the small-lag regime used by the seasonality detector
/// always takes the naive path and stays bit-identical to previous releases,
/// while wide scans (`max_lag` of order n) get the linearithmic kernel.
pub fn acf(data: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if acf_fft_pays_off(data.len(), max_lag) {
        acf_fft(data, max_lag)
    } else {
        acf_naive(data, max_lag)
    }
}

/// Reference all-lags ACF via the per-lag O(n) estimator.
///
/// Ground truth for the property tests pinning [`acf_fft`]; also the
/// faster kernel when `max_lag` is small relative to `n`.
///
/// The mean and lag-0 variance are hoisted out of the per-lag loop: each
/// lag's value is the same expression [`autocorrelation`] computes (the
/// hoisted terms are identical f64s), so results are bit-identical to
/// mapping `autocorrelation` over the lags, at roughly a third of the
/// arithmetic. Validation order (length, finiteness, degeneracy, then the
/// max-lag length requirement) mirrors the sequential per-lag path, so
/// callers observe identical errors.
pub fn acf_naive(data: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if max_lag == 0 {
        return Ok(Vec::new());
    }
    let n = data.len();
    // Lag 1 requires 3 samples; sequential mapping would fail there first.
    ensure_len(data, 3)?;
    ensure_finite(data)?;
    let mean = data.iter().sum::<f64>() / n as f64;
    let denom: f64 = data.iter().map(|v| (v - mean) * (v - mean)).sum();
    if !(denom > 0.0) {
        return Err(StatsError::Degenerate("zero variance in autocorrelation"));
    }
    if max_lag > n - 2 {
        // Sequential mapping computes lags up to n − 2, then errors on lag
        // n − 1, whose length requirement is n + 1.
        return Err(StatsError::TooFewSamples {
            required: n + 1,
            actual: n,
        });
    }
    Ok((1..=max_lag)
        .map(|lag| {
            let num: f64 = (0..n - lag)
                .map(|i| (data[i] - mean) * (data[i + lag] - mean))
                .sum();
            num / denom
        })
        .collect())
}

/// All-lags ACF in O(n log n) via the Wiener–Khinchin theorem.
///
/// Centers the series, zero-pads to `m = (2n).next_power_of_two()` (so the
/// circular autocorrelation of the padded signal equals the *linear* lagged
/// products for every lag `< n`), takes the power spectrum, and inverse
/// transforms. Each lag-k output is then the exact sum
/// `Σ_i (x_i − mean)(x_{i+k} − mean)` up to FFT round-off, normalized by the
/// directly computed lag-0 variance — the same denominator as
/// [`autocorrelation`], so the two paths agree to ~1e-9 relative error.
///
/// Validation order (length, finiteness, degeneracy) replicates the naive
/// path exactly so callers observe identical errors.
pub fn acf_fft(data: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    if max_lag == 0 {
        return Ok(Vec::new());
    }
    let n = data.len();
    // The naive path fails at lag 1 when n < 3 (ensure_len(data, 3)).
    ensure_len(data, 3)?;
    ensure_finite(data)?;
    let mean = data.iter().sum::<f64>() / n as f64;
    let denom: f64 = data.iter().map(|v| (v - mean) * (v - mean)).sum();
    if !(denom > 0.0) {
        return Err(StatsError::Degenerate("zero variance in autocorrelation"));
    }
    if max_lag > n - 2 {
        // The naive path computes lags up to n − 2, then errors on lag
        // n − 1, whose length requirement is n + 1.
        return Err(StatsError::TooFewSamples {
            required: n + 1,
            actual: n,
        });
    }
    let m = (2 * n).next_power_of_two();
    let mut re = vec![0.0; m];
    for (slot, &v) in re.iter_mut().zip(data.iter()) {
        *slot = v - mean;
    }
    let mut im = vec![0.0; m];
    crate::fourier::fft_pow2(&mut re, &mut im, false);
    for k in 0..m {
        re[k] = re[k] * re[k] + im[k] * im[k];
        im[k] = 0.0;
    }
    crate::fourier::fft_pow2(&mut re, &mut im, true);
    Ok((1..=max_lag).map(|lag| re[lag] / denom).collect())
}

/// Deterministic cost model for the [`acf`] dispatch: the FFT path costs
/// three length-m transforms (m = next power of two ≥ 2n) against
/// `n·max_lag` multiply-adds for the naive path. The factor 8 accounts for
/// the heavier per-butterfly arithmetic; below `max_lag = 32` the naive path
/// always wins (and stays bit-identical for the seasonality detector's
/// small-lag scans).
fn acf_fft_pays_off(n: usize, max_lag: usize) -> bool {
    if max_lag < 32 || n < 8 {
        return false;
    }
    let m = (2 * n).next_power_of_two();
    let log_m = m.trailing_zeros() as usize;
    n.saturating_mul(max_lag) > 8 * m * log_m
}

/// Detected seasonality, if any.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Seasonality {
    /// The dominant period in samples.
    pub period: usize,
    /// Autocorrelation at that period.
    pub strength: f64,
}

/// Searches for a dominant seasonal period via the ACF.
///
/// Scans lags `min_period..=max_lag` for local ACF maxima exceeding
/// `threshold` (the significance bound `~1.96/√n` is a common choice; the
/// detector uses a stricter default). Returns the strongest peak.
///
/// # Examples
///
/// ```
/// let data: Vec<f64> = (0..200)
///     .map(|i| (i as f64 / 20.0 * std::f64::consts::TAU).sin())
///     .collect();
/// let s = fbd_stats::acf::find_seasonality(&data, 2, 60, 0.3).unwrap();
/// assert_eq!(s.unwrap().period, 20);
/// ```
pub fn find_seasonality(
    data: &[f64],
    min_period: usize,
    max_lag: usize,
    threshold: f64,
) -> Result<Option<Seasonality>> {
    if min_period < 2 {
        return Err(StatsError::InvalidParameter("min_period must be >= 2"));
    }
    let max_lag = max_lag.min(data.len().saturating_sub(2));
    if max_lag < min_period {
        return Ok(None);
    }
    let correlations = acf(data, max_lag)?;
    let mut best: Option<Seasonality> = None;
    for lag in min_period..=max_lag {
        let c = correlations[lag - 1];
        if c < threshold {
            continue;
        }
        // Require a local maximum so harmonics of smaller peaks don't win on
        // plateaus.
        let prev = if lag >= 2 {
            correlations[lag - 2]
        } else {
            f64::MIN
        };
        let next = if lag < max_lag {
            correlations[lag]
        } else {
            f64::MIN
        };
        if c >= prev && c >= next {
            match best {
                Some(b) if b.strength >= c => {}
                _ => {
                    best = Some(Seasonality {
                        period: lag,
                        strength: c,
                    })
                }
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(autocorrelation(&data, 0).unwrap(), 1.0);
    }

    #[test]
    fn sine_peaks_at_period() {
        let data: Vec<f64> = (0..240)
            .map(|i| (i as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let s = find_seasonality(&data, 2, 72, 0.3).unwrap().unwrap();
        assert_eq!(s.period, 24);
        assert!(s.strength > 0.85, "strength = {}", s.strength);
    }

    #[test]
    fn white_noise_has_no_seasonality() {
        // SplitMix-style bit mixing gives properly decorrelated noise.
        let data: Vec<f64> = (0..300)
            .map(|i| {
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let h = z ^ (z >> 31);
                ((h >> 33) % 1000) as f64 / 1000.0 - 0.5
            })
            .collect();
        let s = find_seasonality(&data, 2, 100, 0.3).unwrap();
        assert!(s.is_none());
    }

    #[test]
    fn trend_does_not_register_as_short_seasonality() {
        // A pure linear trend produces high ACF at all lags but no local
        // peaks in short lags (monotone decreasing ACF).
        let data: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let s = find_seasonality(&data, 2, 50, 0.95).unwrap();
        // Only the first lag can be a "peak"; period should not be mid-range.
        if let Some(s) = s {
            assert!(s.period <= 3, "unexpected period {}", s.period);
        }
    }

    #[test]
    fn anticorrelated_at_half_period() {
        let data: Vec<f64> = (0..240)
            .map(|i| (i as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        let c = autocorrelation(&data, 12).unwrap();
        assert!(c < -0.7, "half-period ACF = {c}");
    }

    #[test]
    fn constant_series_degenerate() {
        let data = vec![5.0; 50];
        assert!(matches!(
            autocorrelation(&data, 3),
            Err(StatsError::Degenerate(_))
        ));
    }

    #[test]
    fn acf_returns_requested_lags() {
        let data: Vec<f64> = (0..50).map(|i| (i % 5) as f64).collect();
        let v = acf(&data, 10).unwrap();
        assert_eq!(v.len(), 10);
        assert!(v.iter().all(|c| (-1.0001..=1.0001).contains(c)));
    }

    fn pseudo_series(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z >> 33) % 10_000) as f64 / 1_000.0 - 5.0
            })
            .collect()
    }

    #[test]
    fn hoisted_naive_acf_is_bit_identical_to_per_lag_estimator() {
        for &n in &[16usize, 100, 900] {
            let data = pseudo_series(n, n as u64);
            let hoisted = acf_naive(&data, n - 2).unwrap();
            for (lag, h) in hoisted.iter().enumerate() {
                let direct = autocorrelation(&data, lag + 1).unwrap();
                assert_eq!(h.to_bits(), direct.to_bits(), "n={n} lag {}", lag + 1);
            }
        }
    }

    #[test]
    fn fft_acf_matches_naive_all_lags() {
        for &n in &[16usize, 100, 225, 900] {
            let data = pseudo_series(n, n as u64 + 3);
            let max_lag = n - 2;
            let fast = acf_fft(&data, max_lag).unwrap();
            let slow = acf_naive(&data, max_lag).unwrap();
            assert_eq!(fast.len(), slow.len());
            for (lag, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert!((f - s).abs() < 1e-9, "n={n} lag {}: {f} vs {s}", lag + 1);
            }
        }
    }

    #[test]
    fn fft_acf_error_parity_with_naive() {
        // Degenerate variance.
        let flat = vec![5.0; 50];
        assert!(matches!(
            acf_fft(&flat, 3),
            Err(StatsError::Degenerate(_))
        ));
        // Too short for lag 1.
        assert!(matches!(
            acf_fft(&[1.0, 2.0], 1),
            Err(StatsError::TooFewSamples { .. })
        ));
        // max_lag beyond n − 2 fails like the naive sequential path.
        let data = pseudo_series(10, 9);
        let fast_err = acf_fft(&data, 9);
        let slow_err = acf_naive(&data, 9);
        assert!(matches!(
            fast_err,
            Err(StatsError::TooFewSamples {
                required: 11,
                actual: 10
            })
        ));
        assert!(matches!(
            slow_err,
            Err(StatsError::TooFewSamples {
                required: 11,
                actual: 10
            })
        ));
        // Zero lags: both return an empty vector.
        assert!(acf_fft(&data, 0).unwrap().is_empty());
        assert!(acf_naive(&data, 0).unwrap().is_empty());
    }

    #[test]
    fn dispatch_uses_fft_for_wide_scans() {
        // Wide-lag scan where the FFT path is selected; the dispatcher must
        // still agree with naive to float tolerance.
        let n = 1024;
        let data = pseudo_series(n, 77);
        assert!(super::acf_fft_pays_off(n, n - 2));
        assert!(!super::acf_fft_pays_off(900, 26));
        let via_dispatch = acf(&data, n - 2).unwrap();
        let slow = acf_naive(&data, n - 2).unwrap();
        for (f, s) in via_dispatch.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-9);
        }
    }
}
