//! Moving-average smoothing — the seasonality-handling alternative the paper
//! evaluated and rejected in favour of STL (§5.2.3, "Discussion of
//! alternatives"). Kept as a substrate so the ablation bench can compare the
//! two, and used for general smoothing elsewhere.

use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// Centred moving average with the given window (window must be odd and at
/// most the series length).
pub fn centered_moving_average(data: &[f64], window: usize) -> Result<Vec<f64>> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    if window == 0 || window.is_multiple_of(2) {
        return Err(StatsError::InvalidParameter(
            "window must be odd and positive",
        ));
    }
    if window > data.len() {
        return Err(StatsError::TooFewSamples {
            required: window,
            actual: data.len(),
        });
    }
    let half = window / 2;
    let n = data.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let slice = &data[lo..hi];
        out.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    Ok(out)
}

/// Trailing (causal) moving average: each output is the mean of the last
/// `window` samples up to and including the current one.
pub fn trailing_moving_average(data: &[f64], window: usize) -> Result<Vec<f64>> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    if window == 0 {
        return Err(StatsError::InvalidParameter("window must be positive"));
    }
    let mut out = Vec::with_capacity(data.len());
    let mut sum = 0.0;
    for (i, &v) in data.iter().enumerate() {
        sum += v;
        if i >= window {
            sum -= data[i - window];
        }
        let count = (i + 1).min(window);
        out.push(sum / count as f64);
    }
    Ok(out)
}

/// Moving-average seasonal decomposition: the seasonal component is the
/// series minus a period-length centred moving average, averaged by phase.
///
/// Returns `(seasonal, deseasonalized)`.
pub fn moving_average_deseasonalize(data: &[f64], period: usize) -> Result<(Vec<f64>, Vec<f64>)> {
    if period < 2 {
        return Err(StatsError::InvalidParameter("period must be >= 2"));
    }
    ensure_len(data, period * 2)?;
    ensure_finite(data)?;
    // Use an odd window spanning roughly one period.
    let window = if period % 2 == 1 { period } else { period + 1 };
    let trend = centered_moving_average(data, window)?;
    let detrended: Vec<f64> = data.iter().zip(&trend).map(|(d, t)| d - t).collect();
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for (i, &v) in detrended.iter().enumerate() {
        phase_sum[i % period] += v;
        phase_count[i % period] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(s, c)| if *c > 0 { s / *c as f64 } else { 0.0 })
        .collect();
    // Centre to zero mean so the level stays in the deseasonalized series.
    let grand: f64 = phase_mean.iter().sum::<f64>() / period as f64;
    for v in phase_mean.iter_mut() {
        *v -= grand;
    }
    let seasonal: Vec<f64> = (0..data.len()).map(|i| phase_mean[i % period]).collect();
    let deseasonalized: Vec<f64> = data.iter().zip(&seasonal).map(|(d, s)| d - s).collect();
    Ok((seasonal, deseasonalized))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centered_ma_smooths_constant_exactly() {
        let data = vec![4.0; 20];
        let out = centered_moving_average(&data, 5).unwrap();
        assert!(out.iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn centered_ma_rejects_even_window() {
        assert!(centered_moving_average(&[1.0, 2.0, 3.0], 2).is_err());
        assert!(centered_moving_average(&[1.0, 2.0, 3.0], 0).is_err());
    }

    #[test]
    fn centered_ma_reduces_alternating_noise() {
        let data: Vec<f64> = (0..40)
            .map(|i| 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let out = centered_moving_average(&data, 5).unwrap();
        // Interior points smooth close to 1.0.
        for &v in &out[3..37] {
            assert!((v - 1.0).abs() < 0.15, "v = {v}");
        }
    }

    #[test]
    fn trailing_ma_is_causal() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let out = trailing_moving_average(&data, 2).unwrap();
        assert_eq!(out, vec![1.0, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn trailing_ma_window_one_is_identity() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(trailing_moving_average(&data, 1).unwrap(), data.to_vec());
    }

    #[test]
    fn deseasonalize_removes_square_wave() {
        let data: Vec<f64> = (0..120)
            .map(|i| 10.0 + if (i / 6) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let (_, des) = moving_average_deseasonalize(&data, 12).unwrap();
        let spread = des.iter().cloned().fold(f64::MIN, f64::max)
            - des.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.0, "spread = {spread}");
    }

    #[test]
    fn deseasonalize_preserves_step() {
        let mut data: Vec<f64> = (0..240)
            .map(|i| (i as f64 / 24.0 * std::f64::consts::TAU).sin())
            .collect();
        for v in data.iter_mut().skip(120) {
            *v += 3.0;
        }
        let (_, des) = moving_average_deseasonalize(&data, 24).unwrap();
        let before: f64 = des[..100].iter().sum::<f64>() / 100.0;
        let after: f64 = des[140..].iter().sum::<f64>() / (des.len() - 140) as f64;
        assert!((after - before - 3.0).abs() < 0.5);
    }
}
