//! Descriptive statistics: means, variances, percentiles, and the median
//! absolute deviation used by the went-away detector's regression threshold
//! (§5.2.2: `coefficient × median × 1.4826`).

use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// Normality constant that scales the MAD to estimate the standard deviation
/// of normally distributed data (paper §5.2.2).
pub const MAD_NORMALITY_CONSTANT: f64 = 1.4826;

/// Arithmetic mean of `data`.
///
/// # Examples
///
/// ```
/// let m = fbd_stats::descriptive::mean(&[1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(m, 2.0);
/// ```
pub fn mean(data: &[f64]) -> Result<f64> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance (denominator `n - 1`).
pub fn variance(data: &[f64]) -> Result<f64> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let m = data.iter().sum::<f64>() / data.len() as f64;
    let ss: f64 = data.iter().map(|v| (v - m) * (v - m)).sum();
    Ok(ss / (data.len() - 1) as f64)
}

/// Population variance (denominator `n`), used by the normal-loss
/// change-point search where the MLE variance is required.
pub fn population_variance(data: &[f64]) -> Result<f64> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    let m = data.iter().sum::<f64>() / data.len() as f64;
    let ss: f64 = data.iter().map(|v| (v - m) * (v - m)).sum();
    Ok(ss / data.len() as f64)
}

/// Sample standard deviation.
pub fn std_dev(data: &[f64]) -> Result<f64> {
    variance(data).map(f64::sqrt)
}

/// The `total_cmp`-least element of a non-empty slice. For finite values
/// `total_cmp` equality implies identical bits, so this returns exactly the
/// value a total-order sort would place first.
fn total_min(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .fold(f64::INFINITY, |best, v| {
            if f64::total_cmp(&v, &best).is_lt() {
                v
            } else {
                best
            }
        })
}

/// The `total_cmp`-greatest element of a non-empty slice.
fn total_max(data: &[f64]) -> f64 {
    data.iter()
        .copied()
        .fold(f64::NEG_INFINITY, |best, v| {
            if f64::total_cmp(&v, &best).is_gt() {
                v
            } else {
                best
            }
        })
}

/// Median of `data` (average of the two central order statistics for even
/// lengths).
///
/// Uses O(n) selection rather than a full sort. The selected order
/// statistics are exactly the elements a `total_cmp` sort would place at
/// the central ranks, so the result is bit-identical to [`median_naive`]
/// (the sort-based ground truth the property tests pin this against).
pub fn median(data: &[f64]) -> Result<f64> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    let mut scratch = data.to_vec();
    let n = scratch.len();
    let (left, mid, _) = scratch.select_nth_unstable_by(n / 2, f64::total_cmp);
    let mid = *mid;
    if n % 2 == 1 {
        Ok(mid)
    } else {
        // sorted[n/2 - 1] is the greatest element of the left partition.
        Ok(0.5 * (total_max(left) + mid))
    }
}

/// Reference median via a full sort. Ground truth for the selection-based
/// [`median`]; not used on the scan hot path.
pub fn median_naive(data: &[f64]) -> Result<f64> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        Ok(sorted[n / 2])
    } else {
        Ok(0.5 * (sorted[n / 2 - 1] + sorted[n / 2]))
    }
}

/// Percentile of `data` using linear interpolation between order statistics.
///
/// `p` must be in `[0, 100]`.
///
/// Uses O(n) selection for the (at most two) order statistics involved
/// instead of sorting; bit-identical to [`percentile_naive`].
pub fn percentile(data: &[f64], p: f64) -> Result<f64> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter(
            "percentile must be in [0, 100]",
        ));
    }
    let mut scratch = data.to_vec();
    let n = scratch.len();
    if n == 1 {
        return Ok(scratch[0]);
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let (_, lo_ref, right) = scratch.select_nth_unstable_by(lo, f64::total_cmp);
    let lo_v = *lo_ref;
    // sorted[lo + 1] is the least element of the right partition.
    let hi_v = if hi == lo { lo_v } else { total_min(right) };
    Ok(lo_v + frac * (hi_v - lo_v))
}

/// Reference percentile via a full sort. Ground truth for the
/// selection-based [`percentile`]; not used on the scan hot path.
pub fn percentile_naive(data: &[f64], p: f64) -> Result<f64> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidParameter(
            "percentile must be in [0, 100]",
        ));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Median absolute deviation around the median.
///
/// Multiply by [`MAD_NORMALITY_CONSTANT`] to obtain a robust estimate of the
/// standard deviation under normality.
pub fn mad(data: &[f64]) -> Result<f64> {
    let med = median(data)?;
    let deviations: Vec<f64> = data.iter().map(|v| (v - med).abs()).collect();
    median(&deviations)
}

/// Robust standard-deviation estimate: `MAD × 1.4826`.
pub fn robust_std(data: &[f64]) -> Result<f64> {
    mad(data).map(|m| m * MAD_NORMALITY_CONSTANT)
}

/// Minimum of `data`.
pub fn min(data: &[f64]) -> Result<f64> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    Ok(data.iter().copied().fold(f64::INFINITY, f64::min))
}

/// Maximum of `data`.
pub fn max(data: &[f64]) -> Result<f64> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    Ok(data.iter().copied().fold(f64::NEG_INFINITY, f64::max))
}

/// Z-normalizes `data` in place: subtracts the mean and divides by the
/// sample standard deviation. Required by SAX (§5.2.2).
///
/// Returns the `(mean, std_dev)` used, or an error if the variance is zero.
pub fn z_normalize(data: &mut [f64]) -> Result<(f64, f64)> {
    let m = mean(data)?;
    let s = std_dev(data)?;
    if !(s > 0.0) {
        return Err(StatsError::Degenerate("zero variance in z-normalization"));
    }
    for v in data.iter_mut() {
        *v = (*v - m) / s;
    }
    Ok((m, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data).unwrap(), 5.0);
        // Sample variance of this classic example is 32/7.
        assert!((variance(&data).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((population_variance(&data).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert_eq!(median(&[7.0]).unwrap(), 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 5.0);
        assert_eq!(percentile(&data, 50.0).unwrap(), 3.0);
        assert_eq!(percentile(&data, 25.0).unwrap(), 2.0);
        assert_eq!(percentile(&data, 90.0).unwrap(), 4.6);
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        assert!(matches!(
            percentile(&[1.0], 101.0),
            Err(StatsError::InvalidParameter(_))
        ));
    }

    #[test]
    fn mad_matches_hand_computation() {
        // Median = 2, deviations = [1, 0, 1, 3], MAD = 1.
        let data = [1.0, 2.0, 3.0, 5.0];
        assert_eq!(mad(&data).unwrap(), 1.0);
        assert!((robust_std(&data).unwrap() - 1.4826).abs() < 1e-12);
    }

    #[test]
    fn mad_robust_to_outlier() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dirty = [1.0, 2.0, 3.0, 4.0, 1000.0];
        // MAD barely moves, while the standard deviation explodes.
        assert!((mad(&clean).unwrap() - mad(&dirty).unwrap()).abs() <= 1.0);
        assert!(std_dev(&dirty).unwrap() > 100.0 * std_dev(&clean).unwrap());
    }

    #[test]
    fn z_normalize_gives_zero_mean_unit_std() {
        let mut data = vec![1.0, 5.0, 3.0, 9.0, 7.0];
        z_normalize(&mut data).unwrap();
        assert!(mean(&data).unwrap().abs() < 1e-12);
        assert!((std_dev(&data).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_rejects_constant_series() {
        let mut data = vec![2.0; 10];
        assert!(matches!(
            z_normalize(&mut data),
            Err(StatsError::Degenerate(_))
        ));
    }

    #[test]
    fn selection_median_and_percentile_match_sorting_bitwise() {
        // Duplicates, signed zeros, and skewed values exercise the
        // partition edges of the selection path.
        let mut data: Vec<f64> = (0..257)
            .map(|i| {
                let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((z >> 33) % 50) as f64 / 7.0 - 3.0
            })
            .collect();
        data.push(-0.0);
        data.push(0.0);
        for n in [1, 2, 3, 10, data.len()] {
            let slice = &data[..n];
            assert_eq!(
                median(slice).unwrap().to_bits(),
                median_naive(slice).unwrap().to_bits(),
                "median n={n}"
            );
            for p in [0.0, 10.0, 25.0, 50.0, 90.0, 95.0, 99.9, 100.0] {
                assert_eq!(
                    percentile(slice, p).unwrap().to_bits(),
                    percentile_naive(slice, p).unwrap().to_bits(),
                    "percentile n={n} p={p}"
                );
            }
        }
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(median(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
    }

    #[test]
    fn nan_inputs_error() {
        assert_eq!(mean(&[1.0, f64::NAN]), Err(StatsError::NonFiniteInput));
    }
}
