//! Special mathematical functions (gamma, erf, incomplete beta/gamma).
//!
//! These are the numerical building blocks for the probability distributions
//! in [`crate::distributions`]. Implementations follow standard references
//! (Lanczos approximation for `ln Γ`, Abramowitz & Stegun 7.1.26 for `erf`,
//! continued fractions for the regularized incomplete beta and gamma
//! functions) and are accurate to roughly 1e-10 over the ranges the detection
//! pipeline uses.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients.
///
/// # Examples
///
/// ```
/// let v = fbd_stats::special::ln_gamma(5.0);
/// assert!((v - (24.0f64).ln()).abs() < 1e-10); // Γ(5) = 4! = 24.
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// The error function `erf(x)`.
///
/// Maximum absolute error about 1.2e-7 (Abramowitz & Stegun 7.1.26),
/// which is ample for p-value thresholding at the 0.01 level.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Returns values in `[0, 1]`. For `x < a + 1` a series expansion is used;
/// otherwise the continued-fraction form of the upper function is evaluated
/// and complemented.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        1.0 - regularized_gamma_q_cf(a, x)
    }
}

/// Continued-fraction evaluation of the regularized upper incomplete gamma
/// function `Q(a, x)`, valid for `x >= a + 1`.
fn regularized_gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Used by the Student's t CDF. Returns values in `[0, 1]`.
pub fn regularized_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the continued fraction in its rapidly-converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz's continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u32..10 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-9,
                "Γ({n}) mismatch"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-9);
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn regularized_gamma_p_is_chi2_cdf() {
        // P(k/2, x/2) is the chi-squared CDF with k dof.
        // Chi-squared with 1 dof at x=3.841 should be ~0.95.
        let p = regularized_gamma_p(0.5, 3.841 / 2.0);
        assert!((p - 0.95).abs() < 1e-3, "got {p}");
        // 2 dof at x=5.991 -> 0.95.
        let p = regularized_gamma_p(1.0, 5.991 / 2.0);
        assert!((p - 0.95).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn regularized_beta_boundaries() {
        assert_eq!(regularized_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1, 1) = x (uniform distribution).
        for x in [0.1, 0.5, 0.9] {
            assert!((regularized_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn regularized_beta_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        let lhs = regularized_beta(2.5, 4.0, 0.3);
        let rhs = 1.0 - regularized_beta(4.0, 2.5, 0.7);
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_monotonic_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let p = regularized_gamma_p(3.0, x);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
        assert!(prev > 0.999);
    }
}
