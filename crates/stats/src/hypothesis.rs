//! Hypothesis tests used to validate change points (§5.2.1, Appendix A.2).
//!
//! After CUSUM+EM proposes a change point, FBDetect runs a likelihood-ratio
//! chi-squared test at significance 0.01: H0 says the series has a single
//! mean, H1 says the means differ before and after the change point. The
//! Student's t-test implements the analytic detection-threshold model of
//! Appendix A.2.

use crate::distributions::{chi_squared_p_value, student_t_two_sided_p};
use crate::error::{ensure_finite, ensure_len};
use crate::prefix::PrefixStats;
use crate::{Result, StatsError};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (chi-squared or t, depending on the test).
    pub statistic: f64,
    /// The p-value of the statistic under the null hypothesis.
    pub p_value: f64,
    /// Whether the null hypothesis is rejected at the requested significance.
    pub reject_null: bool,
}

/// Likelihood-ratio test for a single change point (paper §5.2.1).
///
/// H0: one mean; H1: different means before/after index `change_point`.
/// The statistic `2(ℓ₁ − ℓ₀)` is asymptotically chi-squared with 2 extra
/// degrees of freedom (the second mean and the change-point location).
///
/// # Examples
///
/// ```
/// let mut data = vec![1.0; 50];
/// data.extend(vec![2.0; 50]);
/// for (i, v) in data.iter_mut().enumerate() {
///     *v += ((i * 7919) % 100) as f64 / 1000.0; // Small deterministic noise.
/// }
/// let t = fbd_stats::hypothesis::likelihood_ratio_test(&data, 49, 0.01).unwrap();
/// assert!(t.reject_null);
/// ```
pub fn likelihood_ratio_test(
    data: &[f64],
    change_point: usize,
    significance: f64,
) -> Result<TestResult> {
    if !(significance > 0.0 && significance < 1.0) {
        return Err(StatsError::InvalidParameter(
            "significance must be in (0, 1)",
        ));
    }
    ensure_len(data, 4)?;
    ensure_finite(data)?;
    if change_point + 2 > data.len() || change_point == 0 {
        return Err(StatsError::InvalidParameter(
            "change point must leave both segments non-empty",
        ));
    }
    // One prefix pass serves both hypotheses: H0 and H1 log-likelihoods are
    // each O(1) queries against the shared statistics.
    likelihood_ratio_test_from_prefix(&PrefixStats::new(data), change_point, significance)
}

/// [`likelihood_ratio_test`] over already-built prefix statistics, so a
/// caller that also runs the EM fit shares one O(n) prefix build.
///
/// The caller is responsible for having validated the underlying data
/// (finite, length ≥ 4).
pub fn likelihood_ratio_test_from_prefix(
    ps: &PrefixStats,
    change_point: usize,
    significance: f64,
) -> Result<TestResult> {
    if !(significance > 0.0 && significance < 1.0) {
        return Err(StatsError::InvalidParameter(
            "significance must be in (0, 1)",
        ));
    }
    if ps.len() < 4 {
        return Err(StatsError::TooFewSamples {
            required: 4,
            actual: ps.len(),
        });
    }
    if change_point + 2 > ps.len() || change_point == 0 {
        return Err(StatsError::InvalidParameter(
            "change point must leave both segments non-empty",
        ));
    }
    let ll0 = ps.single_mean_log_likelihood();
    let ll1 = ps.two_mean_log_likelihood(change_point);
    let statistic = (2.0 * (ll1 - ll0)).max(0.0);
    // Two additional free parameters in H1: the second mean and the
    // change-point location.
    let p_value = chi_squared_p_value(statistic, 2.0);
    Ok(TestResult {
        statistic,
        p_value,
        reject_null: p_value < significance,
    })
}

/// Largest likelihood-ratio statistic achievable by any change point in
/// `[lo, hi]` (inclusive), or `None` when the range is empty or invalid.
///
/// Because the H1 log-likelihood is strictly decreasing in the two-segment
/// cost, the maximum statistic over a range is attained at the minimum-cost
/// split; one O(hi−lo) cost scan yields a sound upper bound that lets a
/// caller skip EM entirely when even the best in-range split could not
/// reject H0.
pub fn max_lrt_statistic_in_range(ps: &PrefixStats, lo: usize, hi: usize) -> Option<f64> {
    let n = ps.len();
    if n < 4 {
        return None;
    }
    let lo = lo.max(1);
    let hi = hi.min(n - 3);
    if lo > hi {
        return None;
    }
    let mut best_cp = lo;
    let mut best_cost = ps.two_segment_cost(lo);
    for cand in lo + 1..=hi {
        let cost = ps.two_segment_cost(cand);
        if cost < best_cost {
            best_cost = cost;
            best_cp = cand;
        }
    }
    let ll0 = ps.single_mean_log_likelihood();
    let ll1 = ps.two_mean_log_likelihood(best_cp);
    Some((2.0 * (ll1 - ll0)).max(0.0))
}

/// Two-sample Student's t-test with pooled variance (Appendix A.2).
///
/// Tests H0: `mean(a) == mean(b)` against the two-sided alternative.
pub fn two_sample_t_test(a: &[f64], b: &[f64], significance: f64) -> Result<TestResult> {
    ensure_len(a, 2)?;
    ensure_len(b, 2)?;
    if !(significance > 0.0 && significance < 1.0) {
        return Err(StatsError::InvalidParameter(
            "significance must be in (0, 1)",
        ));
    }
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let ma = a.iter().sum::<f64>() / na;
    let mb = b.iter().sum::<f64>() / nb;
    let ssa: f64 = a.iter().map(|v| (v - ma) * (v - ma)).sum();
    let ssb: f64 = b.iter().map(|v| (v - mb) * (v - mb)).sum();
    let dof = na + nb - 2.0;
    let pooled = ((ssa + ssb) / dof).max(1e-300);
    let statistic = (ma - mb) / (pooled * (1.0 / na + 1.0 / nb)).sqrt();
    let p_value = student_t_two_sided_p(statistic, dof);
    Ok(TestResult {
        statistic,
        p_value,
        reject_null: p_value < significance,
    })
}

/// Minimum detectable mean difference for a given sample size and variance
/// (Appendix A.2, Expression 7): `Δ ≈ √(s²/n₂) × T_critical`.
///
/// `t_critical` is the two-sided critical value at the desired confidence.
pub fn detection_threshold(sample_variance: f64, n_after: usize, t_critical: f64) -> Result<f64> {
    if n_after == 0 {
        return Err(StatsError::InvalidParameter("n_after must be positive"));
    }
    if sample_variance < 0.0 {
        return Err(StatsError::InvalidParameter(
            "variance must be non-negative",
        ));
    }
    Ok((sample_variance / n_after as f64).sqrt() * t_critical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::student_t_critical;

    fn noisy_step(n1: usize, m1: f64, n2: usize, m2: f64, noise: f64) -> Vec<f64> {
        (0..n1 + n2)
            .map(|i| {
                let base = if i < n1 { m1 } else { m2 };
                base + (((i * 104729) % 1009) as f64 / 1009.0 - 0.5) * noise
            })
            .collect()
    }

    #[test]
    fn lrt_rejects_on_clear_step() {
        let data = noisy_step(60, 0.0, 60, 1.0, 0.3);
        let t = likelihood_ratio_test(&data, 59, 0.01).unwrap();
        assert!(t.reject_null);
        assert!(t.p_value < 1e-6);
    }

    #[test]
    fn lrt_accepts_on_flat_noise() {
        let data = noisy_step(120, 0.0, 0, 0.0, 0.3);
        let t = likelihood_ratio_test(&data, 59, 0.01).unwrap();
        assert!(!t.reject_null, "p = {}", t.p_value);
    }

    #[test]
    fn lrt_rejects_invalid_significance() {
        let data = noisy_step(20, 0.0, 20, 1.0, 0.1);
        assert!(likelihood_ratio_test(&data, 19, 0.0).is_err());
        assert!(likelihood_ratio_test(&data, 19, 1.0).is_err());
    }

    #[test]
    fn in_range_bound_dominates_every_candidate() {
        let data = noisy_step(60, 0.0, 60, 0.4, 0.5);
        let ps = PrefixStats::new(&data);
        let bound = max_lrt_statistic_in_range(&ps, 10, 100).unwrap();
        for cp in 10..=100 {
            let t = likelihood_ratio_test_from_prefix(&ps, cp, 0.01).unwrap();
            assert!(
                bound >= t.statistic,
                "cp {cp}: bound {bound} < statistic {}",
                t.statistic
            );
        }
        // The bound is tight: some candidate attains it exactly.
        let attained = (10..=100).any(|cp| {
            likelihood_ratio_test_from_prefix(&ps, cp, 0.01)
                .unwrap()
                .statistic
                .to_bits()
                == bound.to_bits()
        });
        assert!(attained);
    }

    #[test]
    fn in_range_bound_handles_degenerate_ranges() {
        let data = noisy_step(20, 0.0, 20, 1.0, 0.1);
        let ps = PrefixStats::new(&data);
        assert!(max_lrt_statistic_in_range(&ps, 30, 10).is_none());
        assert!(max_lrt_statistic_in_range(&ps, 100, 200).is_none());
        assert!(max_lrt_statistic_in_range(&PrefixStats::new(&data[..3]), 1, 1).is_none());
        // Clamping still yields a valid bound for out-of-range endpoints.
        assert!(max_lrt_statistic_in_range(&ps, 0, usize::MAX).is_some());
    }

    #[test]
    fn t_test_detects_mean_difference() {
        let a = noisy_step(100, 10.0, 0, 0.0, 0.5);
        let b = noisy_step(100, 10.3, 0, 0.0, 0.5);
        let t = two_sample_t_test(&a, &b, 0.01).unwrap();
        assert!(t.reject_null);
        assert!(t.statistic < 0.0); // a's mean is smaller.
    }

    #[test]
    fn t_test_accepts_identical_distributions() {
        let a = noisy_step(50, 5.0, 0, 0.0, 0.4);
        let b = noisy_step(50, 5.0, 0, 0.0, 0.4);
        let t = two_sample_t_test(&a, &b, 0.01).unwrap();
        assert!(!t.reject_null);
    }

    #[test]
    fn detection_threshold_scales_with_inverse_sqrt_n() {
        // Δ ∝ √(σ²/n): quadrupling n halves the threshold.
        let tc = student_t_critical(0.01, 1e5);
        let d1 = detection_threshold(0.01, 1_000, tc).unwrap();
        let d2 = detection_threshold(0.01, 4_000, tc).unwrap();
        assert!((d1 / d2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn detection_threshold_scales_with_sigma() {
        // Reducing variance by k reduces the threshold by √k (paper §2).
        let tc = student_t_critical(0.01, 1e5);
        let d1 = detection_threshold(0.01, 1_000, tc).unwrap();
        let d2 = detection_threshold(0.01 / 100.0, 1_000, tc).unwrap();
        assert!((d1 / d2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn detection_threshold_validates_inputs() {
        assert!(detection_threshold(0.01, 0, 2.0).is_err());
        assert!(detection_threshold(-1.0, 10, 2.0).is_err());
    }
}
