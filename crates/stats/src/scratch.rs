//! Thread-local scratch arenas for hot-loop temporaries.
//!
//! The streaming scan engine makes the steady-state round cheap enough that
//! allocator traffic from per-call temporaries (FFT work buffers, Loess
//! kernels, STL phase accumulators) becomes a measurable fraction of the
//! remaining work — and, under the work-stealing parallel scan, a source of
//! allocator-lock contention between workers. [`ScratchVec`] checks `f64`
//! buffers out of a per-thread pool and returns them on drop, so the
//! detectors' temporaries stop hitting the global allocator once each
//! worker thread has warmed up.
//!
//! ## Determinism contract
//!
//! A pooled buffer carries no state between uses: [`ScratchVec::zeroed`]
//! clears and zero-fills, [`ScratchVec::copied`] clears and copies, and
//! [`ScratchVec::with_capacity`] hands back an empty vector. Only spare
//! *capacity* is recycled, never values, so every computation is
//! bit-identical to one using fresh allocations. The pool is thread-local:
//! there is no cross-thread sharing, no locking, and no dependence on
//! scheduling order.
//!
//! Re-entrancy is handled, not assumed away: if the pool is already
//! borrowed (which cannot happen today — acquisition and release never run
//! user code — but could with future callbacks), the fallback is a plain
//! allocation rather than a panic.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Maximum number of idle buffers retained per thread. Each detector uses a
/// handful of temporaries at a time; 32 covers the deepest call chains
/// (STL → Loess → sliding dots → FFT) with room to spare.
const MAX_POOLED: usize = 32;

/// Largest capacity (in `f64`s, 8 MiB) worth keeping. Anything bigger is
/// a one-off (e.g. a pathological Bluestein pad) and is freed on drop.
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// An `f64` buffer checked out of the thread-local pool; spare capacity
/// returns to the pool when dropped. Derefs to `Vec<f64>`, so it can be
/// indexed, sliced, resized, and passed as `&mut [f64]` like any vector.
#[derive(Debug, Default)]
pub struct ScratchVec {
    buf: Vec<f64>,
}

impl ScratchVec {
    fn acquire() -> Vec<f64> {
        POOL.with(|p| match p.try_borrow_mut() {
            Ok(mut pool) => pool.pop().unwrap_or_default(),
            // Pool busy (re-entrant use): fall back to a fresh allocation.
            Err(_) => Vec::new(),
        })
    }

    /// An empty scratch vector with at least `cap` spare capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut buf = Self::acquire();
        buf.clear();
        buf.reserve(cap);
        ScratchVec { buf }
    }

    /// A scratch vector of `len` zeroes.
    pub fn zeroed(len: usize) -> Self {
        let mut buf = Self::acquire();
        buf.clear();
        buf.resize(len, 0.0);
        ScratchVec { buf }
    }

    /// A scratch copy of `src`.
    pub fn copied(src: &[f64]) -> Self {
        let mut buf = Self::acquire();
        buf.clear();
        buf.extend_from_slice(src);
        ScratchVec { buf }
    }

    /// Moves the buffer out as a plain `Vec`, e.g. to return it to a
    /// caller. The extracted vector is no longer pooled.
    pub fn into_vec(mut self) -> Vec<f64> {
        std::mem::take(&mut self.buf)
    }
}

impl Drop for ScratchVec {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 || self.buf.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        POOL.with(|p| {
            if let Ok(mut pool) = p.try_borrow_mut() {
                if pool.len() < MAX_POOLED {
                    pool.push(buf);
                }
            }
        });
    }
}

impl Deref for ScratchVec {
    type Target = Vec<f64>;

    fn deref(&self) -> &Vec<f64> {
        &self.buf
    }
}

impl DerefMut for ScratchVec {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_all_zero_even_after_reuse() {
        {
            let mut a = ScratchVec::zeroed(16);
            for v in a.iter_mut() {
                *v = 7.5;
            }
        }
        // The same capacity comes back from the pool; values must not.
        let b = ScratchVec::zeroed(16);
        assert!(b.iter().all(|v| v.to_bits() == 0));
    }

    #[test]
    fn capacity_is_recycled_across_checkouts() {
        let cap = {
            let mut a = ScratchVec::with_capacity(100);
            a.push(1.0);
            a.capacity()
        };
        let b = ScratchVec::zeroed(10);
        assert!(
            b.capacity() >= 10 && b.capacity() <= cap.max(1024),
            "expected a pooled buffer, got capacity {}",
            b.capacity()
        );
    }

    #[test]
    fn copied_matches_source() {
        let src = [1.0, f64::NAN, 3.0];
        let c = ScratchVec::copied(&src);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].to_bits(), 1.0f64.to_bits());
        assert!(c[1].is_nan());
    }

    #[test]
    fn nested_checkouts_are_distinct() {
        let mut a = ScratchVec::zeroed(8);
        let mut b = ScratchVec::zeroed(8);
        a[0] = 1.0;
        b[0] = 2.0;
        assert!(a[0].to_bits() != b[0].to_bits());
    }

    #[test]
    fn into_vec_detaches_from_pool() {
        let v = ScratchVec::copied(&[4.0, 5.0]).into_vec();
        assert_eq!(v, vec![4.0, 5.0]);
    }
}
