//! Online per-append detector refuters for boundary rounds.
//!
//! A boundary scheduler round slides the detection windows forward and, in
//! the cold path, re-runs every detector kernel over every series — even
//! though the vast majority of series are quiet and the kernels exist only
//! to conclude "no change". These refuters answer the same question from
//! the blockwise [`RollingStats`] a streaming engine already maintains per
//! append, in O(len/64 + edges) instead of O(n·window):
//!
//! * [`max_lrt_upper_bound`] — a *sound upper bound* on the largest
//!   two-segment likelihood-ratio statistic any change point in a split
//!   range could achieve (the quantity
//!   [`crate::hypothesis::max_lrt_statistic_in_range`] computes exactly
//!   from prefix statistics). When even the bound cannot reject H0, the
//!   short-term CUSUM/EM path provably returns no candidate.
//! * [`sliding_mean_bounds`] — min/max width-`edge` sliding means over a
//!   dilated region, the building block of the long-term detector's trend
//!   pre-filter, evaluated from retained samples without assembling a
//!   window buffer.
//!
//! Both are refuters, not detectors: they may only ever say "the cold
//! kernel would return `None`" (within a caller-supplied guard band that
//! dominates the floating-point divergence between blockwise and prefix
//! accumulation), never the opposite. Callers fall back to the cold kernel
//! whenever a refutation cannot be proven, so scan outcomes are unchanged
//! by construction — the property the proptests in this module pin.

use crate::streaming::RollingStats;

/// Sound upper bound on the maximum two-segment likelihood-ratio statistic
/// over data `[a, b)` (absolute indices) for any split `t` in
/// `[t_lo, t_hi]`, where `t` is the absolute index of the first sample of
/// the second segment.
///
/// Replicates the statistic of
/// [`crate::hypothesis::max_lrt_statistic_in_range`] — `max(n·(ln σ̂₀² −
/// ln σ̂₁²(t)), 0)` with variances floored at 1e-300 — from a
/// [`RollingStats`] instead of a prefix array: one blockwise fold seeds
/// the running left-segment sums at `t_lo` in O(n/64), then each split is
/// O(1) off retained samples, so the whole bound costs O(n/64 + range)
/// with no O(n) prefix build and no allocation. The cold path centers on
/// the global mean where this one centers on the rolling pivot (SSE is
/// shift-invariant), so the two agree up to summation-order rounding; a
/// single `rel_guard`-of-total-magnitude guard band — inflating the H0
/// cost and deflating the per-split cost — dominates that divergence and
/// keeps the result a true upper bound.
///
/// Returns `None` — *no refutation possible* — when the range holds any
/// non-finite sample, is not fully retained, or the split range is empty.
pub fn max_lrt_upper_bound(
    stats: &RollingStats,
    a: u64,
    b: u64,
    t_lo: u64,
    t_hi: u64,
    rel_guard: f64,
) -> Option<f64> {
    if a >= b || t_lo > t_hi || t_lo <= a || t_hi >= b {
        return None;
    }
    if stats.first_index() > a || stats.end_index() < b {
        return None;
    }
    let n = (b - a) as usize;
    let total = stats.segment_moments(a, b);
    if total.finite != n {
        // Non-finite samples present: the cold path's behavior is decided
        // by its own validation, not by this bound.
        return None;
    }
    // One guard band sized to the total accumulator magnitude dominates
    // every intermediate quantity below (left/right splits are sub-sums of
    // the total), so it is applied once to each side of the ratio.
    let g_tot = rel_guard * (total.sum_sq + total.sum * total.sum / n as f64);
    let cost0_ub = total.sse() + g_tot;
    let pivot = stats.pivot().unwrap_or(0.0);
    // Seed the left-segment running sums at t_lo from block sums, then
    // scan the split range exactly as the cold prefix pass does: for each
    // t, cost1(t) = SSE[a,t) + SSE[t,b), with the right segment derived
    // from the totals.
    let head = stats.segment_moments(a, t_lo);
    let (mut s_l, mut q_l) = (head.sum, head.sum_sq);
    let mut cost1 = f64::INFINITY;
    for t in t_lo..=t_hi {
        let n_l = (t - a) as f64;
        let n_r = (b - t) as f64;
        let sse_l = (q_l - s_l * s_l / n_l).max(0.0);
        let s_r = total.sum - s_l;
        let q_r = total.sum_sq - q_l;
        let sse_r = (q_r - s_r * s_r / n_r).max(0.0);
        cost1 = cost1.min(sse_l + sse_r);
        if t < t_hi {
            let x = stats.get(t)?;
            let c = x - pivot;
            s_l += c;
            q_l += c * c;
        }
    }
    let cost1_lb = (cost1 - g_tot).max(0.0);
    let nf = n as f64;
    let var0_ub = (cost0_ub / nf).max(1e-300);
    let var1_lb = (cost1_lb / nf).max(1e-300);
    Some((nf * (var0_ub.ln() - var1_lb.ln())).max(0.0))
}

/// Min and max mean over every width-`edge` sliding window intersecting
/// the region `[lo, hi)` dilated by `d` on both sides, over retained data
/// `[a, b)` (all absolute indices) — the rolling-stats replica of the
/// long-term pre-filter's `sliding_mean_bounds`, with the same window
/// enumeration and the same fallback to the dilated region's own mean when
/// no full window fits.
///
/// The caller must have established that `[a, b)` is fully retained and
/// finite; means are evaluated by one blockwise fold for the first window
/// and an O(1) slide per subsequent position, so the divergence from the
/// cold path's prefix-sum means is bounded by a few hundred ulps of the
/// data scale — a `1e-9·scale` guard band dwarfs it. Returns non-finite
/// bounds when a sample is missing, which callers must treat as "no
/// refutation".
pub fn sliding_mean_bounds(
    stats: &RollingStats,
    a: u64,
    b: u64,
    lo: u64,
    hi: u64,
    d: u64,
    edge: u64,
) -> (f64, f64) {
    let n = b.saturating_sub(a);
    let lo = lo.max(a + d) - d; // lo − d, saturating at the range start.
    let hi = (hi + d).min(b);
    let pivot = stats.pivot().unwrap_or(0.0);
    let region_mean = |x: u64, y: u64| -> f64 {
        let m = stats.segment_moments(x, y.max(x));
        if m.finite == 0 {
            // The cold prefix mean of an empty segment is the global mean;
            // region emptiness only arises in degenerate geometries the
            // caller refuses to refute, so any non-finite sentinel works.
            f64::NAN
        } else {
            pivot + m.sum / m.finite as f64
        }
    };
    if edge == 0 || edge > n {
        let m = region_mean(lo, hi);
        return (m, m);
    }
    // Window starts whose span [s, s + edge) intersects [lo, hi).
    let first = lo.max(a + (edge - 1)) - (edge - 1);
    let last = hi.min(b - edge + 1);
    if first >= last {
        let m = region_mean(lo, hi);
        return (m, m);
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let head = stats.segment_moments(first, first + edge);
    if head.finite as u64 != edge {
        return (f64::NAN, f64::NAN);
    }
    let mut sum = head.sum;
    let ef = edge as f64;
    let mut s = first;
    loop {
        let m = pivot + sum / ef;
        min = min.min(m);
        max = max.max(m);
        s += 1;
        if s >= last {
            break;
        }
        let (Some(out), Some(inc)) = (stats.get(s - 1), stats.get(s + edge - 1)) else {
            return (f64::NAN, f64::NAN);
        };
        sum += (inc - pivot) - (out - pivot);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypothesis;
    use crate::prefix::PrefixStats;

    fn sample(i: u64, step_at: u64, step: f64) -> f64 {
        let base = if i < step_at { 1.0 } else { 1.0 + step };
        base + ((i * 2_654_435_761) % 1_000) as f64 / 5_000.0
    }

    fn rolling_over(values: &[f64], start: u64) -> RollingStats {
        let mut s = RollingStats::new(start);
        for &v in values {
            s.append(v);
        }
        s
    }

    #[test]
    fn lrt_bound_dominates_exact_statistic() {
        for (step_at, step) in [(1_000, 0.0), (450, 0.4), (500, 0.05), (520, 1.5)] {
            let values: Vec<f64> = (0..900).map(|i| sample(i, step_at, step)).collect();
            let stats = rolling_over(&values, 0);
            let ps = PrefixStats::new(&values);
            // Split range mirroring the analysis region of a 600/200/100
            // window layout: cp in [599, 797], t = cp + 1.
            let exact = hypothesis::max_lrt_statistic_in_range(&ps, 599, 797).unwrap();
            let bound = max_lrt_upper_bound(&stats, 0, 900, 600, 798, 1e-9).unwrap();
            assert!(
                bound >= exact,
                "step {step} at {step_at}: bound {bound} < exact {exact}"
            );
        }
    }

    #[test]
    fn lrt_bound_survives_eviction_offsets() {
        let values: Vec<f64> = (0..900).map(|i| sample(i, 700, 0.3)).collect();
        let mut stats = rolling_over(&values, 0);
        stats.evict_front(137);
        let window = &values[200..900];
        let ps = PrefixStats::new(window);
        let exact = hypothesis::max_lrt_statistic_in_range(&ps, 399, 597).unwrap();
        let bound = max_lrt_upper_bound(&stats, 200, 900, 600, 798, 1e-9).unwrap();
        assert!(bound >= exact, "bound {bound} < exact {exact}");
    }

    #[test]
    fn lrt_bound_refuses_non_finite_and_degenerate_ranges() {
        let mut values: Vec<f64> = (0..300).map(|i| sample(i, 1_000, 0.0)).collect();
        let stats = rolling_over(&values, 0);
        assert!(max_lrt_upper_bound(&stats, 0, 300, 100, 50, 1e-9).is_none());
        assert!(max_lrt_upper_bound(&stats, 0, 300, 0, 50, 1e-9).is_none());
        assert!(max_lrt_upper_bound(&stats, 0, 300, 100, 300, 1e-9).is_none());
        assert!(max_lrt_upper_bound(&stats, 0, 400, 100, 200, 1e-9).is_none());
        values[40] = f64::NAN;
        let with_nan = rolling_over(&values, 0);
        assert!(max_lrt_upper_bound(&with_nan, 0, 300, 100, 200, 1e-9).is_none());
    }

    #[test]
    fn sliding_bounds_match_prefix_replica() {
        // The cold pre-filter computes its bounds from PrefixStats over the
        // window slice; the online replica must agree to ~1e-12·scale.
        let values: Vec<f64> = (0..900).map(|i| sample(i, 640, 0.2)).collect();
        let mut stats = rolling_over(&values, 0);
        stats.evict_front(100);
        let window = &values[100..900];
        let ps = PrefixStats::new(window);
        let cold = |lo: usize, hi: usize, d: usize, edge: usize| -> (f64, f64) {
            // Mirror of long_term::sliding_mean_bounds.
            let n = ps.len();
            let lo = lo.saturating_sub(d);
            let hi = (hi + d).min(n);
            let first = lo.saturating_sub(edge - 1);
            let last = hi.min(n - edge + 1);
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for s in first..last {
                let m = ps.segment_mean(s, s + edge);
                min = min.min(m);
                max = max.max(m);
            }
            (min, max)
        };
        for (lo, hi, d, edge) in [(0, 50, 46, 50), (600, 650, 46, 50), (750, 800, 46, 50)] {
            let (cmin, cmax) = cold(lo, hi, d, edge);
            let (omin, omax) = sliding_mean_bounds(
                &stats,
                100,
                900,
                100 + lo as u64,
                100 + hi as u64,
                d as u64,
                edge as u64,
            );
            assert!((cmin - omin).abs() < 1e-9, "min {cmin} vs {omin}");
            assert!((cmax - omax).abs() < 1e-9, "max {cmax} vs {omax}");
        }
    }

    #[test]
    fn sliding_bounds_degenerate_geometry_falls_back_to_region_mean() {
        let values: Vec<f64> = (0..40).map(|i| sample(i, 1_000, 0.0)).collect();
        let stats = rolling_over(&values, 0);
        // edge wider than the data: region mean fallback, both ends equal.
        let (min, max) = sliding_mean_bounds(&stats, 0, 40, 5, 10, 2, 60);
        assert_eq!(min.to_bits(), max.to_bits());
        assert!(min.is_finite());
    }
}
