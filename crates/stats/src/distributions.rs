//! Cumulative distribution functions and critical values.
//!
//! FBDetect's hypothesis tests need the normal, chi-squared, and Student's t
//! distributions: the likelihood-ratio test (§5.2.1) thresholds a chi-squared
//! statistic at significance 0.01, the Mann-Kendall test (§5.2.2) uses a
//! normal approximation, and the analytic detection-threshold model
//! (Appendix A.2) uses Student's t.

use crate::special::{erf, regularized_beta, regularized_gamma_p};

/// Standard normal cumulative distribution function `Φ(z)`.
///
/// # Examples
///
/// ```
/// let p = fbd_stats::distributions::normal_cdf(0.0);
/// assert!((p - 0.5).abs() < 1e-8);
/// ```
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Two-sided p-value for a standard normal statistic.
pub fn normal_two_sided_p(z: f64) -> f64 {
    2.0 * (1.0 - normal_cdf(z.abs()))
}

/// Inverse of the standard normal CDF (the quantile function).
///
/// Uses the Acklam rational approximation refined with one Halley step,
/// accurate to about 1e-9 for `p` in `(0, 1)`.
///
/// Returns `f64::NAN` when `p` is not strictly between 0 and 1 (the IEEE
/// convention for an inverse CDF evaluated outside its domain).
pub fn normal_quantile(p: f64) -> f64 {
    if !(p > 0.0 && p < 1.0) {
        return f64::NAN;
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step using the erf-based CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Chi-squared cumulative distribution function with `dof` degrees of freedom.
pub fn chi_squared_cdf(x: f64, dof: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        regularized_gamma_p(dof / 2.0, x / 2.0)
    }
}

/// Upper-tail p-value for a chi-squared statistic.
pub fn chi_squared_p_value(x: f64, dof: f64) -> f64 {
    (1.0 - chi_squared_cdf(x, dof)).clamp(0.0, 1.0)
}

/// Student's t cumulative distribution function with `dof` degrees of freedom.
pub fn student_t_cdf(t: f64, dof: f64) -> f64 {
    if dof <= 0.0 {
        return f64::NAN;
    }
    let x = dof / (dof + t * t);
    let p = 0.5 * regularized_beta(dof / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a Student's t statistic.
pub fn student_t_two_sided_p(t: f64, dof: f64) -> f64 {
    2.0 * (1.0 - student_t_cdf(t.abs(), dof))
}

/// Two-sided critical value of Student's t at significance `alpha`.
///
/// Found by bisection on the CDF; accurate to about 1e-8.
pub fn student_t_critical(alpha: f64, dof: f64) -> f64 {
    let target = 1.0 - alpha / 2.0;
    let (mut lo, mut hi) = (0.0, 1e3);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, dof) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Upper-tail critical value of the chi-squared distribution at
/// significance `alpha` (i.e. `P(X > critical) = alpha`).
pub fn chi_squared_critical(alpha: f64, dof: f64) -> f64 {
    let target = 1.0 - alpha;
    let (mut lo, mut hi) = (0.0, 1e4);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi_squared_cdf(mid, dof) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_symmetry() {
        for z in [0.5, 1.0, 1.96, 2.5] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(2.576) - 0.995).abs() < 1e-3);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-7, "p = {p}");
        }
    }

    #[test]
    fn chi_squared_known_critical_values() {
        // Standard table values.
        assert!((chi_squared_critical(0.05, 1.0) - 3.841).abs() < 5e-3);
        assert!((chi_squared_critical(0.01, 1.0) - 6.635).abs() < 5e-3);
        assert!((chi_squared_critical(0.05, 10.0) - 18.307).abs() < 5e-2);
    }

    #[test]
    fn student_t_known_critical_values() {
        // Two-sided 0.05 with large dof approaches 1.96.
        assert!((student_t_critical(0.05, 1e6) - 1.96).abs() < 1e-2);
        // Two-sided 0.05 with 10 dof is 2.228.
        assert!((student_t_critical(0.05, 10.0) - 2.228).abs() < 5e-3);
        // Two-sided 0.01 with 30 dof is 2.750.
        assert!((student_t_critical(0.01, 30.0) - 2.750).abs() < 5e-3);
    }

    #[test]
    fn student_t_cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -50..50 {
            let t = i as f64 * 0.1;
            let p = student_t_cdf(t, 5.0);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn p_values_in_unit_interval() {
        for x in [0.1, 1.0, 10.0, 100.0] {
            let p = chi_squared_p_value(x, 1.0);
            assert!((0.0..=1.0).contains(&p));
        }
        for t in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            let p = student_t_two_sided_p(t, 12.0);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
