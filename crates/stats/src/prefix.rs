//! Shared prefix-statistics kernel for O(1) segment queries.
//!
//! Change-point search is the hot loop of the stage-1 scan: CUSUM+EM scores
//! many candidate split points per series, and each score needs segment
//! means, residual sums of squares, and Gaussian log-likelihoods. This
//! module precomputes prefix sums and prefix sums-of-squares once (O(n)) so
//! every subsequent segment query is O(1), turning `fit_two_segment` from
//! O(n·radius·iters) into O(n + radius·iters).
//!
//! Values are centered on the global mean before accumulation. The naive
//! `Σx² − (Σx)²/n` identity cancels catastrophically when the mean dwarfs
//! the noise (exactly the shape of latency series: base ~1.0, noise ~1e-3);
//! centering keeps both accumulators on the scale of the fluctuations, so
//! the O(1) answers match the direct two-pass computations to ~1e-12
//! relative error.

use crate::error::{ensure_finite, ensure_len};
use crate::Result;

/// Precomputed prefix sums and sums-of-squares over a series, centered on
/// the global mean, enabling O(1) segment mean / RSS / likelihood queries.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixStats {
    /// `csum[i]` = Σ_{j<i} (x_j − x̄); length n+1, `csum[0] = 0`.
    csum: Vec<f64>,
    /// `csum_sq[i]` = Σ_{j<i} (x_j − x̄)²; length n+1.
    csum_sq: Vec<f64>,
    /// Global mean x̄ used for centering.
    mean: f64,
}

impl PrefixStats {
    /// Builds prefix statistics over `data` in one pass (after a pass to
    /// compute the centering mean). O(n) time, O(n) space.
    pub fn new(data: &[f64]) -> Self {
        let n = data.len();
        let mean = if n == 0 {
            0.0
        } else {
            data.iter().sum::<f64>() / n as f64
        };
        let mut csum = Vec::with_capacity(n + 1);
        let mut csum_sq = Vec::with_capacity(n + 1);
        csum.push(0.0);
        csum_sq.push(0.0);
        let (mut s, mut ss) = (0.0, 0.0);
        for &v in data {
            let c = v - mean;
            s += c;
            ss += c * c;
            csum.push(s);
            csum_sq.push(ss);
        }
        PrefixStats { csum, csum_sq, mean }
    }

    /// Number of samples the statistics cover.
    pub fn len(&self) -> usize {
        self.csum.len() - 1
    }

    /// True when built over an empty series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The global mean used for centering (the mean of the whole series).
    pub fn global_mean(&self) -> f64 {
        self.mean
    }

    /// Centered prefix sum `S_i = Σ_{j<i} (x_j − x̄)` — the classic CUSUM
    /// series evaluated at index `i − 1` (so `cusum_at(n)` is ≈ 0).
    pub fn cusum_at(&self, i: usize) -> f64 {
        self.csum[i]
    }

    /// Sum of the half-open segment `[lo, hi)` in O(1).
    pub fn sum(&self, lo: usize, hi: usize) -> f64 {
        self.csum[hi] - self.csum[lo] + (hi - lo) as f64 * self.mean
    }

    /// Mean of the half-open segment `[lo, hi)` in O(1).
    ///
    /// Returns the global mean for an empty segment.
    pub fn segment_mean(&self, lo: usize, hi: usize) -> f64 {
        if hi == lo {
            return self.mean;
        }
        self.mean + (self.csum[hi] - self.csum[lo]) / (hi - lo) as f64
    }

    /// Residual sum of squares of segment `[lo, hi)` around its own mean
    /// (the Gaussian segment cost), in O(1). Clamped to be non-negative.
    pub fn segment_cost(&self, lo: usize, hi: usize) -> f64 {
        if hi == lo {
            return 0.0;
        }
        let n = (hi - lo) as f64;
        let s = self.csum[hi] - self.csum[lo];
        let ss = self.csum_sq[hi] - self.csum_sq[lo];
        (ss - s * s / n).max(0.0)
    }

    /// RSS of the whole series around the global mean.
    pub fn total_cost(&self) -> f64 {
        self.segment_cost(0, self.len())
    }

    /// Pooled RSS of the two-segment model split after index `cp`
    /// (segments `0..=cp` and `cp+1..n`), in O(1).
    pub fn two_segment_cost(&self, cp: usize) -> f64 {
        self.segment_cost(0, cp + 1) + self.segment_cost(cp + 1, self.len())
    }

    /// Log-likelihood of the series under a single Gaussian (H0) in O(1).
    pub fn single_mean_log_likelihood(&self) -> f64 {
        let n = self.len() as f64;
        gaussian_log_likelihood(n, self.total_cost() / n)
    }

    /// Log-likelihood of the two-segment mean model split after index `cp`
    /// with a pooled variance (H1) in O(1).
    ///
    /// The caller must ensure `1 <= cp` and `cp + 2 <= len` so both
    /// segments are non-empty with at least two samples overall.
    pub fn two_mean_log_likelihood(&self, cp: usize) -> f64 {
        let n = self.len() as f64;
        gaussian_log_likelihood(n, self.two_segment_cost(cp) / n)
    }
}

/// Log-likelihood of a Gaussian MLE fit given sample count and MLE variance.
///
/// Guards against zero variance with a floor so the likelihood stays finite;
/// constant series are handled by the hypothesis test upstream.
pub fn gaussian_log_likelihood(n: f64, var: f64) -> f64 {
    let var = var.max(1e-300);
    -0.5 * n * ((2.0 * std::f64::consts::PI * var).ln() + 1.0)
}

/// Validated constructor: errors on series shorter than `min_len` or
/// containing non-finite values, mirroring the checks the statistical
/// entry points perform on raw slices.
pub fn validated(data: &[f64], min_len: usize) -> Result<PrefixStats> {
    ensure_len(data, min_len)?;
    ensure_finite(data)?;
    Ok(PrefixStats::new(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_mean(d: &[f64]) -> f64 {
        d.iter().sum::<f64>() / d.len() as f64
    }

    fn direct_rss(d: &[f64]) -> f64 {
        let m = direct_mean(d);
        d.iter().map(|v| (v - m) * (v - m)).sum()
    }

    #[test]
    fn segment_queries_match_direct_computation() {
        let data: Vec<f64> = (0..50)
            .map(|i| 3.0 + ((i * 7919) % 101) as f64 / 101.0)
            .collect();
        let ps = PrefixStats::new(&data);
        for lo in 0..data.len() {
            for hi in lo + 1..=data.len() {
                let seg = &data[lo..hi];
                assert!((ps.segment_mean(lo, hi) - direct_mean(seg)).abs() < 1e-12);
                assert!((ps.segment_cost(lo, hi) - direct_rss(seg)).abs() < 1e-9);
                assert!(
                    (ps.sum(lo, hi) - seg.iter().sum::<f64>()).abs() < 1e-9,
                    "sum mismatch at [{lo}, {hi})"
                );
            }
        }
    }

    #[test]
    fn centering_preserves_precision_on_offset_series() {
        // Base 1.0 with ±0.002 noise: the regime where the uncentered
        // sum-of-squares identity loses most of its significant digits.
        let data: Vec<f64> = (0..900)
            .map(|i| 1.0 + (((i * 48271) % 233) as f64 / 233.0 - 0.5) * 0.004)
            .collect();
        let ps = PrefixStats::new(&data);
        let direct = direct_rss(&data);
        let rel = (ps.total_cost() - direct).abs() / direct;
        assert!(rel < 1e-10, "relative error {rel}");
    }

    #[test]
    fn cusum_at_matches_running_deviation() {
        let data = [1.0, 3.0, 2.0, 4.0, 5.0];
        let ps = PrefixStats::new(&data);
        let m = direct_mean(&data);
        let mut acc = 0.0;
        for (i, &v) in data.iter().enumerate() {
            acc += v - m;
            assert!((ps.cusum_at(i + 1) - acc).abs() < 1e-12);
        }
        assert!(ps.cusum_at(data.len()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_sample() {
        let empty = PrefixStats::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.global_mean(), 0.0);
        let one = PrefixStats::new(&[7.0]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.segment_cost(0, 1), 0.0);
        assert_eq!(one.segment_mean(0, 1), 7.0);
        assert_eq!(one.segment_mean(1, 1), 7.0);
    }

    #[test]
    fn validated_rejects_bad_input() {
        assert!(validated(&[1.0], 2).is_err());
        assert!(validated(&[1.0, f64::NAN], 2).is_err());
        assert!(validated(&[1.0, 2.0], 2).is_ok());
    }

    #[test]
    fn two_segment_cost_is_sum_of_parts() {
        let mut data = vec![1.0; 20];
        data.extend(vec![2.0; 20]);
        let ps = PrefixStats::new(&data);
        assert!(ps.two_segment_cost(19) < 1e-12);
        assert!((ps.two_segment_cost(10) - ps.segment_cost(0, 11) - ps.segment_cost(11, 40)).abs() < 1e-12);
    }
}
