//! Expectation-Maximization refinement of a two-segment mean model (§5.2.1).
//!
//! FBDetect applies CUSUM and EM *iteratively*: CUSUM proposes a change
//! point, EM refines the two segment means by soft-assigning each sample to
//! the "before" or "after" regime, and the process repeats until the change
//! point with the maximum likelihood is found or the iteration budget is
//! exhausted. This module implements that loop.

use crate::cusum;
use crate::error::{ensure_finite, ensure_len};
use crate::prefix::{gaussian_log_likelihood, PrefixStats};
use crate::{Result, StatsError};

/// A fitted two-segment mean model.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoSegmentFit {
    /// Change-point index: segment one is `0..=change_point`, segment two is
    /// `change_point+1..`.
    pub change_point: usize,
    /// Mean of the first segment.
    pub mean_before: f64,
    /// Mean of the second segment.
    pub mean_after: f64,
    /// Shared variance estimate under the two-mean model.
    pub variance: f64,
    /// Log-likelihood of the data under the fitted model.
    pub log_likelihood: f64,
    /// Number of CUSUM+EM refinement iterations performed.
    pub iterations: usize,
}

/// Log-likelihood of `data` under a single Gaussian (the H0 model).
pub fn single_mean_log_likelihood(data: &[f64]) -> Result<f64> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    Ok(PrefixStats::new(data).single_mean_log_likelihood())
}

/// Reference H0 log-likelihood via the direct two-pass computation.
///
/// Kept as the ground truth the prefix-sum fast path is property-tested
/// against; not used on the scan hot path.
pub fn single_mean_log_likelihood_naive(data: &[f64]) -> Result<f64> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    Ok(gaussian_log_likelihood(n, var))
}

/// Log-likelihood of `data` split at `cp` with per-segment means and a
/// pooled variance (the H1 model).
pub fn two_mean_log_likelihood(data: &[f64], cp: usize) -> Result<f64> {
    ensure_len(data, 4)?;
    ensure_valid_change_point(data.len(), cp)?;
    Ok(PrefixStats::new(data).two_mean_log_likelihood(cp))
}

/// Reference H1 log-likelihood via direct per-segment passes.
///
/// Ground truth for the property tests pinning [`PrefixStats`]; not used on
/// the scan hot path.
pub fn two_mean_log_likelihood_naive(data: &[f64], cp: usize) -> Result<f64> {
    ensure_len(data, 4)?;
    ensure_valid_change_point(data.len(), cp)?;
    let (a, b) = data.split_at(cp + 1);
    let ma = a.iter().sum::<f64>() / a.len() as f64;
    let mb = b.iter().sum::<f64>() / b.len() as f64;
    let ss: f64 = a.iter().map(|v| (v - ma) * (v - ma)).sum::<f64>()
        + b.iter().map(|v| (v - mb) * (v - mb)).sum::<f64>();
    let n = data.len() as f64;
    Ok(gaussian_log_likelihood(n, ss / n))
}

fn ensure_valid_change_point(len: usize, cp: usize) -> Result<()> {
    if cp + 2 > len || cp == 0 {
        return Err(StatsError::InvalidParameter(
            "change point must leave both segments non-empty",
        ));
    }
    Ok(())
}

/// Fits a two-segment mean model by iterating CUSUM and EM.
///
/// Starting from the CUSUM change-point estimate, each iteration performs a
/// local EM-style refinement: given the current segment means, every
/// candidate change point near the current one is scored by likelihood and
/// the best is adopted. Iteration stops when the change point is stable or
/// `max_iterations` is reached.
///
/// # Examples
///
/// ```
/// let mut data = vec![1.0, 1.1, 0.9, 1.0, 1.05, 0.95, 1.0, 1.0];
/// data.extend([2.0, 2.1, 1.9, 2.0, 2.05, 1.95, 2.0, 2.0]);
/// let fit = fbd_stats::em::fit_two_segment(&data, 50).unwrap();
/// assert_eq!(fit.change_point, 7);
/// assert!((fit.mean_after - fit.mean_before - 1.0).abs() < 0.1);
/// ```
pub fn fit_two_segment(data: &[f64], max_iterations: usize) -> Result<TwoSegmentFit> {
    ensure_len(data, 4)?;
    ensure_finite(data)?;
    // One O(n) pass builds the prefix statistics; every candidate score
    // below is then O(1), so the whole refinement is O(n + radius·iters).
    fit_two_segment_from_prefix(&PrefixStats::new(data), max_iterations)
}

/// [`fit_two_segment`] over already-built prefix statistics, so a caller
/// that needs the prefix pass for other queries (the likelihood-ratio test,
/// the change-point skip bound) shares one O(n) build instead of three.
///
/// The caller is responsible for having validated the underlying data
/// (finite, length ≥ 4) — [`crate::prefix::validated`] does both.
pub fn fit_two_segment_from_prefix(
    ps: &PrefixStats,
    max_iterations: usize,
) -> Result<TwoSegmentFit> {
    let n = ps.len();
    if n < 4 {
        return Err(StatsError::TooFewSamples {
            required: 4,
            actual: n,
        });
    }
    let initial = cusum::change_point_from_prefix(ps);
    let mut cp = initial.index.clamp(1, n - 3);
    let mut iterations = 0;
    // Search radius shrinks as the estimate stabilizes.
    let mut radius = (n / 4).max(2);
    loop {
        iterations += 1;
        let lo = cp.saturating_sub(radius).max(1);
        let hi = (cp + radius).min(n - 3);
        let mut best_cp = cp;
        // The pooled log-likelihood is strictly decreasing in the pooled
        // two-segment cost, so candidates are ranked by raw cost — same
        // winner, no logarithm per candidate.
        let mut best_cost = ps.two_segment_cost(cp);
        for cand in lo..=hi {
            let cost = ps.two_segment_cost(cand);
            if cost < best_cost {
                best_cost = cost;
                best_cp = cand;
            }
        }
        let converged = best_cp == cp;
        cp = best_cp;
        if converged || iterations >= max_iterations {
            break;
        }
        radius = (radius / 2).max(2);
    }
    let variance = ps.two_segment_cost(cp) / n as f64;
    Ok(TwoSegmentFit {
        change_point: cp,
        mean_before: ps.segment_mean(0, cp + 1),
        mean_after: ps.segment_mean(cp + 1, n),
        variance,
        log_likelihood: gaussian_log_likelihood(n as f64, variance),
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_series(n1: usize, m1: f64, n2: usize, m2: f64, noise: f64) -> Vec<f64> {
        (0..n1 + n2)
            .map(|i| {
                let base = if i < n1 { m1 } else { m2 };
                // SplitMix-style bit mixing for decorrelated jitter.
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let h = z ^ (z >> 31);
                let jitter = (((h >> 33) % 997) as f64 / 997.0 - 0.5) * noise;
                base + jitter
            })
            .collect()
    }

    #[test]
    fn exact_step_is_found() {
        let data = step_series(40, 1.0, 40, 2.0, 0.0);
        let fit = fit_two_segment(&data, 100).unwrap();
        assert_eq!(fit.change_point, 39);
        assert!((fit.mean_before - 1.0).abs() < 1e-12);
        assert!((fit.mean_after - 2.0).abs() < 1e-12);
        assert!(fit.variance < 1e-20);
    }

    #[test]
    fn noisy_step_is_found_near_truth() {
        let data = step_series(100, 5.0, 100, 5.5, 0.3);
        let fit = fit_two_segment(&data, 100).unwrap();
        assert!(
            (95..=105).contains(&fit.change_point),
            "cp = {}",
            fit.change_point
        );
        assert!((fit.mean_after - fit.mean_before - 0.5).abs() < 0.1);
    }

    #[test]
    fn two_mean_beats_single_mean_on_step_data() {
        let data = step_series(50, 0.0, 50, 1.0, 0.2);
        let fit = fit_two_segment(&data, 100).unwrap();
        let h0 = single_mean_log_likelihood(&data).unwrap();
        assert!(fit.log_likelihood > h0 + 10.0);
    }

    #[test]
    fn single_and_two_mean_similar_on_flat_data() {
        let data = step_series(100, 3.0, 0, 0.0, 0.1);
        let fit = fit_two_segment(&data, 100).unwrap();
        let h0 = single_mean_log_likelihood(&data).unwrap();
        // The two-mean model always fits at least as well, but only barely.
        assert!(fit.log_likelihood >= h0 - 1e-9);
        assert!(fit.log_likelihood - h0 < 5.0);
    }

    #[test]
    fn respects_iteration_budget() {
        let data = step_series(200, 1.0, 200, 1.2, 0.5);
        let fit = fit_two_segment(&data, 1).unwrap();
        assert_eq!(fit.iterations, 1);
    }

    #[test]
    fn invalid_change_point_rejected() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!(two_mean_log_likelihood(&data, 0).is_err());
        assert!(two_mean_log_likelihood(&data, 3).is_err());
        assert!(two_mean_log_likelihood(&data, 1).is_ok());
    }
}
