//! Trend statistics: the Mann-Kendall test and Theil-Sen slope estimator
//! (§5.2.2).
//!
//! The went-away detector uses Mann-Kendall to decide whether a regression
//! trend persists after a change point, and Theil-Sen to measure the trend's
//! slope and intercept robustly.

use crate::distributions::normal_two_sided_p;
use crate::error::{ensure_finite, ensure_len};
use crate::Result;

/// Direction of a monotonic trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendDirection {
    /// Statistically significant upward trend.
    Increasing,
    /// Statistically significant downward trend.
    Decreasing,
    /// No significant monotonic trend.
    None,
}

/// Result of the Mann-Kendall trend test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannKendallResult {
    /// The S statistic: the number of concordant minus discordant pairs.
    pub s: i64,
    /// The normalized Z statistic (with tie correction).
    pub z: f64,
    /// Two-sided p-value of Z under the null of no trend.
    pub p_value: f64,
    /// Detected direction at the requested significance.
    pub direction: TrendDirection,
}

/// Mann-Kendall test for a monotonic trend, in O(n log n).
///
/// The S statistic is `Σ_{i<j} sign(x_j − x_i) = P − Q` where `P` and `Q`
/// are the concordant and discordant pair counts. `Q` is exactly the number
/// of strict inversions under `total_cmp`, counted with a merge sort; the
/// tied pair count `T` falls out of the run lengths of the sorted array; and
/// `P = n(n−1)/2 − Q − T`. All of this is integer arithmetic, so the result
/// is bit-identical to the O(n²) double loop ([`mann_kendall_naive`], kept
/// as ground truth and pinned by property tests).
///
/// # Examples
///
/// ```
/// use fbd_stats::trend::{mann_kendall, TrendDirection};
/// let data: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
/// let r = mann_kendall(&data, 0.05).unwrap();
/// assert_eq!(r.direction, TrendDirection::Increasing);
/// ```
pub fn mann_kendall(data: &[f64], significance: f64) -> Result<MannKendallResult> {
    ensure_len(data, 4)?;
    ensure_finite(data)?;
    let n = data.len();
    let mut sorted = data.to_vec();
    let mut buf = vec![0.0; n];
    let discordant = count_inversions(&mut sorted, &mut buf);
    // Tied pairs and the variance tie term from the (now sorted) array.
    let mut tie_pairs: i64 = 0;
    let mut tie_term = 0.0;
    let mut run = 1usize;
    for i in 1..=n {
        // Bit equality matches the `total_cmp` ordering used for both the
        // merge sort above and the naive S statistic, so tie runs are exactly
        // the `Ordering::Equal` groups (inputs are finite per
        // `ensure_finite`).
        if i < n && sorted[i].to_bits() == sorted[i - 1].to_bits() {
            run += 1;
        } else {
            if run > 1 {
                let t = run as f64;
                tie_pairs += (run as i64) * (run as i64 - 1) / 2;
                tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
            }
            run = 1;
        }
    }
    let total_pairs = (n as i64) * (n as i64 - 1) / 2;
    let concordant = total_pairs - discordant - tie_pairs;
    let s = concordant - discordant;
    Ok(mann_kendall_from_s(n, s, tie_term, significance))
}

/// Reference Mann-Kendall via the O(n²) double loop.
///
/// Ground truth for the property tests pinning [`mann_kendall`]; not used on
/// the scan hot path.
pub fn mann_kendall_naive(data: &[f64], significance: f64) -> Result<MannKendallResult> {
    ensure_len(data, 4)?;
    ensure_finite(data)?;
    let n = data.len();
    let mut s: i64 = 0;
    for i in 0..n - 1 {
        for j in i + 1..n {
            s += match data[j].total_cmp(&data[i]) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
        }
    }
    // Variance with tie correction: Var(S) = [n(n-1)(2n+5) - Σ t(t-1)(2t+5)] / 18.
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut tie_term = 0.0;
    let mut run = 1usize;
    for i in 1..=n {
        if i < n && sorted[i].to_bits() == sorted[i - 1].to_bits() {
            run += 1;
        } else {
            if run > 1 {
                let t = run as f64;
                tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
            }
            run = 1;
        }
    }
    Ok(mann_kendall_from_s(n, s, tie_term, significance))
}

/// Z statistic, p-value and direction from the S statistic and tie term —
/// shared by the fast and naive Mann-Kendall paths so the float arithmetic
/// is literally the same code.
fn mann_kendall_from_s(n: usize, s: i64, tie_term: f64, significance: f64) -> MannKendallResult {
    let nf = n as f64;
    let var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - tie_term) / 18.0;
    let z = if var_s <= 0.0 {
        0.0
    } else if s > 0 {
        (s as f64 - 1.0) / var_s.sqrt()
    } else if s < 0 {
        (s as f64 + 1.0) / var_s.sqrt()
    } else {
        0.0
    };
    let p_value = normal_two_sided_p(z);
    let direction = if p_value < significance {
        if s > 0 {
            TrendDirection::Increasing
        } else {
            TrendDirection::Decreasing
        }
    } else {
        TrendDirection::None
    };
    MannKendallResult {
        s,
        z,
        p_value,
        direction,
    }
}

/// Merge sort over `total_cmp` that counts strict inversions (pairs `i < j`
/// with `v[i] > v[j]`). Equal elements are taken from the left half first and
/// never counted, so the count is exactly the discordant-pair total of the
/// Mann-Kendall S statistic. Sorts `v` in place as a side effect.
fn count_inversions(v: &mut [f64], buf: &mut [f64]) -> i64 {
    let n = v.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (buf_left, buf_right) = buf.split_at_mut(mid);
    let mut inversions = {
        let (left, right) = v.split_at_mut(mid);
        count_inversions(left, buf_left) + count_inversions(right, buf_right)
    };
    // Merge v[..mid] and v[mid..] into buf, counting, then copy back.
    let mut i = 0usize;
    let mut j = mid;
    let mut k = 0usize;
    while i < mid && j < n {
        if v[j].total_cmp(&v[i]) == std::cmp::Ordering::Less {
            // v[j] precedes every remaining left element, forming an
            // inversion with each one.
            inversions += (mid - i) as i64;
            buf[k] = v[j];
            j += 1;
        } else {
            buf[k] = v[i];
            i += 1;
        }
        k += 1;
    }
    while i < mid {
        buf[k] = v[i];
        i += 1;
        k += 1;
    }
    while j < n {
        buf[k] = v[j];
        j += 1;
        k += 1;
    }
    v.copy_from_slice(buf);
    inversions
}

/// A robust line fit from the Theil-Sen estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheilSenFit {
    /// Median of all pairwise slopes.
    pub slope: f64,
    /// Median of `y_i - slope * i`.
    pub intercept: f64,
}

/// Theil-Sen slope estimator over equally spaced samples (x = index).
///
/// Computes the median of all pairwise slopes `(y_j - y_i)/(j - i)`, which is
/// robust to up to ~29% outliers. The median is found by deterministic
/// selection (`select_nth_unstable_by` under `total_cmp`) rather than a full
/// sort of the n(n−1)/2 slopes, which drops the dominant cost from
/// O(n² log n) to O(n²) expected with a much smaller constant. Selection
/// returns the same order statistics the sort would, so the result is
/// bit-identical to [`theil_sen_naive`] (pinned by property tests).
pub fn theil_sen(data: &[f64]) -> Result<TheilSenFit> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len();
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n - 1 {
        for j in i + 1..n {
            slopes.push((data[j] - data[i]) / (j - i) as f64);
        }
    }
    let slope = median_by_selection(&mut slopes);
    let mut intercepts: Vec<f64> = data
        .iter()
        .enumerate()
        .map(|(i, &y)| y - slope * i as f64)
        .collect();
    let intercept = median_by_selection(&mut intercepts);
    Ok(TheilSenFit { slope, intercept })
}

/// Reference Theil-Sen via a full sort of all pairwise slopes.
///
/// Ground truth for the property tests pinning [`theil_sen`]; not used on
/// the scan hot path.
pub fn theil_sen_naive(data: &[f64]) -> Result<TheilSenFit> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len();
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n - 1 {
        for j in i + 1..n {
            slopes.push((data[j] - data[i]) / (j - i) as f64);
        }
    }
    slopes.sort_by(f64::total_cmp);
    let slope = median_of_sorted(&slopes);
    let mut intercepts: Vec<f64> = data
        .iter()
        .enumerate()
        .map(|(i, &y)| y - slope * i as f64)
        .collect();
    intercepts.sort_by(f64::total_cmp);
    let intercept = median_of_sorted(&intercepts);
    Ok(TheilSenFit { slope, intercept })
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median via `select_nth_unstable_by` instead of a full sort.
///
/// For even lengths the lower middle element is the `total_cmp` maximum of
/// the left partition after selecting the upper middle — the same value
/// `sorted[n/2 − 1]` a sort would produce (ties under `total_cmp` imply bit
/// equality for finite inputs), added in the same order, so the average is
/// bit-identical to [`median_of_sorted`] on the sorted array.
fn median_by_selection(values: &mut [f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mid = n / 2;
    let (left, &mut hi, _) = values.select_nth_unstable_by(mid, f64::total_cmp);
    if n % 2 == 1 {
        hi
    } else {
        let lo = left.iter().copied().max_by(f64::total_cmp).unwrap_or(hi);
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mann_kendall_finds_increase() {
        let data: Vec<f64> = (0..30)
            .map(|i| i as f64 + ((i * 37) % 7) as f64 * 0.1)
            .collect();
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.direction, TrendDirection::Increasing);
        assert!(r.s > 0);
    }

    #[test]
    fn mann_kendall_finds_decrease() {
        let data: Vec<f64> = (0..30).map(|i| 100.0 - i as f64).collect();
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.direction, TrendDirection::Decreasing);
        assert!(r.s < 0);
    }

    #[test]
    fn mann_kendall_no_trend_on_alternating() {
        let data: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.direction, TrendDirection::None);
    }

    #[test]
    fn mann_kendall_handles_ties() {
        let data = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 5.0];
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.direction, TrendDirection::Increasing);
    }

    #[test]
    fn mann_kendall_constant_series() {
        let data = vec![5.0; 20];
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.s, 0);
        assert_eq!(r.direction, TrendDirection::None);
    }

    #[test]
    fn theil_sen_exact_line() {
        let data: Vec<f64> = (0..20).map(|i| 3.0 + 0.5 * i as f64).collect();
        let fit = theil_sen(&data).unwrap();
        assert!((fit.slope - 0.5).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
    }

    #[test]
    fn theil_sen_robust_to_outliers() {
        let mut data: Vec<f64> = (0..30).map(|i| 1.0 + 0.2 * i as f64).collect();
        data[5] = 100.0;
        data[20] = -50.0;
        let fit = theil_sen(&data).unwrap();
        assert!((fit.slope - 0.2).abs() < 0.05, "slope = {}", fit.slope);
    }

    #[test]
    fn theil_sen_flat_series() {
        let data = vec![7.0; 10];
        let fit = theil_sen(&data).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 7.0);
    }

    #[test]
    fn short_inputs_error() {
        assert!(mann_kendall(&[1.0, 2.0], 0.05).is_err());
        assert!(theil_sen(&[1.0]).is_err());
    }

    fn pseudo_series(n: usize, seed: u64, quantize: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (((z >> 33) % 1000) as f64 / quantize).floor()
            })
            .collect()
    }

    #[test]
    fn fast_mann_kendall_bit_identical_to_naive() {
        // Quantized series produce heavy ties, exercising the tie-run
        // accounting; finer quantization exercises the inversion count.
        for &(n, seed, q) in &[(4usize, 1u64, 1.0), (37, 2, 10.0), (100, 3, 100.0), (225, 4, 1.0)]
        {
            let data = pseudo_series(n, seed, q);
            let fast = mann_kendall(&data, 0.05).unwrap();
            let slow = mann_kendall_naive(&data, 0.05).unwrap();
            assert_eq!(fast.s, slow.s, "n={n} seed={seed}");
            assert_eq!(fast.z.to_bits(), slow.z.to_bits());
            assert_eq!(fast.p_value.to_bits(), slow.p_value.to_bits());
            assert_eq!(fast.direction, slow.direction);
        }
    }

    #[test]
    fn fast_theil_sen_bit_identical_to_naive() {
        for &(n, seed) in &[(2usize, 5u64), (3, 6), (50, 7), (101, 8), (225, 9)] {
            let data = pseudo_series(n, seed, 7.0);
            let fast = theil_sen(&data).unwrap();
            let slow = theil_sen_naive(&data).unwrap();
            assert_eq!(fast.slope.to_bits(), slow.slope.to_bits(), "n={n}");
            assert_eq!(fast.intercept.to_bits(), slow.intercept.to_bits());
        }
    }

    #[test]
    fn inversion_count_matches_definition() {
        let data = [3.0, 1.0, 2.0, 2.0, 0.5];
        let mut v = data.to_vec();
        let mut buf = vec![0.0; v.len()];
        let fast = count_inversions(&mut v, &mut buf);
        let mut slow = 0i64;
        for i in 0..data.len() {
            for j in i + 1..data.len() {
                if data[i].total_cmp(&data[j]) == std::cmp::Ordering::Greater {
                    slow += 1;
                }
            }
        }
        assert_eq!(fast, slow);
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(v, sorted);
    }
}
