//! Trend statistics: the Mann-Kendall test and Theil-Sen slope estimator
//! (§5.2.2).
//!
//! The went-away detector uses Mann-Kendall to decide whether a regression
//! trend persists after a change point, and Theil-Sen to measure the trend's
//! slope and intercept robustly.

use crate::distributions::normal_two_sided_p;
use crate::error::{ensure_finite, ensure_len};
use crate::Result;

/// Direction of a monotonic trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendDirection {
    /// Statistically significant upward trend.
    Increasing,
    /// Statistically significant downward trend.
    Decreasing,
    /// No significant monotonic trend.
    None,
}

/// Result of the Mann-Kendall trend test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannKendallResult {
    /// The S statistic: the number of concordant minus discordant pairs.
    pub s: i64,
    /// The normalized Z statistic (with tie correction).
    pub z: f64,
    /// Two-sided p-value of Z under the null of no trend.
    pub p_value: f64,
    /// Detected direction at the requested significance.
    pub direction: TrendDirection,
}

/// Mann-Kendall test for a monotonic trend.
///
/// # Examples
///
/// ```
/// use fbd_stats::trend::{mann_kendall, TrendDirection};
/// let data: Vec<f64> = (0..40).map(|i| i as f64 * 0.5).collect();
/// let r = mann_kendall(&data, 0.05).unwrap();
/// assert_eq!(r.direction, TrendDirection::Increasing);
/// ```
pub fn mann_kendall(data: &[f64], significance: f64) -> Result<MannKendallResult> {
    ensure_len(data, 4)?;
    ensure_finite(data)?;
    let n = data.len();
    let mut s: i64 = 0;
    for i in 0..n - 1 {
        for j in i + 1..n {
            s += match data[j].total_cmp(&data[i]) {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
        }
    }
    // Variance with tie correction: Var(S) = [n(n-1)(2n+5) - Σ t(t-1)(2t+5)] / 18.
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut tie_term = 0.0;
    let mut run = 1usize;
    for i in 1..=n {
        // Bit equality matches the `total_cmp` ordering used for both the
        // sort above and the S statistic, so tie runs are exactly the
        // `Ordering::Equal` groups (inputs are finite per `ensure_finite`).
        if i < n && sorted[i].to_bits() == sorted[i - 1].to_bits() {
            run += 1;
        } else {
            if run > 1 {
                let t = run as f64;
                tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
            }
            run = 1;
        }
    }
    let nf = n as f64;
    let var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - tie_term) / 18.0;
    let z = if var_s <= 0.0 {
        0.0
    } else if s > 0 {
        (s as f64 - 1.0) / var_s.sqrt()
    } else if s < 0 {
        (s as f64 + 1.0) / var_s.sqrt()
    } else {
        0.0
    };
    let p_value = normal_two_sided_p(z);
    let direction = if p_value < significance {
        if s > 0 {
            TrendDirection::Increasing
        } else {
            TrendDirection::Decreasing
        }
    } else {
        TrendDirection::None
    };
    Ok(MannKendallResult {
        s,
        z,
        p_value,
        direction,
    })
}

/// A robust line fit from the Theil-Sen estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheilSenFit {
    /// Median of all pairwise slopes.
    pub slope: f64,
    /// Median of `y_i - slope * i`.
    pub intercept: f64,
}

/// Theil-Sen slope estimator over equally spaced samples (x = index).
///
/// Computes the median of all pairwise slopes `(y_j - y_i)/(j - i)`, which is
/// robust to up to ~29% outliers.
pub fn theil_sen(data: &[f64]) -> Result<TheilSenFit> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len();
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n - 1 {
        for j in i + 1..n {
            slopes.push((data[j] - data[i]) / (j - i) as f64);
        }
    }
    slopes.sort_by(f64::total_cmp);
    let slope = median_of_sorted(&slopes);
    let mut intercepts: Vec<f64> = data
        .iter()
        .enumerate()
        .map(|(i, &y)| y - slope * i as f64)
        .collect();
    intercepts.sort_by(f64::total_cmp);
    let intercept = median_of_sorted(&intercepts);
    Ok(TheilSenFit { slope, intercept })
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mann_kendall_finds_increase() {
        let data: Vec<f64> = (0..30)
            .map(|i| i as f64 + ((i * 37) % 7) as f64 * 0.1)
            .collect();
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.direction, TrendDirection::Increasing);
        assert!(r.s > 0);
    }

    #[test]
    fn mann_kendall_finds_decrease() {
        let data: Vec<f64> = (0..30).map(|i| 100.0 - i as f64).collect();
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.direction, TrendDirection::Decreasing);
        assert!(r.s < 0);
    }

    #[test]
    fn mann_kendall_no_trend_on_alternating() {
        let data: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 2.0 })
            .collect();
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.direction, TrendDirection::None);
    }

    #[test]
    fn mann_kendall_handles_ties() {
        let data = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 5.0];
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.direction, TrendDirection::Increasing);
    }

    #[test]
    fn mann_kendall_constant_series() {
        let data = vec![5.0; 20];
        let r = mann_kendall(&data, 0.05).unwrap();
        assert_eq!(r.s, 0);
        assert_eq!(r.direction, TrendDirection::None);
    }

    #[test]
    fn theil_sen_exact_line() {
        let data: Vec<f64> = (0..20).map(|i| 3.0 + 0.5 * i as f64).collect();
        let fit = theil_sen(&data).unwrap();
        assert!((fit.slope - 0.5).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
    }

    #[test]
    fn theil_sen_robust_to_outliers() {
        let mut data: Vec<f64> = (0..30).map(|i| 1.0 + 0.2 * i as f64).collect();
        data[5] = 100.0;
        data[20] = -50.0;
        let fit = theil_sen(&data).unwrap();
        assert!((fit.slope - 0.2).abs() < 0.05, "slope = {}", fit.slope);
    }

    #[test]
    fn theil_sen_flat_series() {
        let data = vec![7.0; 10];
        let fit = theil_sen(&data).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 7.0);
    }

    #[test]
    fn short_inputs_error() {
        assert!(mann_kendall(&[1.0, 2.0], 0.05).is_err());
        assert!(theil_sen(&[1.0]).is_err());
    }
}
