//! Symbolic Aggregate approXimation (SAX) discretization (§5.2.2).
//!
//! The went-away detector discretizes real-valued time series into strings
//! so that "very different" patterns become comparable. FBDetect's SAX
//! configuration divides the *value range* into `N` equal buckets (the paper
//! settles on N = 20), replaces values with bucket letters, and considers a
//! bucket *valid* only if it holds at least `X%` of the data points (the
//! paper uses X = 3%), which makes the representation robust to outliers.

use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// SAX configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaxConfig {
    /// Number of equal-width buckets over the value range (paper: 20).
    pub buckets: usize,
    /// Minimum fraction of points a bucket must hold to be "valid"
    /// (paper: 0.03, i.e. 3%).
    pub validity_fraction: f64,
}

impl Default for SaxConfig {
    fn default() -> Self {
        // The paper tested combinations and settled on N=20, X=3%.
        SaxConfig {
            buckets: 20,
            validity_fraction: 0.03,
        }
    }
}

/// A SAX encoding of a time series.
#[derive(Debug, Clone, PartialEq)]
pub struct SaxString {
    /// One symbol per input point; symbol `k` means bucket `k` (0-based).
    pub symbols: Vec<u8>,
    /// Lower edge of bucket 0 (the minimum of the encoding range).
    pub range_min: f64,
    /// Upper edge of the last bucket (the maximum of the encoding range).
    pub range_max: f64,
    /// Number of points in each bucket.
    pub histogram: Vec<usize>,
    /// Whether each bucket meets the validity fraction.
    pub valid: Vec<bool>,
}

impl SaxString {
    /// Bucket width of this encoding.
    pub fn bucket_width(&self) -> f64 {
        (self.range_max - self.range_min) / self.histogram.len() as f64
    }

    /// The largest bucket index that is valid, or `None` if no bucket is.
    pub fn largest_valid_symbol(&self) -> Option<u8> {
        self.valid
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &v)| v)
            .map(|(i, _)| i as u8)
    }

    /// The smallest bucket index that is valid, or `None` if no bucket is.
    pub fn smallest_valid_symbol(&self) -> Option<u8> {
        self.valid
            .iter()
            .enumerate()
            .find(|(_, &v)| v)
            .map(|(i, _)| i as u8)
    }

    /// The largest symbol that appears at all in the encoded series.
    pub fn largest_symbol(&self) -> u8 {
        // Encodings are non-empty by construction; 0 is the harmless
        // identity for the impossible empty case.
        self.symbols.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of the series' points whose bucket is *invalid*.
    ///
    /// A high fraction means the series mostly visits buckets that were rare
    /// in the reference range — the "new pattern" signal of §5.2.2.
    pub fn invalid_fraction(&self) -> f64 {
        let invalid: usize = self
            .symbols
            .iter()
            .filter(|&&s| !self.valid[s as usize])
            .count();
        invalid as f64 / self.symbols.len() as f64
    }

    /// Renders the string using letters 'a', 'b', … (wrapping after 26).
    pub fn to_letters(&self) -> String {
        self.symbols
            .iter()
            .map(|&s| (b'a' + s % 26) as char)
            .collect()
    }

    /// Encodes another series using *this* encoding's buckets and validity.
    ///
    /// Values outside the range clamp to the edge buckets. This is how the
    /// went-away detector compares a post-regression window against the
    /// historical pattern.
    pub fn encode_with_same_buckets(&self, data: &[f64]) -> Result<SaxString> {
        ensure_len(data, 1)?;
        ensure_finite(data)?;
        let n_buckets = self.histogram.len();
        let width = self.bucket_width();
        let symbols: Vec<u8> = data
            .iter()
            .map(|&v| {
                if width <= 0.0 {
                    0u8
                } else {
                    (((v - self.range_min) / width).floor() as i64).clamp(0, n_buckets as i64 - 1)
                        as u8
                }
            })
            .collect();
        let mut histogram = vec![0usize; n_buckets];
        for &s in &symbols {
            histogram[s as usize] += 1;
        }
        Ok(SaxString {
            symbols,
            range_min: self.range_min,
            range_max: self.range_max,
            histogram,
            // Validity is inherited from the reference encoding.
            valid: self.valid.clone(),
        })
    }
}

impl Default for SaxString {
    fn default() -> Self {
        SaxString {
            symbols: Vec::new(),
            range_min: 0.0,
            range_max: 0.0,
            histogram: Vec::new(),
            valid: Vec::new(),
        }
    }
}

/// Encodes `data` into a SAX string using equal-width buckets over the data's
/// own `[min, max]` range.
pub fn encode(data: &[f64], config: SaxConfig) -> Result<SaxString> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    let range_min = data.iter().copied().fold(f64::INFINITY, f64::min);
    let range_max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    encode_in_range(data, range_min, range_max, config)
}

/// Encodes `data` using equal-width buckets over an explicit
/// `[range_min, range_max]` range; values outside clamp to edge buckets.
///
/// # Examples
///
/// The paper's worked example (§5.2.2): four buckets where 'a' is `[1, 2)`,
/// 'b' is `[2, 3)`, and so on.
///
/// ```
/// use fbd_stats::sax::{encode_in_range, SaxConfig};
/// let data = [1.1, 2.0, 3.1, 4.2, 3.5, 2.3, 1.1];
/// let cfg = SaxConfig { buckets: 4, validity_fraction: 0.0 };
/// let s = encode_in_range(&data, 1.0, 5.0, cfg).unwrap();
/// assert_eq!(s.to_letters(), "abcdcba");
/// ```
pub fn encode_in_range(
    data: &[f64],
    range_min: f64,
    range_max: f64,
    config: SaxConfig,
) -> Result<SaxString> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    if config.buckets == 0 {
        return Err(StatsError::InvalidParameter("buckets must be positive"));
    }
    if !(0.0..=1.0).contains(&config.validity_fraction) {
        return Err(StatsError::InvalidParameter(
            "validity_fraction must be in [0, 1]",
        ));
    }
    if range_min > range_max || !range_min.is_finite() || !range_max.is_finite() {
        return Err(StatsError::InvalidParameter("invalid SAX range"));
    }
    let width = (range_max - range_min) / config.buckets as f64;
    let symbols: Vec<u8> = data
        .iter()
        .map(|&v| {
            if width <= 0.0 {
                0u8
            } else {
                // The maximum maps into the last bucket, not one past it.
                (((v - range_min) / width).floor() as i64).clamp(0, config.buckets as i64 - 1) as u8
            }
        })
        .collect();
    let mut histogram = vec![0usize; config.buckets];
    for &s in &symbols {
        histogram[s as usize] += 1;
    }
    let min_count = (config.validity_fraction * data.len() as f64).ceil() as usize;
    let valid: Vec<bool> = histogram.iter().map(|&c| c >= min_count.max(1)).collect();
    Ok(SaxString {
        symbols,
        range_min,
        range_max,
        histogram,
        valid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_abcdcba() {
        // The paper's §5.2.2 example uses buckets [1,2), [2,3), [3,4), [4,5).
        let data = [1.1, 2.0, 3.1, 4.2, 3.5, 2.3, 1.1];
        let cfg = SaxConfig {
            buckets: 4,
            validity_fraction: 0.0,
        };
        let s = encode_in_range(&data, 1.0, 5.0, cfg).unwrap();
        assert_eq!(s.to_letters(), "abcdcba");
    }

    #[test]
    fn min_max_encoding_of_paper_data() {
        // Over the data's own [1.1, 4.2] range, 3.5 lands in the top bucket.
        let data = [1.1, 2.0, 3.1, 4.2, 3.5, 2.3, 1.1];
        let cfg = SaxConfig {
            buckets: 4,
            validity_fraction: 0.0,
        };
        let s = encode(&data, cfg).unwrap();
        assert_eq!(s.to_letters(), "abcddba");
    }

    #[test]
    fn encode_in_range_rejects_inverted_range() {
        let cfg = SaxConfig::default();
        assert!(encode_in_range(&[1.0], 2.0, 1.0, cfg).is_err());
    }

    #[test]
    fn constant_series_single_bucket() {
        let data = vec![5.0; 10];
        let s = encode(&data, SaxConfig::default()).unwrap();
        assert!(s.symbols.iter().all(|&x| x == 0));
        assert_eq!(s.histogram[0], 10);
    }

    #[test]
    fn outlier_bucket_is_invalid() {
        // 99 points near 1.0, a single spike at 100.
        let mut data = vec![1.0; 99];
        data.push(100.0);
        let s = encode(&data, SaxConfig::default()).unwrap();
        let spike_bucket = *s.symbols.last().unwrap() as usize;
        assert!(!s.valid[spike_bucket], "spike bucket should be invalid");
        assert!(s.valid[s.symbols[0] as usize]);
        assert_eq!(s.largest_valid_symbol(), Some(s.symbols[0]));
    }

    #[test]
    fn invalid_fraction_detects_new_pattern() {
        // Encode the historical window over a range wide enough to cover
        // plausible values; the buckets around 5.0 held nothing historically
        // and are therefore invalid.
        let historical: Vec<f64> = (0..100).map(|i| (i % 10) as f64 / 10.0).collect();
        let reference = encode_in_range(&historical, 0.0, 6.0, SaxConfig::default()).unwrap();
        let new_data = vec![5.0; 50];
        let encoded = reference.encode_with_same_buckets(&new_data).unwrap();
        assert!(encoded.invalid_fraction() > 0.9);
    }

    #[test]
    fn same_pattern_has_low_invalid_fraction() {
        let historical: Vec<f64> = (0..100).map(|i| (i % 10) as f64 / 10.0).collect();
        let reference = encode(&historical, SaxConfig::default()).unwrap();
        let similar: Vec<f64> = (0..50).map(|i| (i % 10) as f64 / 10.0).collect();
        let encoded = reference.encode_with_same_buckets(&similar).unwrap();
        assert!(encoded.invalid_fraction() < 0.1);
    }

    #[test]
    fn zero_buckets_rejected() {
        let cfg = SaxConfig {
            buckets: 0,
            validity_fraction: 0.03,
        };
        assert!(encode(&[1.0, 2.0], cfg).is_err());
    }

    #[test]
    fn max_value_maps_to_last_bucket() {
        let data = [0.0, 1.0, 2.0, 3.0];
        let cfg = SaxConfig {
            buckets: 4,
            validity_fraction: 0.0,
        };
        let s = encode(&data, cfg).unwrap();
        assert_eq!(*s.symbols.last().unwrap(), 3);
        assert_eq!(s.largest_symbol(), 3);
    }

    #[test]
    fn letters_wrap_after_z() {
        let data: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let cfg = SaxConfig {
            buckets: 30,
            validity_fraction: 0.0,
        };
        let s = encode(&data, cfg).unwrap();
        assert_eq!(s.to_letters().len(), 30);
    }
}
