//! Error type shared by all statistical routines.

use std::fmt;

/// Errors produced by the statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice was empty but the routine requires data.
    EmptyInput,
    /// The input was shorter than the routine's minimum length.
    ///
    /// Carries the required and actual lengths.
    TooFewSamples {
        /// Minimum samples the routine needs.
        required: usize,
        /// Samples actually provided.
        actual: usize,
    },
    /// A parameter was outside its valid range (e.g. a percentile above 100).
    InvalidParameter(&'static str),
    /// The input contained a NaN or infinite value.
    NonFiniteInput,
    /// An iterative algorithm failed to converge within its iteration budget.
    DidNotConverge(&'static str),
    /// The computation is undefined for this input (e.g. zero variance where
    /// a normalized statistic is required).
    Degenerate(&'static str),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input slice is empty"),
            StatsError::TooFewSamples { required, actual } => {
                write!(f, "need at least {required} samples, got {actual}")
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            StatsError::DidNotConverge(what) => write!(f, "did not converge: {what}"),
            StatsError::Degenerate(what) => write!(f, "degenerate input: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Returns an error if any value in `data` is NaN or infinite.
pub(crate) fn ensure_finite(data: &[f64]) -> crate::Result<()> {
    if data.iter().any(|v| !v.is_finite()) {
        Err(StatsError::NonFiniteInput)
    } else {
        Ok(())
    }
}

/// Returns an error if `data` is shorter than `required`.
pub(crate) fn ensure_len(data: &[f64], required: usize) -> crate::Result<()> {
    if data.is_empty() {
        Err(StatsError::EmptyInput)
    } else if data.len() < required {
        Err(StatsError::TooFewSamples {
            required,
            actual: data.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(StatsError::EmptyInput.to_string(), "input slice is empty");
        assert!(StatsError::TooFewSamples {
            required: 3,
            actual: 1
        }
        .to_string()
        .contains("at least 3"));
        assert!(StatsError::DidNotConverge("EM").to_string().contains("EM"));
    }

    #[test]
    fn ensure_finite_rejects_nan() {
        assert_eq!(
            ensure_finite(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteInput)
        );
        assert!(ensure_finite(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn ensure_len_rejects_short_input() {
        assert_eq!(ensure_len(&[], 1), Err(StatsError::EmptyInput));
        assert_eq!(
            ensure_len(&[1.0], 2),
            Err(StatsError::TooFewSamples {
                required: 2,
                actual: 1
            })
        );
        assert!(ensure_len(&[1.0, 2.0], 2).is_ok());
    }
}
