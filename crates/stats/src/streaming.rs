//! Incremental rolling statistics for the streaming scan engine.
//!
//! A scheduler round appends `k` points per series and slides the detection
//! windows forward; the engine needs window-segment statistics (finite
//! counts, sums, sums of squares) without an O(n) rescan per round.
//!
//! ## Why not incremental mean-centered prefix sums
//!
//! [`crate::prefix::PrefixStats`] stores *mean-centered* prefix sums: every
//! entry depends on the global mean, so a single append shifts the mean and
//! rewrites every entry — an O(k) `append` that stays bit-identical to a
//! cold rebuild is impossible in that representation. [`RollingStats`]
//! instead freezes a centering *pivot* at the first finite sample and keeps
//! per-block partial sums aligned to **absolute stream indices**: block `b`
//! always covers samples `[b·B, (b+1)·B)` of the series' lifetime,
//! regardless of how many samples have been evicted. Because block
//! boundaries and the accumulation order inside each block are functions of
//! the absolute index alone, an incrementally maintained structure and a
//! cold rebuild over the same retained samples (with the same pivot)
//! produce bit-identical query results — the property the round-over-round
//! determinism of the scan engine rests on, and what the proptests pin.
//!
//! Non-finite samples are retained (they occupy indices) but excluded from
//! the sums; `finite_count` reports how many samples in a segment are
//! usable, which is what the pipeline's data-quality gate consumes.

use std::collections::VecDeque;

/// Number of samples per sealed block. Chosen so per-append amortized work
/// is ~1 and partial-edge scans stay under a cache line burst.
const BLOCK: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Block {
    sum: f64,
    sum_sq: f64,
    finite: u32,
    /// Largest |v − pivot| over the finite samples (0 when none): lets a
    /// query bound the data scale without rescanning values.
    max_dev: f64,
}

/// Finite-sample moments of one absolute-index segment, pivot-centered.
/// Returned by [`RollingStats::segment_moments`]; the online refuters in
/// [`crate::online`] consume these instead of rescanning window values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentMoments {
    /// Number of finite samples in the segment.
    pub finite: usize,
    /// Σ (v − pivot) over the finite samples.
    pub sum: f64,
    /// Σ (v − pivot)² over the finite samples.
    pub sum_sq: f64,
    /// max |v − pivot| over the finite samples (0 when none).
    pub max_dev: f64,
}

impl SegmentMoments {
    /// Residual sum of squares of the segment around its own mean, clamped
    /// non-negative — the Gaussian segment cost, matching
    /// [`crate::prefix::PrefixStats::segment_cost`] up to rounding (the
    /// identity is centering-invariant in exact arithmetic).
    pub fn sse(&self) -> f64 {
        if self.finite == 0 {
            return 0.0;
        }
        (self.sum_sq - self.sum * self.sum / self.finite as f64).max(0.0)
    }
}

/// Append/evict rolling statistics over a series' lifetime, queryable by
/// absolute sample index. See the module docs for the design contract.
#[derive(Debug, Clone, Default)]
pub struct RollingStats {
    /// Retained raw samples; `values[0]` has absolute index `first`.
    values: VecDeque<f64>,
    /// Absolute index of the first retained sample.
    first: u64,
    /// Sealed sums for fully retained, complete blocks; `blocks[0]` covers
    /// block number `first_block`.
    blocks: VecDeque<Block>,
    /// Block number of `blocks[0]`.
    first_block: u64,
    /// Centering pivot, frozen at the first finite sample ever appended.
    pivot: Option<f64>,
}

impl RollingStats {
    /// Creates an empty structure whose first appended sample will have
    /// absolute index `start`.
    pub fn new(start: u64) -> Self {
        RollingStats {
            values: VecDeque::new(),
            first: start,
            blocks: VecDeque::new(),
            first_block: 0,
            pivot: None,
        }
    }

    /// Cold rebuild: equivalent to appending every sample of `values`
    /// starting at absolute index `start`, but with the pivot imposed.
    /// Ground truth for the incremental maintenance proptests.
    pub fn rebuild(values: &[f64], start: u64, pivot: Option<f64>) -> Self {
        let mut s = RollingStats::new(start);
        s.pivot = pivot;
        for &v in values {
            s.append(v);
        }
        s
    }

    /// Absolute index of the first retained sample.
    pub fn first_index(&self) -> u64 {
        self.first
    }

    /// One past the absolute index of the last retained sample.
    pub fn end_index(&self) -> u64 {
        self.first + self.values.len() as u64
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The frozen centering pivot, if any finite sample has been seen.
    pub fn pivot(&self) -> Option<f64> {
        self.pivot
    }

    /// Appends one sample at the next absolute index. O(1) amortized: a
    /// completed block is sealed by one pass over its `BLOCK` samples.
    // fbd-lint::hot
    pub fn append(&mut self, value: f64) {
        if self.pivot.is_none() && value.is_finite() {
            self.pivot = Some(value);
        }
        self.values.push_back(value);
        let end = self.end_index();
        // Seal the block this sample completed, if it is fully retained.
        if end.is_multiple_of(BLOCK) {
            let block_start = end - BLOCK;
            if block_start >= self.first {
                let block_no = block_start / BLOCK;
                if self.blocks.is_empty() {
                    self.first_block = block_no;
                }
                self.blocks.push_back(self.seal(block_start));
            }
        }
    }

    /// Evicts the `k` oldest retained samples (all of them if `k` exceeds
    /// the length). Sealed blocks that lose any sample are dropped; their
    /// surviving samples are handled by the raw-edge path in queries.
    pub fn evict_front(&mut self, k: usize) {
        let k = k.min(self.values.len());
        self.values.drain(..k);
        self.first += k as u64;
        while let Some(_front) = self.blocks.front() {
            if self.first_block * BLOCK < self.first {
                self.blocks.pop_front();
                self.first_block += 1;
            } else {
                break;
            }
        }
    }

    /// Evicts every sample with absolute index below `abs`.
    pub fn evict_to(&mut self, abs: u64) {
        if abs > self.first {
            self.evict_front((abs - self.first) as usize);
        }
    }

    /// The retained sample at absolute index `abs`, if retained.
    pub fn get(&self, abs: u64) -> Option<f64> {
        if abs < self.first {
            return None;
        }
        self.values.get((abs - self.first) as usize).copied()
    }

    /// Finite-sample count over absolute index range `[a, b)`, clamped to
    /// the retained range. Integer-exact, so it is trivially identical
    /// between incremental and cold-rebuilt structures.
    pub fn finite_count(&self, a: u64, b: u64) -> usize {
        self.fold(a, b).finite as usize
    }

    /// Pivot-centered sum of finite samples over `[a, b)` (clamped).
    pub fn centered_sum(&self, a: u64, b: u64) -> f64 {
        self.fold(a, b).sum
    }

    /// Pivot-centered sum of squares of finite samples over `[a, b)`.
    pub fn centered_sum_sq(&self, a: u64, b: u64) -> f64 {
        self.fold(a, b).sum_sq
    }

    /// Mean of the finite samples in `[a, b)`, or `None` when none exist.
    pub fn mean(&self, a: u64, b: u64) -> Option<f64> {
        let f = self.fold(a, b);
        if f.finite == 0 {
            return None;
        }
        self.pivot.map(|p| p + f.sum / f64::from(f.finite))
    }

    /// All finite-sample moments of `[a, b)` (clamped to the retained
    /// range) in one traversal: count, pivot-centered sum and sum of
    /// squares, and the largest absolute deviation from the pivot. Sealed
    /// blocks make this O(len/64 + edges).
    pub fn segment_moments(&self, a: u64, b: u64) -> SegmentMoments {
        let f = self.fold(a, b);
        SegmentMoments {
            finite: f.finite as usize,
            sum: f.sum,
            sum_sq: f.sum_sq,
            max_dev: f.max_dev,
        }
    }

    /// Upper bound on max |v| over the finite samples of `[a, b)`:
    /// |pivot| + max |v − pivot|. Zero when no finite sample is retained in
    /// the range. Used to size guard bands against the data scale.
    pub fn max_abs_upper_bound(&self, a: u64, b: u64) -> f64 {
        let f = self.fold(a, b);
        if f.finite == 0 {
            return 0.0;
        }
        self.pivot.unwrap_or(0.0).abs() + f.max_dev
    }

    /// Accumulates a segment left-to-right: raw leading edge, sealed
    /// interior blocks, raw trailing edge. The traversal is a pure function
    /// of the absolute index range and retained bounds, which is what makes
    /// incremental and cold-rebuilt results bit-identical.
    fn fold(&self, a: u64, b: u64) -> Block {
        let pivot = self.pivot.unwrap_or(0.0);
        let a = a.max(self.first);
        let b = b.min(self.end_index());
        let mut acc = Block {
            sum: 0.0,
            sum_sq: 0.0,
            finite: 0,
            max_dev: 0.0,
        };
        let mut i = a;
        while i < b {
            if i.is_multiple_of(BLOCK) && i + BLOCK <= b {
                if let Some(block) = self.sealed(i / BLOCK) {
                    acc.sum += block.sum;
                    acc.sum_sq += block.sum_sq;
                    acc.finite += block.finite;
                    acc.max_dev = acc.max_dev.max(block.max_dev);
                    i += BLOCK;
                    continue;
                }
            }
            let Some(v) = self.get(i) else {
                break;
            };
            if v.is_finite() {
                let c = v - pivot;
                acc.sum += c;
                acc.sum_sq += c * c;
                acc.finite += 1;
                acc.max_dev = acc.max_dev.max(c.abs());
            }
            i += 1;
        }
        acc
    }

    /// The sealed sums for block `block_no`, when fully retained.
    fn sealed(&self, block_no: u64) -> Option<Block> {
        if block_no < self.first_block {
            return None;
        }
        self.blocks.get((block_no - self.first_block) as usize).copied()
    }

    /// Computes a complete block's sums by one left-to-right pass over its
    /// raw samples. `block_start` is the block's first absolute index.
    fn seal(&self, block_start: u64) -> Block {
        let pivot = self.pivot.unwrap_or(0.0);
        let mut acc = Block {
            sum: 0.0,
            sum_sq: 0.0,
            finite: 0,
            max_dev: 0.0,
        };
        for i in block_start..block_start + BLOCK {
            if let Some(v) = self.get(i) {
                if v.is_finite() {
                    let c = v - pivot;
                    acc.sum += c;
                    acc.sum_sq += c * c;
                    acc.finite += 1;
                    acc.max_dev = acc.max_dev.max(c.abs());
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> f64 {
        // Deterministic pseudo-noise around a level shift.
        let base = if i < 200 { 1.0 } else { 1.5 };
        base + ((i * 2_654_435_761) % 1_000) as f64 / 10_000.0
    }

    #[test]
    fn matches_cold_rebuild_after_appends_and_evictions() {
        let mut inc = RollingStats::new(0);
        let mut all: Vec<f64> = Vec::new();
        for i in 0..500 {
            inc.append(sample(i));
            all.push(sample(i));
        }
        inc.evict_front(137);
        for i in 500..700 {
            inc.append(sample(i));
            all.push(sample(i));
        }
        inc.evict_to(300);
        let cold = RollingStats::rebuild(&all[300..], 300, inc.pivot());
        for (a, b) in [(300, 700), (301, 699), (350, 420), (0, 10_000), (640, 641)] {
            assert_eq!(inc.finite_count(a, b), cold.finite_count(a, b));
            assert!(
                inc.centered_sum(a, b).to_bits() == cold.centered_sum(a, b).to_bits(),
                "sum mismatch on [{a}, {b})"
            );
            assert!(
                inc.centered_sum_sq(a, b).to_bits() == cold.centered_sum_sq(a, b).to_bits(),
                "sum_sq mismatch on [{a}, {b})"
            );
        }
    }

    #[test]
    fn mean_matches_direct_computation() {
        let mut s = RollingStats::new(10);
        let vals: Vec<f64> = (0..100).map(|i| sample(i)).collect();
        for &v in &vals {
            s.append(v);
        }
        let m = s.mean(10, 110).unwrap();
        let direct = s.pivot().unwrap()
            + vals.iter().map(|v| v - s.pivot().unwrap()).sum::<f64>() / vals.len() as f64;
        assert!((m - direct).abs() < 1e-12);
        assert_eq!(s.mean(10, 10), None);
    }

    #[test]
    fn non_finite_samples_are_counted_out() {
        let mut s = RollingStats::new(0);
        for i in 0..130 {
            if i % 10 == 3 {
                s.append(f64::NAN);
            } else {
                s.append(1.0);
            }
        }
        assert_eq!(s.finite_count(0, 130), 130 - 13);
        assert_eq!(s.centered_sum(0, 130), 0.0); // pivot == 1.0, all centered to 0
        assert!(s.centered_sum(0, 130).is_finite());
    }

    #[test]
    fn pivot_freezes_at_first_finite_sample() {
        let mut s = RollingStats::new(0);
        s.append(f64::NAN);
        assert_eq!(s.pivot(), None);
        s.append(42.0);
        assert_eq!(s.pivot(), Some(42.0));
        s.append(7.0);
        s.evict_front(3);
        assert_eq!(s.pivot(), Some(42.0)); // survives eviction
    }

    #[test]
    fn eviction_clamps_and_tracks_indices() {
        let mut s = RollingStats::new(5);
        for i in 0..10 {
            s.append(i as f64);
        }
        assert_eq!((s.first_index(), s.end_index()), (5, 15));
        s.evict_front(100);
        assert!(s.is_empty());
        assert_eq!(s.first_index(), 15);
        s.append(3.0);
        assert_eq!(s.get(15), Some(3.0));
        assert_eq!(s.get(14), None);
    }

    #[test]
    fn partial_block_eviction_falls_back_to_raw_edges() {
        let mut s = RollingStats::new(0);
        let vals: Vec<f64> = (0..256).map(|i| sample(i)).collect();
        for &v in &vals {
            s.append(v);
        }
        // Evict into the middle of the second sealed block.
        s.evict_front(70);
        let cold = RollingStats::rebuild(&vals[70..], 70, s.pivot());
        assert_eq!(
            s.centered_sum(70, 256).to_bits(),
            cold.centered_sum(70, 256).to_bits()
        );
        assert_eq!(s.finite_count(70, 128), 58);
    }
}
