//! Cumulative Sum (CUSUM) change-point statistics (§5.2.1).
//!
//! FBDetect's change-point detector applies CUSUM and EM iteratively to find
//! the point with the maximum likelihood of separating two different means.
//! This module provides the CUSUM half: the cumulative deviation-from-mean
//! series, the location of its extremum (the classic CUSUM change-point
//! estimate), and a one-sided tabular CUSUM for drift detection.

use crate::error::{ensure_finite, ensure_len};
use crate::prefix::PrefixStats;
use crate::Result;

/// Result of a CUSUM scan over a time series.
#[derive(Debug, Clone, PartialEq)]
pub struct CusumResult {
    /// Index of the most likely change point (the extremum of |S_i|).
    ///
    /// The change is interpreted as occurring *after* this index: samples
    /// `0..=index` form the first segment and `index+1..` the second.
    pub index: usize,
    /// Magnitude of the CUSUM extremum, `max_i |S_i|`.
    pub magnitude: f64,
    /// Difference of segment means, `mean(after) - mean(before)`.
    pub mean_shift: f64,
}

/// Cumulative deviation-from-mean series `S_i = Σ_{j<=i} (x_j - x̄)`.
pub fn cusum_series(data: &[f64]) -> Result<Vec<f64>> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    let m = data.iter().sum::<f64>() / data.len() as f64;
    let mut acc = 0.0;
    Ok(data
        .iter()
        .map(|v| {
            acc += v - m;
            acc
        })
        .collect())
}

/// Locates the most likely single change point via the CUSUM extremum.
///
/// Returns an error for series shorter than 4 samples (both segments need at
/// least two points for a meaningful mean comparison).
///
/// # Examples
///
/// ```
/// let mut data = vec![0.0; 50];
/// data.extend(vec![1.0; 50]);
/// let r = fbd_stats::cusum::detect_change_point(&data).unwrap();
/// assert_eq!(r.index, 49);
/// assert!((r.mean_shift - 1.0).abs() < 1e-12);
/// ```
pub fn detect_change_point(data: &[f64]) -> Result<CusumResult> {
    ensure_len(data, 4)?;
    ensure_finite(data)?;
    Ok(change_point_from_prefix(&PrefixStats::new(data)))
}

/// CUSUM extremum search over precomputed [`PrefixStats`].
///
/// The centered prefix sums *are* the CUSUM series, so callers that already
/// paid the O(n) prefix pass (e.g. [`crate::em::fit_two_segment`]) locate
/// the extremum and both segment means without touching the raw data again.
///
/// The statistics must cover at least 2 samples.
pub fn change_point_from_prefix(ps: &PrefixStats) -> CusumResult {
    let n = ps.len();
    // Exclude the final point (S_{n-1} = 0 by construction) and scan the
    // rest so both segments are non-empty.
    let mut best_idx = 0;
    let mut best_mag = f64::NEG_INFINITY;
    for i in 0..n - 1 {
        let s = ps.cusum_at(i + 1);
        if s.abs() > best_mag {
            best_mag = s.abs();
            best_idx = i;
        }
    }
    CusumResult {
        index: best_idx,
        magnitude: best_mag,
        mean_shift: ps.segment_mean(best_idx + 1, n) - ps.segment_mean(0, best_idx + 1),
    }
}

/// One-sided tabular CUSUM for detecting upward drift.
///
/// `target` is the in-control mean, `slack` the allowance (often `k·σ/2`),
/// and `threshold` the decision interval. Returns the first index where the
/// upper CUSUM exceeds the threshold, or `None`.
pub fn tabular_cusum_upper(
    data: &[f64],
    target: f64,
    slack: f64,
    threshold: f64,
) -> Result<Option<usize>> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    let mut c_plus: f64 = 0.0;
    for (i, &x) in data.iter().enumerate() {
        c_plus = (c_plus + x - target - slack).max(0.0);
        if c_plus > threshold {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cusum_series_ends_at_zero() {
        let data = [1.0, 3.0, 2.0, 4.0, 5.0];
        let s = cusum_series(&data).unwrap();
        assert!(s.last().unwrap().abs() < 1e-12);
        assert_eq!(s.len(), data.len());
    }

    #[test]
    fn detects_obvious_step() {
        let mut data = vec![10.0; 30];
        data.extend(vec![12.0; 30]);
        let r = detect_change_point(&data).unwrap();
        assert_eq!(r.index, 29);
        assert!((r.mean_shift - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_downward_step() {
        let mut data = vec![5.0; 20];
        data.extend(vec![3.0; 20]);
        let r = detect_change_point(&data).unwrap();
        assert_eq!(r.index, 19);
        assert!((r.mean_shift + 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_step_in_noise() {
        // Deterministic pseudo-noise around a 0.5 step.
        let data: Vec<f64> = (0..200)
            .map(|i| {
                let noise = ((i * 2654435761u64 as usize) % 1000) as f64 / 10000.0;
                if i < 100 {
                    1.0 + noise
                } else {
                    1.5 + noise
                }
            })
            .collect();
        let r = detect_change_point(&data).unwrap();
        assert!((95..=104).contains(&r.index), "index = {}", r.index);
        assert!(r.mean_shift > 0.4);
    }

    #[test]
    fn constant_series_has_zero_magnitude() {
        let data = vec![2.0; 16];
        let r = detect_change_point(&data).unwrap();
        assert_eq!(r.magnitude, 0.0);
        assert_eq!(r.mean_shift, 0.0);
    }

    #[test]
    fn tabular_cusum_flags_drift() {
        let mut data = vec![0.0; 50];
        data.extend((0..50).map(|i| 0.1 * i as f64));
        let hit = tabular_cusum_upper(&data, 0.0, 0.05, 5.0).unwrap();
        assert!(hit.is_some());
        assert!(hit.unwrap() >= 50);
    }

    #[test]
    fn tabular_cusum_quiet_on_noise() {
        let data: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        assert_eq!(tabular_cusum_upper(&data, 0.0, 0.2, 5.0).unwrap(), None);
    }

    #[test]
    fn too_short_errors() {
        assert!(detect_change_point(&[1.0, 2.0]).is_err());
    }
}
