//! Offline change-point search with normal loss and dynamic programming
//! (§5.3).
//!
//! The long-term detector locates a change point by minimizing the summed
//! within-segment variance on both sides of a partition point — the optimal
//! single-split under a Gaussian cost, found exactly with prefix sums. A
//! multi-change-point dynamic program (Truong et al.'s selective-review
//! formulation with a per-segment penalty) is also provided for workloads
//! with several shifts in one window.

use crate::error::{ensure_finite, ensure_len};
use crate::prefix::PrefixStats;
use crate::Result;

/// Result of the optimal single-split search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitResult {
    /// Index of the last sample in the first segment.
    pub index: usize,
    /// Total within-segment cost at the optimal split.
    pub cost: f64,
    /// Cost of the unsplit series, for comparison.
    pub unsplit_cost: f64,
}

impl SplitResult {
    /// Fractional cost reduction achieved by splitting, in `[0, 1]`.
    pub fn gain(&self) -> f64 {
        if self.unsplit_cost <= 0.0 {
            0.0
        } else {
            1.0 - self.cost / self.unsplit_cost
        }
    }
}

/// Finds the partition point minimizing the variance on both sides (§5.3).
///
/// # Examples
///
/// ```
/// let mut data = vec![1.0; 30];
/// data.extend(vec![2.0; 30]);
/// let r = fbd_stats::changepoint::optimal_single_split(&data).unwrap();
/// assert_eq!(r.index, 29);
/// assert!(r.gain() > 0.99);
/// ```
pub fn optimal_single_split(data: &[f64]) -> Result<SplitResult> {
    ensure_len(data, 4)?;
    ensure_finite(data)?;
    let ps = PrefixStats::new(data);
    let n = data.len();
    let unsplit_cost = ps.segment_cost(0, n);
    let mut best_idx = 0;
    let mut best_cost = f64::INFINITY;
    for split in 1..n - 1 {
        let cost = ps.segment_cost(0, split + 1) + ps.segment_cost(split + 1, n);
        if cost < best_cost {
            best_cost = cost;
            best_idx = split;
        }
    }
    Ok(SplitResult {
        index: best_idx,
        cost: best_cost,
        unsplit_cost,
    })
}

/// Multiple change points via penalized dynamic programming (PELT-style
/// exact search without pruning; O(n²) which is fine for window-sized data).
///
/// `penalty` is added per segment; larger penalties yield fewer change
/// points. A common default is `2 σ² ln n` (BIC-like).
///
/// Returns the sorted indices of the last sample of each non-final segment.
pub fn optimal_partition(data: &[f64], penalty: f64) -> Result<Vec<usize>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len();
    let ps = PrefixStats::new(data);
    // best_cost[i] = minimal penalized cost of data[0..i].
    let mut best_cost = vec![0.0f64; n + 1];
    let mut last_cut = vec![0usize; n + 1];
    for i in 1..=n {
        let mut bc = f64::INFINITY;
        let mut blc = 0;
        for (j, &prior) in best_cost.iter().enumerate().take(i) {
            let c = prior + ps.segment_cost(j, i) + penalty;
            if c < bc {
                bc = c;
                blc = j;
            }
        }
        best_cost[i] = bc;
        last_cut[i] = blc;
    }
    // Backtrack.
    let mut cuts = Vec::new();
    let mut i = n;
    while i > 0 {
        let j = last_cut[i];
        if j > 0 {
            cuts.push(j - 1);
        }
        i = j;
    }
    cuts.reverse();
    Ok(cuts)
}

/// A BIC-style penalty for [`optimal_partition`]: `2 σ̂² ln n` where `σ̂²` is
/// a robust variance estimate from first differences.
pub fn bic_penalty(data: &[f64]) -> Result<f64> {
    ensure_len(data, 3)?;
    ensure_finite(data)?;
    // Variance from lag-1 differences is robust to mean shifts:
    // Var(x_{i+1} - x_i) = 2 σ² for IID noise.
    let diffs: Vec<f64> = data.windows(2).map(|w| w[1] - w[0]).collect();
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / diffs.len() as f64 / 2.0;
    Ok((2.0 * var * (data.len() as f64).ln()).max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(vals: &[(usize, f64)], noise: f64) -> Vec<f64> {
        let mut out = Vec::new();
        for &(n, mean) in vals {
            for i in 0..n {
                let j = out.len() + i;
                out.push(mean + (((j * 48271) % 233) as f64 / 233.0 - 0.5) * noise);
            }
        }
        out
    }

    #[test]
    fn single_split_exact_step() {
        let data = noisy(&[(40, 0.0), (40, 1.0)], 0.0);
        let r = optimal_single_split(&data).unwrap();
        assert_eq!(r.index, 39);
        assert!(r.cost < 1e-12);
        assert!(r.gain() > 0.999);
    }

    #[test]
    fn single_split_noisy_step() {
        let data = noisy(&[(100, 5.0), (100, 5.4)], 0.2);
        let r = optimal_single_split(&data).unwrap();
        assert!((95..=105).contains(&r.index), "index {}", r.index);
        assert!(r.gain() > 0.5);
    }

    #[test]
    fn single_split_flat_has_tiny_gain() {
        let data = noisy(&[(120, 3.0)], 0.2);
        let r = optimal_single_split(&data).unwrap();
        assert!(r.gain() < 0.2, "gain = {}", r.gain());
    }

    #[test]
    fn partition_finds_two_steps() {
        let data = noisy(&[(50, 0.0), (50, 2.0), (50, 4.0)], 0.1);
        let pen = bic_penalty(&data).unwrap();
        let cuts = optimal_partition(&data, pen).unwrap();
        assert_eq!(cuts.len(), 2, "cuts = {cuts:?}");
        assert!((45..=54).contains(&cuts[0]));
        assert!((95..=104).contains(&cuts[1]));
    }

    #[test]
    fn partition_flat_has_no_cuts() {
        let data = noisy(&[(150, 1.0)], 0.2);
        let pen = bic_penalty(&data).unwrap();
        let cuts = optimal_partition(&data, pen).unwrap();
        assert!(cuts.is_empty(), "cuts = {cuts:?}");
    }

    #[test]
    fn partition_huge_penalty_yields_no_cuts() {
        let data = noisy(&[(40, 0.0), (40, 5.0)], 0.1);
        let cuts = optimal_partition(&data, 1e9).unwrap();
        assert!(cuts.is_empty());
    }

    #[test]
    fn partition_zero_penalty_overfits() {
        let data = noisy(&[(10, 0.0), (10, 1.0)], 0.3);
        let cuts = optimal_partition(&data, 0.0).unwrap();
        // With no penalty every point becomes its own segment boundary.
        assert!(cuts.len() >= 10);
    }

    #[test]
    fn prefix_stats_segment_cost() {
        let ps = PrefixStats::new(&[1.0, 2.0, 3.0]);
        // RSS of [1,2,3] around mean 2 is 2.
        assert!((ps.segment_cost(0, 3) - 2.0).abs() < 1e-12);
        assert_eq!(ps.segment_cost(1, 1), 0.0);
    }
}
