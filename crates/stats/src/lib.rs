//! Statistical primitives for the FBDetect reproduction.
//!
//! This crate implements, from scratch, every statistical technique the
//! FBDetect paper relies on:
//!
//! - descriptive statistics (mean, variance, percentiles, median absolute
//!   deviation) — used throughout the detection pipeline;
//! - CUSUM and Expectation-Maximization change-point detection (§5.2.1);
//! - likelihood-ratio chi-squared validation and Student's t-test (§5.2.1,
//!   Appendix A.2);
//! - Mann-Kendall trend test and Theil-Sen slope estimation (§5.2.2);
//! - Symbolic Aggregate approXimation (SAX) discretization (§5.2.2);
//! - STL seasonal-trend decomposition using Loess and the moving-average
//!   alternative (§5.2.3, §5.3);
//! - autocorrelation for seasonality presence checks (§5.2.3);
//! - dynamic-programming change-point search with normal loss (§5.3);
//! - ordinary least squares and RMSE (§5.3);
//! - Pearson correlation (§5.5.2, §5.6);
//! - discrete Fourier features (§5.5.1);
//! - n-gram TF-IDF and cosine similarity for text features (§5.5.1, §5.6).
//!
//! All routines operate on `&[f64]` slices and return `Result` values; none
//! panic on empty or degenerate input unless documented under `# Panics`.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod acf;
pub mod changepoint;
pub mod cusum;
pub mod descriptive;
pub mod distributions;
pub mod em;
pub mod error;
pub mod fourier;
pub mod hypothesis;
pub mod online;
pub mod prefix;
pub mod regression;
pub mod sax;
pub mod scratch;
pub mod smoothing;
pub mod special;
pub mod stl;
pub mod streaming;
pub mod text;
pub mod trend;

pub use error::StatsError;

/// Convenience alias used by every fallible routine in this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
