//! Seasonal-Trend decomposition using Loess (STL) (§5.2.3, §5.3).
//!
//! The seasonality detector and long-term path both decompose a time series
//! into `seasonal + trend + residual`. This is a from-scratch STL in the
//! spirit of Cleveland et al. (1990): an inner loop alternates cycle-subseries
//! smoothing (seasonal component) with Loess smoothing of the deseasonalized
//! series (trend component), and an optional outer loop downweights outliers
//! by robustness weights derived from the residuals.

use crate::descriptive;
use crate::error::{ensure_finite, ensure_len};
use crate::scratch::ScratchVec;
use crate::{Result, StatsError};

/// A completed STL decomposition; all three components have the input length
/// and satisfy `data[i] = seasonal[i] + trend[i] + residual[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct StlDecomposition {
    /// The periodic component.
    pub seasonal: Vec<f64>,
    /// The low-frequency component.
    pub trend: Vec<f64>,
    /// What remains: `data - seasonal - trend`.
    pub residual: Vec<f64>,
}

impl StlDecomposition {
    /// The deseasonalized series, `trend + residual`.
    pub fn deseasonalized(&self) -> Vec<f64> {
        self.trend
            .iter()
            .zip(&self.residual)
            .map(|(t, r)| t + r)
            .collect()
    }
}

/// STL parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StlConfig {
    /// Seasonal period in samples (e.g. 24 for hourly data with a daily
    /// cycle). Must be at least 2.
    pub period: usize,
    /// Inner-loop iterations (2 suffices with robustness off).
    pub inner_iterations: usize,
    /// Outer robustness iterations (0 disables robustness weighting).
    pub outer_iterations: usize,
    /// Loess bandwidth for the trend as a fraction of the series length,
    /// in `(0, 1]`. Larger values give a smoother trend. Ignored when
    /// `trend_window` is set.
    pub trend_fraction: f64,
    /// Absolute trend Loess window in samples, overriding `trend_fraction`.
    /// The STL paper sizes the trend smoother from the *period* (`n_t` the
    /// smallest odd integer ≥ 1.5·`n_p`), not from the series length: a
    /// fraction-of-length window grows with `n` and both over-smooths and
    /// over-pays on long windows.
    pub trend_window: Option<usize>,
}

impl StlConfig {
    /// A reasonable default for a given period: the STL paper's non-robust
    /// recommendation — two inner iterations, no robustness passes
    /// (n_i = 2, n_o = 0), which converges for well-behaved loss — and the
    /// paper's trend bandwidth, the smallest odd window ≥ 1.5·`period`.
    /// Callers facing heavy outliers opt into robustness by raising
    /// `outer_iterations` explicitly; each pass re-runs the inner loop.
    pub fn for_period(period: usize) -> Self {
        StlConfig {
            period,
            inner_iterations: 2,
            outer_iterations: 0,
            trend_fraction: 0.25,
            trend_window: Some((3 * period).div_ceil(2) | 1),
        }
    }
}

/// Decomposes `data` into seasonal, trend, and residual components.
///
/// Requires at least two full periods of data.
///
/// # Examples
///
/// ```
/// use fbd_stats::stl::{decompose, StlConfig};
/// // A sine seasonal pattern on a slow upward trend.
/// let data: Vec<f64> = (0..96)
///     .map(|i| (i as f64 / 24.0 * std::f64::consts::TAU).sin() + 0.01 * i as f64)
///     .collect();
/// let d = decompose(&data, StlConfig::for_period(24)).unwrap();
/// // The components reconstruct the series exactly.
/// for i in 0..data.len() {
///     let sum = d.seasonal[i] + d.trend[i] + d.residual[i];
///     assert!((sum - data[i]).abs() < 1e-9);
/// }
/// ```
pub fn decompose(data: &[f64], config: StlConfig) -> Result<StlDecomposition> {
    if config.period < 2 {
        return Err(StatsError::InvalidParameter("period must be at least 2"));
    }
    ensure_len(data, config.period * 2)?;
    ensure_finite(data)?;
    if config.trend_window.is_none()
        && !(config.trend_fraction > 0.0 && config.trend_fraction <= 1.0)
    {
        return Err(StatsError::InvalidParameter(
            "trend_fraction must be in (0, 1]",
        ));
    }
    let n = data.len();
    let trend_window = match config.trend_window {
        Some(w) => w.clamp(3, n),
        None => loess_window(n, config.trend_fraction).0,
    };
    let mut seasonal = vec![0.0; n];
    let mut trend = vec![0.0; n];
    let mut robustness = vec![1.0; n];
    // One pooled working buffer serves the detrend, deseasonalize, and
    // residual passes of every iteration.
    let mut work = ScratchVec::zeroed(n);
    let outer = config.outer_iterations + 1;
    for outer_pass in 0..outer {
        for _ in 0..config.inner_iterations.max(1) {
            // Step 1: detrend.
            for (w, (d, t)) in work.iter_mut().zip(data.iter().zip(&trend)) {
                *w = d - t;
            }
            // Step 2: cycle-subseries smoothing -> seasonal estimate.
            cycle_subseries_means(&work, config.period, &robustness, &mut seasonal);
            // Step 3: centre the seasonal component so it has zero mean over
            // each full period (keeps level in the trend, not the seasonal).
            center_seasonal(&mut seasonal, config.period);
            // Step 4: deseasonalize and smooth for the trend.
            for (w, (d, s)) in work.iter_mut().zip(data.iter().zip(&seasonal)) {
                *w = d - s;
            }
            trend = loess_smooth_windowed(&work, trend_window, &robustness)?;
        }
        // Outer loop: recompute robustness weights from residuals.
        if outer_pass + 1 < outer {
            for (w, i) in work.iter_mut().zip(0..n) {
                *w = data[i] - seasonal[i] - trend[i];
            }
            robustness = robustness_weights(&work)?;
        }
    }
    let residual: Vec<f64> = (0..n).map(|i| data[i] - seasonal[i] - trend[i]).collect();
    Ok(StlDecomposition {
        seasonal,
        trend,
        residual,
    })
}

/// Smooths each cycle subseries (all points at the same phase) with a
/// robustness-weighted mean, then broadcasts the smoothed value back.
fn cycle_subseries_means(data: &[f64], period: usize, weights: &[f64], out: &mut [f64]) {
    let mut phase_sum = ScratchVec::zeroed(period);
    let mut phase_weight = ScratchVec::zeroed(period);
    for (i, (&v, &w)) in data.iter().zip(weights).enumerate() {
        phase_sum[i % period] += v * w;
        phase_weight[i % period] += w;
    }
    for (s, w) in phase_sum.iter_mut().zip(phase_weight.iter()) {
        *s = if *w > 0.0 { *s / *w } else { 0.0 };
    }
    for (i, o) in out.iter_mut().enumerate() {
        *o = phase_sum[i % period];
    }
}

/// Removes the per-period mean from the seasonal component.
fn center_seasonal(seasonal: &mut [f64], period: usize) {
    if seasonal.len() < period {
        return;
    }
    let mean: f64 = seasonal[..period].iter().sum::<f64>() / period as f64;
    for v in seasonal.iter_mut() {
        *v -= mean;
    }
}

/// Loess smoothing with a tricube kernel and local linear regression.
///
/// `fraction` selects the bandwidth as a fraction of the series length.
/// `robustness` multiplies the kernel weights (all 1.0 disables it).
///
/// Dispatches between the per-point kernel ([`loess_smooth_naive`],
/// O(n·window)) and an FFT sliding-regression fast path
/// ([`loess_smooth_fft`], O(n log n) for the interior). The choice depends
/// only on `(n, window, weights-all-one)`, so it is deterministic; outputs
/// of the two paths agree to ~1e-9 relative error (pinned by property
/// tests), and boundary points are always evaluated by the exact naive
/// formula.
pub fn loess_smooth(data: &[f64], fraction: f64, robustness: &[f64]) -> Result<Vec<f64>> {
    let (window, _) = loess_window(data.len().max(1), fraction);
    loess_smooth_windowed(data, window, robustness)
}

/// [`loess_smooth`] with an explicit window in samples instead of a
/// fraction of the series length (clamped to `[3, n]`).
pub fn loess_smooth_windowed(data: &[f64], window: usize, robustness: &[f64]) -> Result<Vec<f64>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    if robustness.len() != data.len() {
        return Err(StatsError::InvalidParameter(
            "robustness weights length mismatch",
        ));
    }
    Ok(loess_dispatch(data, window.clamp(3, data.len()), Some(robustness)))
}

/// [`loess_smooth`] with all robustness weights equal to 1.0, without
/// allocating the weight vector. Produces bit-identical output to passing an
/// explicit all-ones slice.
pub fn loess_smooth_uniform(data: &[f64], fraction: f64) -> Result<Vec<f64>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let (window, _) = loess_window(data.len(), fraction);
    Ok(loess_dispatch(data, window, None))
}

/// Reference Loess via the per-point O(n·window) local regression.
///
/// Ground truth for the property tests pinning [`loess_smooth_fft`]; also
/// the faster kernel for short series and narrow windows.
pub fn loess_smooth_naive(data: &[f64], fraction: f64, robustness: &[f64]) -> Result<Vec<f64>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    if robustness.len() != data.len() {
        return Err(StatsError::InvalidParameter(
            "robustness weights length mismatch",
        ));
    }
    let (window, _) = loess_window(data.len(), fraction);
    Ok(loess_naive_core(data, window, Some(robustness)))
}

/// Loess with the FFT sliding-regression interior forced on (regardless of
/// the cost model). Public so tests and benches can pin it against
/// [`loess_smooth_naive`] directly.
pub fn loess_smooth_fft(data: &[f64], fraction: f64, robustness: &[f64]) -> Result<Vec<f64>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    if robustness.len() != data.len() {
        return Err(StatsError::InvalidParameter(
            "robustness weights length mismatch",
        ));
    }
    let (window, _) = loess_window(data.len(), fraction);
    Ok(loess_fft_core(data, window, Some(robustness)))
}

/// Window geometry shared by every Loess path.
fn loess_window(n: usize, fraction: f64) -> (usize, usize) {
    let window = ((fraction * n as f64).ceil() as usize).clamp(3, n);
    (window, window / 2)
}

/// Deterministic cost model for the Loess dispatch. The FFT path costs
/// `ffts` power-of-two transforms of length `m = n.next_power_of_two()`
/// (5 when the weights are uniform — two sliding correlations share the
/// signal spectrum and the weight moments are constants — and 12 otherwise)
/// against `interior·window` multiply-adds for the naive interior. The
/// factor 2 accounts for the heavier per-butterfly arithmetic.
fn loess_fft_pays_off(n: usize, window: usize, uniform: bool) -> bool {
    let interior = n.saturating_sub(window - 1);
    if interior < 2 || window < 8 {
        return false;
    }
    let m = n.next_power_of_two();
    let log_m = m.trailing_zeros() as usize;
    let ffts = if uniform { 5 } else { 12 };
    interior * window > 2 * ffts * m * log_m
}

/// Dispatching core: `robustness = None` means all weights are 1.0.
fn loess_dispatch(data: &[f64], window: usize, robustness: Option<&[f64]>) -> Vec<f64> {
    let n = data.len();
    let one = 1.0f64.to_bits();
    let uniform = robustness.is_none_or(|r| r.iter().all(|w| w.to_bits() == one));
    if loess_fft_pays_off(n, window, uniform) {
        loess_fft_core(data, window, robustness)
    } else {
        loess_naive_core(data, window, robustness)
    }
}

/// The per-point local-regression Loess (previous implementation, kept
/// verbatim modulo the optional weights).
fn loess_naive_core(data: &[f64], window: usize, robustness: Option<&[f64]>) -> Vec<f64> {
    let n = data.len();
    let half = window / 2;
    // The tricube weight of neighbor `j` for point `i` depends only on the
    // offset `j - i` and the window's `max_dist`. Away from the boundaries
    // both are the same for every `i`, so the kernel is computed once and
    // reused; only the `2·half` edge points pay per-point kernel evaluation.
    // The table holds the exact same values the inline expression produced,
    // so the smoothed output is bit-identical.
    let interior_center = half;
    let interior_max_dist = half.max(window - 1 - half).max(1) as f64;
    let mut interior_tri = ScratchVec::with_capacity(window);
    interior_tri.extend((0..window).map(|k| {
        let d = (k as f64 - interior_center as f64).abs() / interior_max_dist;
        (1.0 - d.powi(3)).powi(3).max(0.0)
    }));
    let mut edge_tri = ScratchVec::zeroed(window);
    let mut smoothed = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // The window is index-driven.
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (lo + window).min(n);
        let lo = hi.saturating_sub(window);
        let center = i - lo;
        let max_dist = (center.max(hi - 1 - i)).max(1) as f64;
        // Bit equality is the intent: the cached interior kernel is reused
        // only when it would be recomputed to the exact same weights.
        let reuse = center == interior_center && max_dist.to_bits() == interior_max_dist.to_bits();
        let tri: &[f64] = if reuse {
            &interior_tri
        } else {
            for (k, t) in edge_tri[..hi - lo].iter_mut().enumerate() {
                let d = (k as f64 - center as f64).abs() / max_dist;
                *t = (1.0 - d.powi(3)).powi(3).max(0.0);
            }
            &edge_tri
        };
        smoothed.push(loess_fit_window(data, robustness, tri, lo, hi, i));
    }
    smoothed
}

/// Weighted local-linear fit of `data[lo..hi]` evaluated at `i`, in absolute
/// x-coordinates — the exact arithmetic of the original per-point loop.
fn loess_fit_window(
    data: &[f64],
    robustness: Option<&[f64]>,
    tri: &[f64],
    lo: usize,
    hi: usize,
    i: usize,
) -> f64 {
    let mut sw = 0.0;
    let mut swx = 0.0;
    let mut swy = 0.0;
    let mut swxx = 0.0;
    let mut swxy = 0.0;
    for (k, j) in (lo..hi).enumerate() {
        // Multiplying by an explicit 1.0 when no weights are supplied keeps
        // the float ops (and therefore the bits) identical to the weighted
        // form with an all-ones slice.
        let w = tri[k] * robustness.map_or(1.0, |r| r[j]);
        let x = j as f64;
        sw += w;
        swx += w * x;
        swy += w * data[j];
        swxx += w * x * x;
        swxy += w * x * data[j];
    }
    let denom = sw * swxx - swx * swx;
    if denom.abs() < 1e-12 || !(sw > 0.0) {
        if sw > 0.0 {
            swy / sw
        } else {
            data[i]
        }
    } else {
        let slope = (sw * swxy - swx * swy) / denom;
        let intercept = (swy - slope * swx) / sw;
        intercept + slope * i as f64
    }
}

/// One boundary point evaluated like the naive path (per-point edge kernel,
/// absolute coordinates), with the kernel and fit fused into a single
/// allocation-free pass. The reciprocal of `max_dist` is hoisted out of the
/// loop, so the tricube weights can differ from the naive division form by
/// an ulp — well inside the 1e-9 pin the fast path is held to.
fn loess_point_naive(
    data: &[f64],
    robustness: Option<&[f64]>,
    i: usize,
    window: usize,
    half: usize,
) -> f64 {
    let n = data.len();
    let lo = i.saturating_sub(half);
    let hi = (lo + window).min(n);
    let lo = hi.saturating_sub(window);
    let center = (i - lo) as f64;
    let inv_dist = 1.0 / ((i - lo).max(hi - 1 - i).max(1)) as f64;
    let mut sw = 0.0;
    let mut swx = 0.0;
    let mut swy = 0.0;
    let mut swxx = 0.0;
    let mut swxy = 0.0;
    match robustness {
        None => {
            for (k, j) in (lo..hi).enumerate() {
                let d = (k as f64 - center).abs() * inv_dist;
                // Multiplying by an explicit 1.0 keeps the float ops
                // identical to the weighted form with an all-ones slice.
                let w = (1.0 - d.powi(3)).powi(3).max(0.0) * 1.0;
                let x = j as f64;
                sw += w;
                swx += w * x;
                swy += w * data[j];
                swxx += w * x * x;
                swxy += w * x * data[j];
            }
        }
        Some(r) => {
            for (k, j) in (lo..hi).enumerate() {
                let d = (k as f64 - center).abs() * inv_dist;
                let w = (1.0 - d.powi(3)).powi(3).max(0.0) * r[j];
                let x = j as f64;
                sw += w;
                swx += w * x;
                swy += w * data[j];
                swxx += w * x * x;
                swxy += w * x * data[j];
            }
        }
    }
    let denom = sw * swxx - swx * swx;
    if denom.abs() < 1e-12 || !(sw > 0.0) {
        if sw > 0.0 {
            swy / sw
        } else {
            data[i]
        }
    } else {
        let slope = (sw * swxy - swx * swy) / denom;
        let intercept = (swy - slope * swx) / sw;
        intercept + slope * i as f64
    }
}

/// Mean of the uniform-weight Loess fit over output indices `[lo, hi)`,
/// evaluating only those points with the per-point kernel instead of
/// smoothing the whole series — O((hi−lo)·window) instead of O(n·window) or
/// O(n log n).
///
/// Values agree with the corresponding [`loess_smooth_uniform`] outputs to
/// ~1e-9 relative error (boundary points exactly; interior points may take
/// the FFT path there), so callers comparing the mean against a threshold
/// must keep a guard band and fall back to the full smooth near the
/// decision boundary.
pub fn loess_uniform_range_mean(data: &[f64], fraction: f64, lo: usize, hi: usize) -> Result<f64> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    if lo >= hi || hi > data.len() {
        return Err(StatsError::InvalidParameter(
            "empty or out-of-range index range",
        ));
    }
    let (window, half) = loess_window(data.len(), fraction);
    let mut sum = 0.0;
    for i in lo..hi {
        sum += loess_point_naive(data, None, i, window, half);
    }
    Ok(sum / (hi - lo) as f64)
}

/// FFT sliding-regression Loess core.
///
/// Away from the boundaries the tricube kernel is shift-invariant, so in
/// window-centered coordinates `u = k − half` the five regression sums for
/// every interior point are sliding dot products of fixed kernels
/// (`tri·u^p`, p ∈ {0,1,2}) against the signal (and, with robustness
/// weights, against `r` and `r·y`). Those are batch-evaluated with FFT
/// cross-correlations ([`crate::fourier::sliding_dots`]): 2 correlations
/// when the weights are uniform (the weight moments are constants of the
/// kernel), 5 otherwise. The fit is solved in centered coordinates, where
/// the normal equations are far better conditioned than the absolute-x form
/// (the value at the center is simply the centered intercept). Boundary
/// points keep the exact per-point naive evaluation.
fn loess_fft_core(data: &[f64], window: usize, robustness: Option<&[f64]>) -> Vec<f64> {
    let n = data.len();
    let half = window / 2;
    let interior_max_dist = half.max(window - 1 - half).max(1) as f64;
    let mut tri = ScratchVec::with_capacity(window);
    tri.extend((0..window).map(|k| {
        let d = (k as f64 - half as f64).abs() / interior_max_dist;
        (1.0 - d.powi(3)).powi(3).max(0.0)
    }));
    let mut k1 = ScratchVec::with_capacity(window);
    k1.extend(tri.iter().enumerate().map(|(k, &t)| t * (k as f64 - half as f64)));
    let mut k2 = ScratchVec::with_capacity(window);
    k2.extend(k1.iter().enumerate().map(|(k, &t)| t * (k as f64 - half as f64)));
    let one = 1.0f64.to_bits();
    let uniform = robustness.is_none_or(|r| r.iter().all(|w| w.to_bits() == one));
    // Interior points i ∈ [half, n − window + half]: window start j = i −
    // half runs over 0..=n − window, exactly the alignments sliding_dots
    // produces.
    let first = half;
    let last = n - window + half;
    let mut smoothed = vec![0.0; n];
    for i in (0..first).chain(last + 1..n) {
        smoothed[i] = loess_point_naive(data, robustness, i, window, half);
    }
    let fit = |sw: f64, swu: f64, swuu: f64, swy: f64, swuy: f64, y_i: f64| -> f64 {
        let denom = sw * swuu - swu * swu;
        if denom.abs() < 1e-12 || !(sw > 0.0) {
            if sw > 0.0 {
                swy / sw
            } else {
                y_i
            }
        } else {
            let slope = (sw * swuy - swu * swy) / denom;
            (swy - slope * swu) / sw
        }
    };
    if uniform {
        let sw: f64 = tri.iter().sum();
        let swu: f64 = k1.iter().sum();
        let swuu: f64 = k2.iter().sum();
        let dots = crate::fourier::sliding_dots(data, &[&tri, &k1]);
        for (j, (&swy, &swuy)) in dots[0].iter().zip(&dots[1]).enumerate() {
            let i = j + half;
            smoothed[i] = fit(sw, swu, swuu, swy, swuy, data[i]);
        }
    } else {
        let r = robustness.unwrap_or(&[]);
        let mut ry = ScratchVec::with_capacity(n);
        ry.extend(r.iter().zip(data).map(|(w, y)| w * y));
        let dots_r = crate::fourier::sliding_dots(r, &[&tri, &k1, &k2]);
        let dots_ry = crate::fourier::sliding_dots(&ry, &[&tri, &k1]);
        for j in 0..=n - window {
            let i = j + half;
            smoothed[i] = fit(
                dots_r[0][j],
                dots_r[1][j],
                dots_r[2][j],
                dots_ry[0][j],
                dots_ry[1][j],
                data[i],
            );
        }
    }
    smoothed
}

/// Bisquare robustness weights from residuals: `(1 - (|r|/6·MAD)²)²`,
/// clamped to zero outside.
fn robustness_weights(residual: &[f64]) -> Result<Vec<f64>> {
    let mut abs = ScratchVec::with_capacity(residual.len());
    abs.extend(residual.iter().map(|r| r.abs()));
    let s = descriptive::median(&abs)?.max(1e-12) * 6.0;
    Ok(residual
        .iter()
        .map(|r| {
            let u = (r.abs() / s).min(1.0);
            (1.0 - u * u).powi(2)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(n: usize, period: usize, amp: f64, trend_per_step: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                amp * (i as f64 / period as f64 * std::f64::consts::TAU).sin()
                    + trend_per_step * i as f64
            })
            .collect()
    }

    #[test]
    fn components_sum_to_input() {
        let data = seasonal_series(120, 24, 2.0, 0.05);
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        #[allow(clippy::needless_range_loop)]
        for i in 0..data.len() {
            let sum = d.seasonal[i] + d.trend[i] + d.residual[i];
            assert!((sum - data[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_seasonal_amplitude() {
        let data = seasonal_series(240, 24, 3.0, 0.0);
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        let max_seasonal = d.seasonal.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (max_seasonal - 3.0).abs() < 0.5,
            "max seasonal = {max_seasonal}"
        );
    }

    #[test]
    fn trend_follows_linear_drift() {
        let data = seasonal_series(240, 24, 1.0, 0.1);
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        // The trend at the end should be about 0.1 * 239 = 23.9, within loess
        // edge-effect tolerance.
        let end_trend = *d.trend.last().unwrap();
        assert!((end_trend - 23.9).abs() < 3.0, "end trend = {end_trend}");
        // And the trend should be increasing overall.
        assert!(d.trend.last().unwrap() > &(d.trend[0] + 15.0));
    }

    #[test]
    fn deseasonalized_removes_cycle() {
        let data = seasonal_series(240, 24, 5.0, 0.0);
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        let des = d.deseasonalized();
        let spread = des.iter().cloned().fold(f64::MIN, f64::max)
            - des.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 2.0, "deseasonalized spread = {spread}");
    }

    #[test]
    fn step_survives_into_deseasonalized() {
        // A seasonal pattern with a mid-series +2 step: the step must land in
        // trend+residual, not be absorbed by the seasonal component.
        let mut data = seasonal_series(240, 24, 1.0, 0.0);
        for v in data.iter_mut().skip(120) {
            *v += 2.0;
        }
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        let des = d.deseasonalized();
        let before: f64 = des[..100].iter().sum::<f64>() / 100.0;
        let after: f64 = des[140..].iter().sum::<f64>() / (des.len() - 140) as f64;
        assert!(
            (after - before - 2.0).abs() < 0.5,
            "shift = {}",
            after - before
        );
    }

    #[test]
    fn robustness_downweights_outlier() {
        let mut data = seasonal_series(240, 24, 1.0, 0.0);
        data[100] += 50.0;
        let cfg = StlConfig {
            outer_iterations: 2,
            ..StlConfig::for_period(24)
        };
        let d = decompose(&data, cfg).unwrap();
        // The spike should be in the residual, not smeared into the trend.
        assert!(d.residual[100] > 30.0);
        assert!(d.trend[100] < 10.0);
    }

    #[test]
    fn rejects_short_series_and_bad_period() {
        let data = vec![1.0; 10];
        assert!(decompose(&data, StlConfig::for_period(24)).is_err());
        assert!(decompose(&data, StlConfig::for_period(1)).is_err());
    }

    #[test]
    fn loess_reproduces_line() {
        let data: Vec<f64> = (0..50).map(|i| 2.0 + 0.3 * i as f64).collect();
        let w = vec![1.0; 50];
        let s = loess_smooth(&data, 0.3, &w).unwrap();
        for (a, b) in s.iter().zip(&data) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    fn pseudo_series(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z >> 33) % 10_000) as f64 / 1_000.0 - 5.0
            })
            .collect()
    }

    #[test]
    fn fft_loess_matches_naive_uniform_weights() {
        for &(n, fraction) in &[(64usize, 0.3f64), (240, 0.25), (900, 0.3), (900, 0.25)] {
            let data = pseudo_series(n, n as u64);
            let w = vec![1.0; n];
            let fast = loess_smooth_fft(&data, fraction, &w).unwrap();
            let slow = loess_smooth_naive(&data, fraction, &w).unwrap();
            let scale = data.iter().fold(1.0f64, |a, v| a.max(v.abs()));
            for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    (f - s).abs() < 1e-9 * scale,
                    "n={n} frac={fraction} i={i}: {f} vs {s}"
                );
            }
        }
    }

    #[test]
    fn fft_loess_matches_naive_robustness_weights() {
        let n = 300;
        let data = pseudo_series(n, 11);
        let w: Vec<f64> = (0..n).map(|i| 0.25 + 0.75 * ((i % 7) as f64 / 7.0)).collect();
        let fast = loess_smooth_fft(&data, 0.3, &w).unwrap();
        let slow = loess_smooth_naive(&data, 0.3, &w).unwrap();
        let scale = data.iter().fold(1.0f64, |a, v| a.max(v.abs()));
        for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
            assert!((f - s).abs() < 1e-9 * scale, "i={i}: {f} vs {s}");
        }
    }

    #[test]
    fn loess_uniform_matches_explicit_ones() {
        // Short series: the dispatcher picks the naive path, which must be
        // bit-identical with and without the explicit all-ones slice.
        let data = pseudo_series(120, 5);
        let ones = vec![1.0; 120];
        let explicit = loess_smooth(&data, 0.3, &ones).unwrap();
        let implicit = loess_smooth_uniform(&data, 0.3).unwrap();
        for (a, b) in explicit.iter().zip(&implicit) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn loess_dispatch_is_deterministic_and_close_to_naive() {
        // n=900 at fraction 0.3 with uniform weights engages the FFT path.
        let n = 900;
        let data = pseudo_series(n, 23);
        assert!(super::loess_fft_pays_off(n, 270, true));
        assert!(!super::loess_fft_pays_off(n, 270, false));
        let ones = vec![1.0; n];
        let a = loess_smooth(&data, 0.3, &ones).unwrap();
        let b = loess_smooth(&data, 0.3, &ones).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let slow = loess_smooth_naive(&data, 0.3, &ones).unwrap();
        let scale = data.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
        for (x, s) in a.iter().zip(&slow) {
            assert!((x - s).abs() < 1e-9 * scale);
        }
    }
}
