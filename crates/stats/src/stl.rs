//! Seasonal-Trend decomposition using Loess (STL) (§5.2.3, §5.3).
//!
//! The seasonality detector and long-term path both decompose a time series
//! into `seasonal + trend + residual`. This is a from-scratch STL in the
//! spirit of Cleveland et al. (1990): an inner loop alternates cycle-subseries
//! smoothing (seasonal component) with Loess smoothing of the deseasonalized
//! series (trend component), and an optional outer loop downweights outliers
//! by robustness weights derived from the residuals.

use crate::descriptive;
use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// A completed STL decomposition; all three components have the input length
/// and satisfy `data[i] = seasonal[i] + trend[i] + residual[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct StlDecomposition {
    /// The periodic component.
    pub seasonal: Vec<f64>,
    /// The low-frequency component.
    pub trend: Vec<f64>,
    /// What remains: `data - seasonal - trend`.
    pub residual: Vec<f64>,
}

impl StlDecomposition {
    /// The deseasonalized series, `trend + residual`.
    pub fn deseasonalized(&self) -> Vec<f64> {
        self.trend
            .iter()
            .zip(&self.residual)
            .map(|(t, r)| t + r)
            .collect()
    }
}

/// STL parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StlConfig {
    /// Seasonal period in samples (e.g. 24 for hourly data with a daily
    /// cycle). Must be at least 2.
    pub period: usize,
    /// Inner-loop iterations (2 suffices with robustness off).
    pub inner_iterations: usize,
    /// Outer robustness iterations (0 disables robustness weighting).
    pub outer_iterations: usize,
    /// Loess bandwidth for the trend as a fraction of the series length,
    /// in `(0, 1]`. Larger values give a smoother trend.
    pub trend_fraction: f64,
}

impl StlConfig {
    /// A reasonable default for a given period: two inner iterations, one
    /// robustness pass, and a trend bandwidth of 1.5 periods (in the spirit
    /// of the STL paper's `n_t ≥ 1.5 n_p` guidance).
    pub fn for_period(period: usize) -> Self {
        StlConfig {
            period,
            inner_iterations: 2,
            outer_iterations: 1,
            trend_fraction: 0.25,
        }
    }
}

/// Decomposes `data` into seasonal, trend, and residual components.
///
/// Requires at least two full periods of data.
///
/// # Examples
///
/// ```
/// use fbd_stats::stl::{decompose, StlConfig};
/// // A sine seasonal pattern on a slow upward trend.
/// let data: Vec<f64> = (0..96)
///     .map(|i| (i as f64 / 24.0 * std::f64::consts::TAU).sin() + 0.01 * i as f64)
///     .collect();
/// let d = decompose(&data, StlConfig::for_period(24)).unwrap();
/// // The components reconstruct the series exactly.
/// for i in 0..data.len() {
///     let sum = d.seasonal[i] + d.trend[i] + d.residual[i];
///     assert!((sum - data[i]).abs() < 1e-9);
/// }
/// ```
pub fn decompose(data: &[f64], config: StlConfig) -> Result<StlDecomposition> {
    if config.period < 2 {
        return Err(StatsError::InvalidParameter("period must be at least 2"));
    }
    ensure_len(data, config.period * 2)?;
    ensure_finite(data)?;
    if !(config.trend_fraction > 0.0 && config.trend_fraction <= 1.0) {
        return Err(StatsError::InvalidParameter(
            "trend_fraction must be in (0, 1]",
        ));
    }
    let n = data.len();
    let mut seasonal = vec![0.0; n];
    let mut trend = vec![0.0; n];
    let mut robustness = vec![1.0; n];
    let outer = config.outer_iterations + 1;
    for outer_pass in 0..outer {
        for _ in 0..config.inner_iterations.max(1) {
            // Step 1: detrend.
            let detrended: Vec<f64> = data.iter().zip(&trend).map(|(d, t)| d - t).collect();
            // Step 2: cycle-subseries smoothing -> seasonal estimate.
            seasonal = cycle_subseries_means(&detrended, config.period, &robustness);
            // Step 3: centre the seasonal component so it has zero mean over
            // each full period (keeps level in the trend, not the seasonal).
            center_seasonal(&mut seasonal, config.period);
            // Step 4: deseasonalize and smooth for the trend.
            let deseasonalized: Vec<f64> = data.iter().zip(&seasonal).map(|(d, s)| d - s).collect();
            trend = loess_smooth(&deseasonalized, config.trend_fraction, &robustness)?;
        }
        // Outer loop: recompute robustness weights from residuals.
        if outer_pass + 1 < outer {
            let residual: Vec<f64> = (0..n).map(|i| data[i] - seasonal[i] - trend[i]).collect();
            robustness = robustness_weights(&residual)?;
        }
    }
    let residual: Vec<f64> = (0..n).map(|i| data[i] - seasonal[i] - trend[i]).collect();
    Ok(StlDecomposition {
        seasonal,
        trend,
        residual,
    })
}

/// Smooths each cycle subseries (all points at the same phase) with a
/// robustness-weighted mean, then broadcasts the smoothed value back.
fn cycle_subseries_means(data: &[f64], period: usize, weights: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut phase_sum = vec![0.0; period];
    let mut phase_weight = vec![0.0; period];
    for (i, (&v, &w)) in data.iter().zip(weights).enumerate() {
        phase_sum[i % period] += v * w;
        phase_weight[i % period] += w;
    }
    let phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_weight)
        .map(|(s, w)| if *w > 0.0 { s / w } else { 0.0 })
        .collect();
    (0..n).map(|i| phase_mean[i % period]).collect()
}

/// Removes the per-period mean from the seasonal component.
fn center_seasonal(seasonal: &mut [f64], period: usize) {
    if seasonal.len() < period {
        return;
    }
    let mean: f64 = seasonal[..period].iter().sum::<f64>() / period as f64;
    for v in seasonal.iter_mut() {
        *v -= mean;
    }
}

/// Loess smoothing with a tricube kernel and local linear regression.
///
/// `fraction` selects the bandwidth as a fraction of the series length.
/// `robustness` multiplies the kernel weights (all 1.0 disables it).
pub fn loess_smooth(data: &[f64], fraction: f64, robustness: &[f64]) -> Result<Vec<f64>> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    if robustness.len() != data.len() {
        return Err(StatsError::InvalidParameter(
            "robustness weights length mismatch",
        ));
    }
    let n = data.len();
    let window = ((fraction * n as f64).ceil() as usize).clamp(3, n);
    let half = window / 2;
    // The tricube weight of neighbor `j` for point `i` depends only on the
    // offset `j - i` and the window's `max_dist`. Away from the boundaries
    // both are the same for every `i`, so the kernel is computed once and
    // reused; only the `2·half` edge points pay per-point kernel evaluation.
    // The table holds the exact same values the inline expression produced,
    // so the smoothed output is bit-identical.
    let interior_center = half;
    let interior_max_dist = half.max(window - 1 - half).max(1) as f64;
    let interior_tri: Vec<f64> = (0..window)
        .map(|k| {
            let d = (k as f64 - interior_center as f64).abs() / interior_max_dist;
            (1.0 - d.powi(3)).powi(3).max(0.0)
        })
        .collect();
    let mut edge_tri = vec![0.0; window];
    let mut smoothed = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // The window is index-driven.
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (lo + window).min(n);
        let lo = hi.saturating_sub(window);
        let center = i - lo;
        let max_dist = (center.max(hi - 1 - i)).max(1) as f64;
        // Bit equality is the intent: the cached interior kernel is reused
        // only when it would be recomputed to the exact same weights.
        let reuse = center == interior_center && max_dist.to_bits() == interior_max_dist.to_bits();
        let tri: &[f64] = if reuse {
            &interior_tri
        } else {
            for (k, t) in edge_tri[..hi - lo].iter_mut().enumerate() {
                let d = (k as f64 - center as f64).abs() / max_dist;
                *t = (1.0 - d.powi(3)).powi(3).max(0.0);
            }
            &edge_tri
        };
        let mut sw = 0.0;
        let mut swx = 0.0;
        let mut swy = 0.0;
        let mut swxx = 0.0;
        let mut swxy = 0.0;
        for (k, j) in (lo..hi).enumerate() {
            let w = tri[k] * robustness[j];
            let x = j as f64;
            sw += w;
            swx += w * x;
            swy += w * data[j];
            swxx += w * x * x;
            swxy += w * x * data[j];
        }
        let denom = sw * swxx - swx * swx;
        let value = if denom.abs() < 1e-12 || !(sw > 0.0) {
            if sw > 0.0 {
                swy / sw
            } else {
                data[i]
            }
        } else {
            let slope = (sw * swxy - swx * swy) / denom;
            let intercept = (swy - slope * swx) / sw;
            intercept + slope * i as f64
        };
        smoothed.push(value);
    }
    Ok(smoothed)
}

/// Bisquare robustness weights from residuals: `(1 - (|r|/6·MAD)²)²`,
/// clamped to zero outside.
fn robustness_weights(residual: &[f64]) -> Result<Vec<f64>> {
    let abs: Vec<f64> = residual.iter().map(|r| r.abs()).collect();
    let s = descriptive::median(&abs)?.max(1e-12) * 6.0;
    Ok(residual
        .iter()
        .map(|r| {
            let u = (r.abs() / s).min(1.0);
            (1.0 - u * u).powi(2)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(n: usize, period: usize, amp: f64, trend_per_step: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                amp * (i as f64 / period as f64 * std::f64::consts::TAU).sin()
                    + trend_per_step * i as f64
            })
            .collect()
    }

    #[test]
    fn components_sum_to_input() {
        let data = seasonal_series(120, 24, 2.0, 0.05);
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        #[allow(clippy::needless_range_loop)]
        for i in 0..data.len() {
            let sum = d.seasonal[i] + d.trend[i] + d.residual[i];
            assert!((sum - data[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_seasonal_amplitude() {
        let data = seasonal_series(240, 24, 3.0, 0.0);
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        let max_seasonal = d.seasonal.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (max_seasonal - 3.0).abs() < 0.5,
            "max seasonal = {max_seasonal}"
        );
    }

    #[test]
    fn trend_follows_linear_drift() {
        let data = seasonal_series(240, 24, 1.0, 0.1);
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        // The trend at the end should be about 0.1 * 239 = 23.9, within loess
        // edge-effect tolerance.
        let end_trend = *d.trend.last().unwrap();
        assert!((end_trend - 23.9).abs() < 3.0, "end trend = {end_trend}");
        // And the trend should be increasing overall.
        assert!(d.trend.last().unwrap() > &(d.trend[0] + 15.0));
    }

    #[test]
    fn deseasonalized_removes_cycle() {
        let data = seasonal_series(240, 24, 5.0, 0.0);
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        let des = d.deseasonalized();
        let spread = des.iter().cloned().fold(f64::MIN, f64::max)
            - des.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 2.0, "deseasonalized spread = {spread}");
    }

    #[test]
    fn step_survives_into_deseasonalized() {
        // A seasonal pattern with a mid-series +2 step: the step must land in
        // trend+residual, not be absorbed by the seasonal component.
        let mut data = seasonal_series(240, 24, 1.0, 0.0);
        for v in data.iter_mut().skip(120) {
            *v += 2.0;
        }
        let d = decompose(&data, StlConfig::for_period(24)).unwrap();
        let des = d.deseasonalized();
        let before: f64 = des[..100].iter().sum::<f64>() / 100.0;
        let after: f64 = des[140..].iter().sum::<f64>() / (des.len() - 140) as f64;
        assert!(
            (after - before - 2.0).abs() < 0.5,
            "shift = {}",
            after - before
        );
    }

    #[test]
    fn robustness_downweights_outlier() {
        let mut data = seasonal_series(240, 24, 1.0, 0.0);
        data[100] += 50.0;
        let cfg = StlConfig {
            outer_iterations: 2,
            ..StlConfig::for_period(24)
        };
        let d = decompose(&data, cfg).unwrap();
        // The spike should be in the residual, not smeared into the trend.
        assert!(d.residual[100] > 30.0);
        assert!(d.trend[100] < 10.0);
    }

    #[test]
    fn rejects_short_series_and_bad_period() {
        let data = vec![1.0; 10];
        assert!(decompose(&data, StlConfig::for_period(24)).is_err());
        assert!(decompose(&data, StlConfig::for_period(1)).is_err());
    }

    #[test]
    fn loess_reproduces_line() {
        let data: Vec<f64> = (0..50).map(|i| 2.0 + 0.3 * i as f64).collect();
        let w = vec![1.0; 50];
        let s = loess_smooth(&data, 0.3, &w).unwrap();
        for (a, b) in s.iter().zip(&data) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
