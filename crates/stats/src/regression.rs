//! Ordinary least squares, RMSE, and Pearson correlation.
//!
//! The long-term detector (§5.3) fits a linear model to the normalized trend
//! and uses the RMSE to decide between "gradual change from the start" and
//! "locate a change point by dynamic programming". Pearson correlation is a
//! PairwiseDedup feature (§5.5.2) and a root-cause factor (§5.6).

use crate::error::{ensure_finite, ensure_len};
use crate::{Result, StatsError};

/// An ordinary-least-squares line fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Root mean square error of the residuals.
    pub rmse: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl LinearFit {
    /// The fitted value at position `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits a least-squares line to equally spaced samples (x = index).
///
/// # Examples
///
/// ```
/// let data: Vec<f64> = (0..10).map(|i| 1.0 + 2.0 * i as f64).collect();
/// let fit = fbd_stats::regression::linear_fit(&data).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!(fit.rmse < 1e-12);
/// ```
pub fn linear_fit(data: &[f64]) -> Result<LinearFit> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let n = data.len() as f64;
    let sx: f64 = (0..data.len()).map(|i| i as f64).sum();
    let sy: f64 = data.iter().sum();
    let sxx: f64 = (0..data.len()).map(|i| (i * i) as f64).sum();
    let sxy: f64 = data.iter().enumerate().map(|(i, &y)| i as f64 * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return Err(StatsError::Degenerate("singular design matrix"));
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (i, &y) in data.iter().enumerate() {
        let pred = intercept + slope * i as f64;
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let rmse = (ss_res / n).sqrt();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Ok(LinearFit {
        slope,
        intercept,
        rmse,
        r_squared,
    })
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns an error when either series has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64> {
    ensure_len(a, 2)?;
    ensure_len(b, 2)?;
    ensure_finite(a)?;
    ensure_finite(b)?;
    if a.len() != b.len() {
        return Err(StatsError::InvalidParameter(
            "series must have equal length",
        ));
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if !(va > 0.0 && vb > 0.0) {
        return Err(StatsError::Degenerate("zero variance in correlation"));
    }
    Ok(cov / (va * vb).sqrt())
}

/// Pearson correlation between two series that may differ in length: the
/// longer one is truncated at the tail. Convenient for correlating a
/// regression window against a root-cause-candidate metric (§5.6).
pub fn pearson_aligned(a: &[f64], b: &[f64]) -> Result<f64> {
    let n = a.len().min(b.len());
    pearson(&a[..n], &b[..n])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let data: Vec<f64> = (0..20).map(|i| -3.0 + 0.7 * i as f64).collect();
        let fit = linear_fit(&data).unwrap();
        assert!((fit.slope - 0.7).abs() < 1e-12);
        assert!((fit.intercept + 3.0).abs() < 1e-12);
        assert!(fit.rmse < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn step_has_high_rmse_relative_to_line() {
        let mut step = vec![0.0; 50];
        step.extend(vec![1.0; 50]);
        let line: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        let fit_step = linear_fit(&step).unwrap();
        let fit_line = linear_fit(&line).unwrap();
        assert!(fit_step.rmse > 10.0 * fit_line.rmse.max(1e-12));
    }

    #[test]
    fn flat_series_zero_slope() {
        let data = vec![5.0; 10];
        let fit = linear_fit(&data).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let c: Vec<f64> = (0..10).map(|i| -(i as f64)).collect();
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let a: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i / 2) % 2) as f64).collect();
        assert!(pearson(&a, &b).unwrap().abs() < 0.1);
    }

    #[test]
    fn pearson_requires_equal_length() {
        assert!(pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_err());
        // The aligned variant truncates instead.
        assert!(pearson_aligned(&[1.0, 2.0, 3.0], &[2.0, 4.0]).is_ok());
    }

    #[test]
    fn pearson_zero_variance_errors() {
        assert!(matches!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Degenerate(_))
        ));
    }

    #[test]
    fn r_squared_between_zero_and_one_on_noise() {
        let data: Vec<f64> = (0..60)
            .map(|i| ((i * 48271) % 101) as f64 / 101.0)
            .collect();
        let fit = linear_fit(&data).unwrap();
        assert!((0.0..=1.0).contains(&fit.r_squared.max(0.0)));
    }
}
