//! Table 3: effectiveness of individual techniques in filtering out
//! spurious change points.
//!
//! Simulates a scaled-down "month" of monitoring: a large population of
//! series dominated by transient issues (the paper's environment, where
//! 99.7% of change points are transient), plus seasonal series, clustered
//! true regressions across correlated subroutines and metrics, cost-shift
//! pairs, and sub-threshold shifts. The pipeline runs over two overlapping
//! scans (exercising SameRegressionMerger) and the per-stage funnel is
//! printed in the paper's "1/x" reduction format.
//!
//! Scale with `SCALE=4 cargo run --release -p fbd-bench --bin table3_funnel`
//! (default SCALE=1 ≈ 2,000 series).

use fbd_bench::{reduction, render_table, CADENCE};
use fbd_fleet::seasonality::SeasonalProfile;
use fbd_fleet::spec::{Event, SeriesSpec};
use fbd_tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};
use fbdetect_core::cost_shift::{CostDomainProvider, CustomDomain};
use fbdetect_core::types::FunnelCounters;
use fbdetect_core::{DetectorConfig, Pipeline, ScanContext, Threshold};

const LEN: usize = 900;

fn windows() -> WindowConfig {
    WindowConfig {
        historic: 600 * CADENCE,
        analysis: 200 * CADENCE,
        extended: 100 * CADENCE,
        rerun_interval: 100 * CADENCE,
    }
}

struct Population {
    store: TsdbStore,
    ids: Vec<SeriesId>,
    shift_pairs: Vec<(String, String)>,
}

/// Builds the short-term scan population.
fn build_short_term(scale: usize) -> Population {
    let store = TsdbStore::new();
    let mut ids = Vec::new();
    let mut shift_pairs = Vec::new();
    let put = |store: &TsdbStore, ids: &mut Vec<SeriesId>, name: String, metric, values: &[f64]| {
        let id = SeriesId::new("FrontFaaS", metric, name);
        store.insert_series(id.clone(), TimeSeries::from_values(0, CADENCE, values));
        ids.push(id);
    };
    let mut seed = 0u64;
    let mut next_seed = || {
        seed += 1;
        seed
    };
    // Transient-dominated background: dips and spikes at varied offsets in
    // the analysis window, recovering before the series end.
    for i in 0..2400 * scale {
        let at = 610 + (i * 7) % 70;
        let duration = 15 + (i * 13) % 65;
        let delta = if i % 2 == 0 { 0.4 } else { -0.4 } * (1.0 + (i % 5) as f64 * 0.2);
        let spec = SeriesSpec::flat(LEN, 1.0, 0.02).with_event(Event::Transient {
            at,
            duration,
            delta,
        });
        put(
            &store,
            &mut ids,
            format!("transient{i:05}"),
            MetricKind::GCpu,
            &spec.generate(next_seed()).unwrap(),
        );
    }
    // Plain noise.
    for i in 0..500 * scale {
        let spec = SeriesSpec::flat(LEN, 1.0, 0.02);
        put(
            &store,
            &mut ids,
            format!("noise{i:05}"),
            MetricKind::GCpu,
            &spec.generate(next_seed()).unwrap(),
        );
    }
    // Seasonal series (hourly cadence spans a 24-sample daily cycle here).
    for i in 0..120 * scale {
        let mut spec = SeriesSpec::flat(LEN, 1.0, 0.01).with_seasonality(SeasonalProfile {
            diurnal_amplitude: 0.10 + (i % 4) as f64 * 0.03,
            weekly_amplitude: 0.0,
            phase: i as u64 * 1_800,
        });
        spec.interval = 3_600;
        put(
            &store,
            &mut ids,
            format!("seasonal{i:05}"),
            MetricKind::GCpu,
            &spec.generate(next_seed()).unwrap(),
        );
    }
    // Clustered true regressions: each cluster = one root cause regressing
    // several callers of one subroutine plus a correlated latency metric.
    // Distinct per-cluster name roots keep unrelated clusters textually
    // dissimilar, as distinct subsystems are in production.
    const MODULES: [&str; 10] = [
        "render",
        "feed",
        "adserve",
        "authn",
        "cachelayer",
        "dbquery",
        "diskio",
        "network",
        "gcwork",
        "rpcstack",
    ];
    for c in 0..10 * scale {
        let at = 660 + (c * 11) % 60;
        let module = MODULES[c % MODULES.len()];
        for member in 0..6 {
            let spec = SeriesSpec::flat(LEN, 1.0, 0.02).with_event(Event::Step { at, delta: 0.3 });
            put(
                &store,
                &mut ids,
                format!("{module}{c:03}::caller{member}::{module}_hot"),
                MetricKind::GCpu,
                &spec.generate(next_seed()).unwrap(),
            );
        }
        let spec = SeriesSpec::flat(LEN, 5.0, 0.1).with_event(Event::Step { at, delta: 1.5 });
        put(
            &store,
            &mut ids,
            format!("{module}{c:03}::{module}_hot"),
            MetricKind::Latency,
            &spec.generate(next_seed()).unwrap(),
        );
    }
    // Cost-shift pairs: destination steps up, source steps down equally.
    for p in 0..20 * scale {
        let at = 650 + (p * 17) % 80;
        let up = SeriesSpec::flat(LEN, 1.0, 0.01).with_event(Event::Step { at, delta: 0.25 });
        let down = SeriesSpec::flat(LEN, 1.0, 0.01).with_event(Event::Step { at, delta: -0.25 });
        let dest = format!("shift{p:03}::dest");
        let src = format!("shift{p:03}::src");
        put(
            &store,
            &mut ids,
            dest.clone(),
            MetricKind::GCpu,
            &up.generate(next_seed()).unwrap(),
        );
        put(
            &store,
            &mut ids,
            src.clone(),
            MetricKind::GCpu,
            &down.generate(next_seed()).unwrap(),
        );
        shift_pairs.push((dest, src));
    }
    // Sub-threshold shifts: real but too small to matter.
    for i in 0..30 * scale {
        let spec = SeriesSpec::flat(LEN, 1.0, 0.005).with_event(Event::Step {
            at: 660 + (i * 5) % 60,
            delta: 0.02,
        });
        put(
            &store,
            &mut ids,
            format!("tiny{i:05}"),
            MetricKind::GCpu,
            &spec.generate(next_seed()).unwrap(),
        );
    }
    Population {
        store,
        ids,
        shift_pairs,
    }
}

/// Builds the long-term scan population: gradual ramps plus background.
fn build_long_term(scale: usize) -> Population {
    let store = TsdbStore::new();
    let mut ids = Vec::new();
    let mut seed = 10_000u64;
    let mut next_seed = || {
        seed += 1;
        seed
    };
    let mut put = |name: String, values: &[f64]| {
        let id = SeriesId::new("FrontFaaS", MetricKind::GCpu, name);
        store.insert_series(id.clone(), TimeSeries::from_values(0, CADENCE, values));
        ids.push(id);
    };
    for i in 0..30 * scale {
        let spec = SeriesSpec::flat(LEN, 1.0, 0.02).with_event(Event::Ramp {
            start: 400,
            end: 800,
            delta: 0.3 + (i % 4) as f64 * 0.1,
        });
        put(format!("drift{i:04}"), &spec.generate(next_seed()).unwrap());
    }
    for i in 0..60 * scale {
        let spec = SeriesSpec::flat(LEN, 1.0, 0.02);
        put(format!("noise{i:04}"), &spec.generate(next_seed()).unwrap());
    }
    Population {
        store,
        ids,
        shift_pairs: Vec::new(),
    }
}

fn run(population: &Population, config: DetectorConfig, scans: &[u64]) -> (FunnelCounters, usize) {
    let mut pipeline = Pipeline::new(config).unwrap();
    // Cost domain: each shift pair forms its own domain.
    let pairs = population.shift_pairs.clone();
    let domain = CustomDomain {
        label: "shift-pairs".to_string(),
        f: move |subroutine: &str| {
            pairs
                .iter()
                .find(|(d, s)| d == subroutine || s == subroutine)
                .map(|(d, s)| vec![d.clone(), s.clone()])
        },
    };
    let providers: Vec<&dyn CostDomainProvider> = vec![&domain];
    let context = ScanContext {
        domain_providers: providers,
        ..Default::default()
    };
    let mut funnel = FunnelCounters::default();
    let mut reports = 0;
    for &now in scans {
        let out = pipeline
            .scan(&population.store, &population.ids, now, &context)
            .unwrap();
        funnel.accumulate(&out.funnel);
        reports += out.reports.len();
    }
    (funnel, reports)
}

fn main() {
    let scale: usize = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    println!("Table 3 funnel, SCALE={scale}\n");
    let scan_times = [
        (LEN as u64 - 100) * CADENCE,
        LEN as u64 * CADENCE, // Overlapping re-scan.
    ];

    // Short-term path.
    let population = build_short_term(scale);
    println!(
        "short-term population: {} series, {} scans",
        population.ids.len(),
        scan_times.len()
    );
    let mut cfg = DetectorConfig::new("FrontFaaS short", windows(), Threshold::Absolute(0.1));
    cfg.long_term_enabled = false;
    let (short, short_reports) = run(&population, cfg, &scan_times);

    // Long-term path.
    let long_population = build_long_term(scale);
    println!(
        "long-term population : {} series, {} scans",
        long_population.ids.len(),
        scan_times.len()
    );
    let mut cfg = DetectorConfig::new("FrontFaaS long", windows(), Threshold::Absolute(0.1));
    cfg.long_term_enabled = true;
    // Long-term only: raise the short-term LRT significance to zero effect
    // is not possible; instead filter short-term candidates via threshold on
    // the long population (ramps rarely form sharp change points anyway).
    let (long, long_reports) = run(&long_population, cfg, &scan_times);

    let rows = vec![
        vec![
            "# change points detected".to_string(),
            format!("{}", short.change_points),
            format!("{}", long.change_points),
        ],
        vec![
            "after went-away detection".to_string(),
            reduction(short.change_points, short.after_went_away),
            "——".to_string(),
        ],
        vec![
            "after seasonality detection".to_string(),
            reduction(short.change_points, short.after_seasonality),
            "——".to_string(),
        ],
        vec![
            "after threshold filtering".to_string(),
            reduction(short.change_points, short.after_threshold),
            reduction(long.change_points, long.after_threshold),
        ],
        vec![
            "after SameRegressionMerger".to_string(),
            reduction(short.change_points, short.after_same_merger),
            reduction(long.change_points, long.after_same_merger),
        ],
        vec![
            "after SOMDedup".to_string(),
            reduction(short.change_points, short.after_som_dedup),
            reduction(long.change_points, long.after_som_dedup),
        ],
        vec![
            "after cost-shift analysis".to_string(),
            reduction(short.change_points, short.after_cost_shift),
            reduction(long.change_points, long.after_cost_shift),
        ],
        vec![
            "after PairwiseDedup".to_string(),
            reduction(short.change_points, short.after_pairwise_dedup),
            reduction(long.change_points, long.after_pairwise_dedup),
        ],
    ];
    println!();
    println!(
        "{}",
        render_table(
            &["stage", "short-term regression", "long-term regression"],
            &rows
        )
    );
    println!("final reports: short-term = {short_reports}, long-term = {long_reports}");
    println!(
        "\npaper's shape: the went-away detector is the single most effective\n\
         filter; each later stage removes a further slice; overall reduction\n\
         is several orders of magnitude from raw change points to reports."
    );
    // Sanity: the funnel must be strictly effective.
    assert!(short.change_points > 20 * short.after_pairwise_dedup.max(1));
    assert!(short.after_went_away < short.change_points / 2);
}
