//! Per-point cost of the two Gorilla block decoders.
//!
//! Times full-block decodes of the word-buffered decoder
//! ([`SealedBlock::iter`]) and the retained bit-at-a-time legacy decoder
//! ([`SealedBlock::reference_iter`]) over the same workload shapes the
//! criterion `decode` bench sweeps: steady cadence, NaN bursts, and
//! irregular cadence with timestamp jumps and repeated values, each at
//! block sizes 128 / 900 / 4096.
//!
//! Results merge into `BENCH_pipeline.json` under `"decode_ns_per_point"`.
//! `MAX_DECODE_RATIO` (default 1.3) bounds word/legacy on the 900-point
//! steady shape — the blend sealed blocks actually hold — so a regression
//! that loses the word decoder's advantage fails loudly.

use fbd_bench::{decode_fixture, render_table, DECODE_SHAPES, DECODE_SIZES};
use fbd_tsdb::SealedBlock;
use std::time::Instant;

fn consume_word(block: &SealedBlock) -> u64 {
    let mut acc = 0u64;
    for p in block.iter() {
        acc ^= p.timestamp ^ p.value.to_bits();
    }
    acc
}

fn consume_legacy(block: &SealedBlock) -> u64 {
    let mut acc = 0u64;
    for p in block.reference_iter() {
        acc ^= p.timestamp ^ p.value.to_bits();
    }
    acc
}

/// Median-of-runs ns/point for one decoder over one block.
fn measure(block: &SealedBlock, legacy: bool) -> f64 {
    let n = block.count() as usize;
    // Enough iterations that one run covers >= ~1ms even for small blocks.
    let iters = (1_000_000 / n).max(20);
    let mut runs = [0f64; 5];
    let mut sink = 0u64;
    for run in &mut runs {
        let start = Instant::now();
        for _ in 0..iters {
            sink ^= if legacy {
                consume_legacy(block)
            } else {
                consume_word(block)
            };
        }
        *run = start.elapsed().as_nanos() as f64 / (iters * n) as f64;
    }
    assert!(sink != 1, "decode sink collapsed"); // keep the loop live
    runs.sort_by(f64::total_cmp);
    runs[2]
}

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut entries: Vec<String> = Vec::new();
    let mut steady_900 = (0.0f64, 0.0f64);
    for shape in DECODE_SHAPES {
        let mut fields: Vec<String> = Vec::new();
        for n in DECODE_SIZES {
            let points = decode_fixture(shape, n);
            let block = SealedBlock::from_points(&points);
            assert_eq!(block.count() as usize, n);
            // The decoders must agree bit-for-bit before being timed.
            let word: Vec<(u64, u64)> =
                block.iter().map(|p| (p.timestamp, p.value.to_bits())).collect();
            let legacy: Vec<(u64, u64)> = block
                .reference_iter()
                .map(|p| (p.timestamp, p.value.to_bits()))
                .collect();
            assert_eq!(word, legacy, "{shape}/{n}: decoders diverged");
            let word_ns = measure(&block, false);
            let legacy_ns = measure(&block, true);
            if shape == "steady" && n == 900 {
                steady_900 = (word_ns, legacy_ns);
            }
            rows.push(vec![
                shape.to_string(),
                n.to_string(),
                format!("{word_ns:.2}"),
                format!("{legacy_ns:.2}"),
                format!("{:.2}x", legacy_ns / word_ns),
            ]);
            fields.push(format!(
                "\"{n}\": {{ \"word\": {word_ns:.2}, \"legacy\": {legacy_ns:.2} }}"
            ));
        }
        entries.push(format!("\"{shape}\": {{ {} }}", fields.join(", ")));
    }
    println!(
        "{}",
        render_table(
            &["shape", "points", "word ns/pt", "legacy ns/pt", "speedup"],
            &rows,
        )
    );

    let max_ratio = std::env::var("MAX_DECODE_RATIO")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.3);
    let (word_ns, legacy_ns) = steady_900;
    let ratio = word_ns / legacy_ns;
    assert!(
        ratio <= max_ratio,
        "word decoder is {ratio:.2}x the legacy cost on steady/900 (cap {max_ratio:.2}x)"
    );
    println!("decode ratio guard passed: {ratio:.2}x <= {max_ratio:.2}x");

    let entry = format!(
        "\"decode_ns_per_point\": {{ {} }}",
        entries.join(", ")
    );
    let out_path =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let merged = match std::fs::read_to_string(&out_path) {
        Ok(existing) => {
            let body = existing.trim_end();
            let body = body.strip_suffix('}').unwrap_or(body).trim_end();
            // Replace a previous decode entry if present.
            let body = match body.find(",\n  \"decode_ns_per_point\"") {
                Some(pos) => &body[..pos],
                None => body,
            };
            format!("{body},\n  {entry}\n}}\n")
        }
        Err(_) => format!("{{\n  {entry}\n}}\n"),
    };
    match std::fs::write(&out_path, &merged) {
        Ok(()) => println!("merged decode_ns_per_point into {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
