//! Figure 2: averaging m process-level CPU series reveals the tiny shift
//! only at impractical fleet sizes.
//!
//! Two server generations (μ=40% σ²=0.01 with a 0.003% shift; μ=60%
//! σ²=0.02 with a 0.007% shift); the averaged series is plotted for
//! m ∈ {500K, 5M, 50M} and the shift's signal-to-noise reported.
//!
//! Run with: `cargo run --release -p fbd-bench --bin fig2_process_level`

use fbd_bench::{render_table, sparkline};
use fbd_fleet::lln::{averaged_fleet_series, shift_signal_to_noise, FIGURE2_POPULATIONS};
use fbd_stats::{cusum, hypothesis};

fn regenerate(m: u64, len: usize, change_at: usize, seed: u64) -> Vec<f64> {
    averaged_fleet_series(&FIGURE2_POPULATIONS, m, len, change_at, seed, 0)
        .expect("valid populations")
}

fn main() {
    let len = 1_000;
    let change_at = len / 2;
    println!("Figure 2: process-level fleet averages (shift at midpoint)\n");
    let mut rows = Vec::new();
    for (i, m) in [500_000u64, 5_000_000, 50_000_000].into_iter().enumerate() {
        let avg = averaged_fleet_series(&FIGURE2_POPULATIONS, m, len, change_at, 10 + i as u64, 0)
            .expect("valid populations");
        println!("  m = {m:>11}: {}", sparkline(&avg, 72));
        let snr = shift_signal_to_noise(&avg, change_at).unwrap();
        let cp = cusum::detect_change_point(&avg).unwrap();
        // Reliability across five independent seeds: the change point must
        // be located within ±2% of the truth and pass the likelihood-ratio
        // test each time. Low-m averages locate it only by luck.
        let mut reliable = 0;
        for extra in 0..5u64 {
            let trial = regenerate(m, len, change_at, 40 + i as u64 * 5 + extra);
            let Ok(tcp) = cusum::detect_change_point(&trial) else {
                continue;
            };
            let located = (tcp.index as i64 - change_at as i64).unsigned_abs() < len as u64 / 50;
            if located
                && hypothesis::likelihood_ratio_test(&trial, tcp.index, 0.01)
                    .map(|t| t.reject_null)
                    .unwrap_or(false)
            {
                reliable += 1;
            }
        }
        rows.push(vec![
            format!("{m}"),
            format!("{snr:.2}"),
            format!("{}", cp.index),
            format!("{reliable}/5"),
        ]);
    }
    println!();
    println!(
        "{}",
        render_table(
            &[
                "m (servers)",
                "shift SNR",
                "CUSUM change point",
                "reliably located"
            ],
            &rows
        )
    );
    println!(
        "paper's shape: only m = 50,000,000 makes the 0.005% shift detectable,\n\
         which is impractical — motivating subroutine-level measurement (Figure 3)."
    );
}
