//! Figure 5: PyPerf stack reconstruction at scale.
//!
//! Synthesizes thousands of Python call chains (with and without native
//! leaves), reconstructs each merged stack, and verifies: (i) every
//! reconstruction is exact against ground truth; (ii) gCPU computed from
//! PyPerf's merged stacks attributes native-library time to the correct
//! frame, while the Scalene-style view misattributes it to the innermost
//! Python frame.
//!
//! Run with: `cargo run --release -p fbd-bench --bin fig5_pyperf`

use fbd_bench::render_table;
use fbd_profiler::pyperf::{reconstruct, scalene_view, synthesize_stacks, MergedFrame};

fn main() {
    let chains = 5_000;
    let mut exact = 0usize;
    let mut native_leaf_samples = 0usize;
    let mut pyperf_zlib_samples = 0usize;
    let mut scalene_zlib_samples = 0usize;
    let mut scalene_leaf_attributed = 0usize;
    for i in 0..chains {
        let depth = 2 + i % 8;
        let chain: Vec<String> = (0..depth).map(|d| format!("py_f{d}_{}", i % 13)).collect();
        let refs: Vec<&str> = chain.iter().map(String::as_str).collect();
        let has_native = i % 3 == 0;
        let captured = synthesize_stacks(&refs, has_native.then_some("zlib_deflate"));
        let merged = reconstruct(&captured).expect("well-formed capture");
        // Ground truth: prologue + python chain + optional native leaf.
        let python_part: Vec<&str> = merged
            .iter()
            .filter_map(|f| match f {
                MergedFrame::Python(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        if python_part == refs {
            exact += 1;
        }
        if has_native {
            native_leaf_samples += 1;
            if merged.last().map(|f| f.name()) == Some("zlib_deflate") {
                pyperf_zlib_samples += 1;
            }
            let (python_only, attributed) = scalene_view(&captured);
            if python_only.iter().any(|f| f == "zlib_deflate") {
                scalene_zlib_samples += 1;
            }
            if attributed {
                scalene_leaf_attributed += 1;
            }
        }
    }
    println!("Figure 5: PyPerf reconstruction over {chains} synthesized stacks\n");
    let rows = vec![
        vec![
            "exact Python-chain reconstructions".to_string(),
            format!("{exact}/{chains}"),
        ],
        vec![
            "samples with a native (zlib) leaf".to_string(),
            format!("{native_leaf_samples}"),
        ],
        vec![
            "PyPerf: native leaf attributed precisely".to_string(),
            format!("{pyperf_zlib_samples}/{native_leaf_samples}"),
        ],
        vec![
            "Scalene-style: native frame visible".to_string(),
            format!("{scalene_zlib_samples}/{native_leaf_samples}"),
        ],
        vec![
            "Scalene-style: leaf time folded into Python frame".to_string(),
            format!("{scalene_leaf_attributed}/{native_leaf_samples}"),
        ],
    ];
    println!("{}", render_table(&["property", "count"], &rows));
    assert_eq!(exact, chains);
    assert_eq!(pyperf_zlib_samples, native_leaf_samples);
    assert_eq!(scalene_zlib_samples, 0);
    println!(
        "\nPyPerf derives exact end-to-end stacks; the Python-only approximation\n\
         cannot see into C/C++ libraries (§4)."
    );
}
