//! Figure 7: catching the regression at the end of the series despite a
//! historical spike.
//!
//! The naive second-iteration went-away design compares post-regression
//! values against a historical window; if it picks the spike window as the
//! baseline, it wrongly concludes the final regression "went away". The
//! third-iteration SAX design recognizes the spike and the regression as
//! different patterns and reports the regression.
//!
//! Run with: `cargo run --release -p fbd-bench --bin fig7_went_away`

use fbd_bench::sparkline;
use fbd_fleet::scenarios::figure7;
use fbd_stats::descriptive;
use fbd_tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};
use fbdetect_core::{DetectorConfig, Pipeline, ScanContext, Threshold};

fn main() {
    let len = 900;
    let s = figure7(len, 7).unwrap();
    println!("Figure 7: spike mid-history, true regression at the end\n");
    println!("  {}\n", sparkline(&s.values, 72));

    // The naive baseline comparison the paper's second iteration used:
    // compare the post-regression level against the spike window.
    let spike_window = &s.values[len / 3..len / 3 + len / 20];
    let post = &s.values[len * 4 / 5..];
    let naive_baseline = descriptive::mean(spike_window).unwrap();
    let post_mean = descriptive::mean(post).unwrap();
    println!(
        "naive 2nd-iteration check: post mean {:.2} vs spike-window baseline {:.2}",
        post_mean, naive_baseline
    );
    if post_mean <= naive_baseline {
        println!("  -> naive design WRONGLY concludes the regression went away\n");
    }

    // The third-iteration detector inside the full pipeline.
    let windows = WindowConfig {
        historic: 600 * 60,
        analysis: 200 * 60,
        extended: 100 * 60,
        rerun_interval: 100 * 60,
    };
    let cfg = DetectorConfig::new("fig7", windows, Threshold::Absolute(0.5));
    let mut pipeline = Pipeline::new(cfg).unwrap();
    let store = TsdbStore::new();
    let id = SeriesId::new("svc", MetricKind::GCpu, "fig7");
    store.insert_series(id.clone(), TimeSeries::from_values(0, 60, &s.values));
    let out = pipeline
        .scan(&store, &[id], len as u64 * 60, &ScanContext::default())
        .unwrap();
    println!(
        "FBDetect (3rd iteration, SAX patterns): {} regression(s) reported",
        out.reports.len()
    );
    assert_eq!(out.reports.len(), 1, "the final regression must be caught");
    let r = &out.reports[0];
    println!(
        "  change at index {} (truth: {}), magnitude {:+.2}",
        r.change_index,
        s.change_at.unwrap(),
        r.magnitude()
    );
    assert!(
        (r.change_index as i64 - s.change_at.unwrap() as i64).abs() < 40,
        "change point located near the truth"
    );
    println!("\nthe SAX-based went-away detector is not fooled by the historical spike ✓");
}
