//! Capacity check: can this pipeline scan 800,000 series on "hundreds of
//! servers" (§5.1)?
//!
//! Measures end-to-end scan throughput (series/second) on this machine for
//! a realistic series mix, then extrapolates: how many cores are needed to
//! re-scan 800K series at FrontFaaS-small's 2-hour re-run interval? The
//! paper says FBDetect "utilizes capacity equivalent to hundreds of
//! servers" — the extrapolation should land in the same order of magnitude
//! (noting its series are longer and its filters run more often).
//!
//! Run with: `cargo run --release -p fbd-bench --bin capacity_scaling`

use fbd_bench::{render_table, suite_config, suite_scan_time, CADENCE};
use fbd_fleet::scenarios::{labelled_suite, SuiteConfig};
use fbd_tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore};
use fbdetect_core::{Pipeline, ScanContext, Threshold};
use std::time::Instant;

const LEN: usize = 900;

fn main() {
    let n_series: usize = std::env::var("SERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    // A production-like mix: mostly quiet, some transients, a few
    // regressions.
    let suite_cfg = SuiteConfig {
        clean: n_series * 7 / 10,
        regressions: n_series / 100,
        gradual: 0,
        transients: n_series / 4,
        seasonal: n_series / 25,
        len: LEN,
        change_fraction: 0.75,
        relative_magnitude_range: (0.01, 0.2),
        base: 1.0,
        noise_std: 0.002,
        ..Default::default()
    };
    let suite = labelled_suite(&suite_cfg, 777).unwrap();
    let store = TsdbStore::new();
    let mut ids = Vec::with_capacity(suite.len());
    for (i, s) in suite.iter().enumerate() {
        let id = SeriesId::new("svc", MetricKind::GCpu, format!("s{i:06}"));
        store.insert_series(id.clone(), TimeSeries::from_values(0, CADENCE, &s.values));
        ids.push(id);
    }
    println!("scanning {} series of {LEN} samples each...\n", suite.len());
    let mut rows = Vec::new();
    let mut single_thread_rate = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let mut pipeline = Pipeline::new(suite_config(LEN, Threshold::Absolute(0.01))).unwrap();
        pipeline.threads = threads;
        let start = Instant::now();
        let out = pipeline
            .scan(&store, &ids, suite_scan_time(LEN), &ScanContext::default())
            .unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        let rate = suite.len() as f64 / elapsed;
        if threads == 1 {
            single_thread_rate = rate;
        }
        rows.push(vec![
            format!("{threads}"),
            format!("{elapsed:.2} s"),
            format!("{rate:.0} series/s"),
            format!("{}", out.funnel.change_points),
            format!("{}", out.reports.len()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "scan time",
                "throughput",
                "change points",
                "reports"
            ],
            &rows
        )
    );
    // Extrapolation: 800K series every 2 hours (FrontFaaS small).
    let series_per_core_per_rescan = single_thread_rate * 2.0 * 3_600.0;
    let cores_needed = (800_000.0 / series_per_core_per_rescan).ceil();
    println!(
        "\nextrapolation: one core re-scans {series_per_core_per_rescan:.0} series per \
         2-hour interval,\nso 800,000 series need ~{cores_needed:.0} core(s) of steady \
         detection compute\n(the paper's production windows hold 10+ days of data and \
         every stage runs at\nfull fidelity, hence its 'hundreds of servers'; the point \
         is the per-series cost\nis milliseconds, not seconds)."
    );
    assert!(
        single_thread_rate > 50.0,
        "scan throughput suspiciously low: {single_thread_rate:.0} series/s"
    );
}
