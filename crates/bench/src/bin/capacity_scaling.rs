//! Capacity check: can this pipeline scan 800,000 series on "hundreds of
//! servers" (§5.1)?
//!
//! Measures end-to-end scan throughput (series/second) on this machine for
//! a realistic series mix, then extrapolates: how many cores are needed to
//! re-scan 800K series at FrontFaaS-small's 2-hour re-run interval? The
//! paper says FBDetect "utilizes capacity equivalent to hundreds of
//! servers" — the extrapolation should land in the same order of magnitude
//! (noting its series are longer and its filters run more often).
//!
//! Also emits `BENCH_pipeline.json` (path overridable via `BENCH_OUT`)
//! with the end-to-end series/sec plus a per-stage ns/series breakdown of
//! the scan hot path, so regressions in any one stage are attributable.
//!
//! Run with: `cargo run --release -p fbd-bench --bin capacity_scaling`

use fbd_bench::{
    compress_enabled, ingest_enabled, load_suite_store, render_table, suite_config,
    suite_scan_time,
};
use fbd_fleet::scenarios::{labelled_suite, SuiteConfig};
use fbd_tsdb::{MetricKind, SeriesId, TsdbStore, WindowedData};
use fbdetect_core::change_point::ChangePointDetector;
use fbdetect_core::long_term::LongTermDetector;
use fbdetect_core::seasonality::SeasonalityDetector;
use fbdetect_core::types::Regression;
use fbdetect_core::went_away::WentAwayDetector;
use fbdetect_core::{Pipeline, ScanContext, Threshold};
use std::time::Instant;

const LEN: usize = 900;

/// One timed pass over every series for a single pipeline stage.
struct StageTiming {
    name: &'static str,
    total_ns: u128,
    series: usize,
}

impl StageTiming {
    fn ns_per_series(&self) -> f64 {
        self.total_ns as f64 / self.series.max(1) as f64
    }
}

/// Times the scan hot path stage by stage: windowing, the short-term
/// change-point detector, the long-term detector, and — over the detected
/// candidates — the went-away and seasonality filters. Filter costs are
/// still amortized per *scanned* series, matching how the pipeline pays
/// them.
fn stage_breakdown(
    store: &TsdbStore,
    ids: &[SeriesId],
    now: u64,
) -> (Vec<StageTiming>, Vec<Regression>) {
    let config = suite_config(LEN, Threshold::Absolute(0.01));
    let n = ids.len();
    let mut timings = Vec::new();

    let start = Instant::now();
    let windows: Vec<WindowedData> = ids
        .iter()
        .map(|id| store.windows(id, &config.windows, now).unwrap())
        .collect();
    timings.push(StageTiming {
        name: "windowing",
        total_ns: start.elapsed().as_nanos(),
        series: n,
    });

    let detector = ChangePointDetector::from_config(&config);
    let start = Instant::now();
    let mut candidates: Vec<Regression> = ids
        .iter()
        .zip(&windows)
        .filter_map(|(id, w)| detector.detect(id, w, now).ok().flatten())
        .collect();
    timings.push(StageTiming {
        name: "change_point",
        total_ns: start.elapsed().as_nanos(),
        series: n,
    });

    let long_term = LongTermDetector::from_config(&config);
    let start = Instant::now();
    let long_hits = ids
        .iter()
        .zip(&windows)
        .filter_map(|(id, w)| long_term.detect(id, w, now).ok().flatten())
        .count();
    timings.push(StageTiming {
        name: "long_term",
        total_ns: start.elapsed().as_nanos(),
        series: n,
    });
    let _ = long_hits;

    let went_away = WentAwayDetector::from_config(&config);
    let start = Instant::now();
    candidates.retain(|r| went_away.evaluate(r).map(|v| v.keep).unwrap_or(true));
    timings.push(StageTiming {
        name: "went_away",
        total_ns: start.elapsed().as_nanos(),
        series: n,
    });

    let seasonality = SeasonalityDetector::from_config(&config);
    let start = Instant::now();
    candidates.retain(|r| seasonality.evaluate(r).map(|v| v.keep).unwrap_or(true));
    timings.push(StageTiming {
        name: "seasonality",
        total_ns: start.elapsed().as_nanos(),
        series: n,
    });

    (timings, candidates)
}

fn main() {
    let n_series: usize = std::env::var("SERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    // A production-like mix: mostly quiet, some transients, a few
    // regressions.
    let suite_cfg = SuiteConfig {
        clean: n_series * 7 / 10,
        regressions: n_series / 100,
        gradual: 0,
        transients: n_series / 4,
        seasonal: n_series / 25,
        len: LEN,
        change_fraction: 0.75,
        relative_magnitude_range: (0.01, 0.2),
        base: 1.0,
        noise_std: 0.002,
    };
    let suite = labelled_suite(&suite_cfg, 777).unwrap();
    // INGEST=1 routes store building through the staged ingest front-end
    // (wire encode → validate → quota → sharded append); contents are
    // point-identical to the direct path, so the measured scan numbers
    // stay comparable.
    let via_ingest = ingest_enabled();
    let compressed = compress_enabled();
    let (store, ids) = load_suite_store(&suite, "svc", MetricKind::GCpu, via_ingest);
    println!(
        "scanning {} series of {LEN} samples each{}{}...\n",
        suite.len(),
        if via_ingest {
            " (store built via ingest pipeline)"
        } else {
            ""
        },
        if compressed {
            " (Gorilla-compressed storage)"
        } else {
            ""
        }
    );
    // Storage footprint under the selected policy (COMPRESS=1 /
    // SHARD_BUDGET_MB): resident bytes per the store's own accounting
    // model, which the per-shard budget is enforced against.
    let storage = store.stats();
    let resident_bytes = storage.resident_bytes();
    let bytes_per_point = storage.bytes_per_point();
    println!(
        "storage: {:.1} MiB resident, {bytes_per_point:.2} B/point, {} sealed blocks, \
         max shard {:.1} MiB, {} points evicted\n",
        resident_bytes as f64 / (1024.0 * 1024.0),
        storage.sealed_blocks(),
        storage.max_shard_resident_bytes() as f64 / (1024.0 * 1024.0),
        storage.evicted_points()
    );
    let now = suite_scan_time(LEN);
    // Hardware context for the thread-scaling table: with a single
    // available core the 1→8 thread rows are expected to be flat (the
    // worker pool just adds scheduling overhead). Window extraction holds
    // the store's shard lock briefly in write mode when the decode cache is
    // enabled (read mode otherwise), but only to probe/fill the per-shard
    // cache — series route across 16 shards, so it is not a serialization
    // point — see EXPERIMENTS.md "Thread scaling".
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("available cores: {cores}\n");
    let mut rows = Vec::new();
    let mut single_thread_rate = 0.0;
    let mut thread_rates = Vec::new();
    let mut change_points = 0;
    let mut reports = 0;
    let mut warm_rate = 0.0;
    let mut cache_hit_rate = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let mut pipeline = Pipeline::new(suite_config(LEN, Threshold::Absolute(0.01))).unwrap();
        pipeline.threads = threads;
        let start = Instant::now();
        let out = pipeline
            .scan(&store, &ids, now, &ScanContext::default())
            .unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        let rate = suite.len() as f64 / elapsed;
        if threads == 1 {
            single_thread_rate = rate;
            change_points = out.funnel.change_points;
            reports = out.reports.len();
            // Warm re-scan on the same pipeline: the ScanCache now holds
            // every series' seasonality/STL/SAX artifacts, which is what a
            // production scheduler round sees when windows have not moved.
            pipeline.reset_cache_stats();
            let start = Instant::now();
            let _ = pipeline
                .scan(&store, &ids, now, &ScanContext::default())
                .unwrap();
            warm_rate = suite.len() as f64 / start.elapsed().as_secs_f64();
            cache_hit_rate = pipeline.cache_stats().hit_rate();
        }
        thread_rates.push((threads, rate));
        rows.push(vec![
            format!("{threads}"),
            format!("{elapsed:.2} s"),
            format!("{rate:.0} series/s"),
            format!("{}", out.funnel.change_points),
            format!("{}", out.reports.len()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "scan time",
                "throughput",
                "change points",
                "reports"
            ],
            &rows
        )
    );
    println!(
        "warm re-scan (threads=1, unchanged windows): {warm_rate:.0} series/s, \
         cache hit rate {:.1}%\n",
        cache_hit_rate * 100.0
    );

    // Per-stage cost attribution for the hot path.
    let (timings, _survivors) = stage_breakdown(&store, &ids, now);
    // Decode-side counters after all scans and the stage breakdown: how
    // many sealed blocks were actually decoded versus served from the
    // per-shard decoded-block cache or answered from summaries alone.
    let decode_stats = store.stats();
    println!(
        "decode: {} blocks decoded, {} cache hits, {} cache evictions, \
         {:.1} KiB cached\n",
        decode_stats.blocks_decoded(),
        decode_stats.decode_cache_hits(),
        decode_stats.decode_cache_evictions(),
        decode_stats.decode_cache_bytes() as f64 / 1024.0,
    );
    let stage_rows: Vec<Vec<String>> = timings
        .iter()
        .map(|t| {
            vec![
                t.name.to_string(),
                format!("{:.0} ns/series", t.ns_per_series()),
            ]
        })
        .collect();
    println!("{}", render_table(&["stage", "cost"], &stage_rows));

    // Machine-readable record for CI and EXPERIMENTS.md.
    let stage_json: Vec<String> = timings
        .iter()
        .map(|t| format!("    \"{}\": {:.0}", t.name, t.ns_per_series()))
        .collect();
    let rate_json: Vec<String> = thread_rates
        .iter()
        .map(|(t, r)| format!("    \"{t}\": {r:.1}"))
        .collect();
    // BASELINE_RATE (series/sec) lets a run record the pre-change number it
    // is being compared against, e.g. BASELINE_RATE=569 for the rate this
    // machine measured before the prefix-sum/windowing/FFT overhaul.
    let baseline = std::env::var("BASELINE_RATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok());
    let baseline_json = match baseline {
        Some(b) => format!(
            ",\n  \"baseline_series_per_sec\": {b:.1},\n  \"speedup\": {:.2}",
            single_thread_rate / b
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"series\": {},\n  \"len\": {LEN},\n  \"cores\": {cores},\n  \
         \"compressed\": {compressed},\n  \
         \"resident_bytes\": {resident_bytes},\n  \
         \"bytes_per_point\": {bytes_per_point:.2},\n  \
         \"series_per_sec\": {:.1},\n  \
         \"warm_series_per_sec\": {warm_rate:.1},\n  \
         \"cache_hit_rate\": {cache_hit_rate:.3},\n  \
         \"change_points\": {change_points},\n  \"reports\": {reports},\n  \
         \"blocks_decoded\": {},\n  \
         \"decode_cache_hits\": {},\n  \
         \"series_per_sec_by_threads\": {{\n{}\n  }},\n  \
         \"stage_ns_per_series\": {{\n{}\n  }}{baseline_json}\n}}\n",
        suite.len(),
        single_thread_rate,
        decode_stats.blocks_decoded(),
        decode_stats.decode_cache_hits(),
        rate_json.join(",\n"),
        stage_json.join(",\n"),
    );
    let out_path =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\ncould not write {out_path}: {e}"),
    }

    // Extrapolation: 800K series every 2 hours (FrontFaaS small).
    let series_per_core_per_rescan = single_thread_rate * 2.0 * 3_600.0;
    let cores_needed = (800_000.0 / series_per_core_per_rescan).ceil();
    println!(
        "\nextrapolation: one core re-scans {series_per_core_per_rescan:.0} series per \
         2-hour interval,\nso 800,000 series need ~{cores_needed:.0} core(s) of steady \
         detection compute\n(the paper's production windows hold 10+ days of data and \
         every stage runs at\nfull fidelity, hence its 'hundreds of servers'; the point \
         is the per-series cost\nis milliseconds, not seconds)."
    );
    assert!(
        single_thread_rate > 50.0,
        "scan throughput suspiciously low: {single_thread_rate:.0} series/s"
    );
    // CI regression guard: MIN_RATE (series/sec, typically derived from the
    // committed BENCH_pipeline.json with some tolerance) fails the run if
    // cold-scan throughput drops below the recorded baseline.
    if let Some(min_rate) = std::env::var("MIN_RATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        assert!(
            single_thread_rate >= min_rate,
            "scan throughput regressed: {single_thread_rate:.0} series/s < MIN_RATE {min_rate:.0}"
        );
        println!("MIN_RATE guard passed: {single_thread_rate:.0} >= {min_rate:.0} series/s");
    }
    // CI memory guard: MAX_BYTES_PER_POINT (resident bytes per stored
    // point, derived from the committed BENCH_pipeline.json with some
    // tolerance) fails the run if the storage footprint regresses — e.g.
    // blocks stop sealing or the encoder fattens.
    if let Some(ceiling) = std::env::var("MAX_BYTES_PER_POINT")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        assert!(
            bytes_per_point <= ceiling,
            "storage footprint regressed: {bytes_per_point:.2} B/point > ceiling {ceiling:.2}"
        );
        println!("MAX_BYTES_PER_POINT guard passed: {bytes_per_point:.2} <= {ceiling:.2} B/point");
    }
    // CI latency guard: MAX_WINDOWING_NS (cold windowing ns/series,
    // derived from the committed BENCH_pipeline.json's
    // `stage_ns_per_series.windowing` with headroom) fails the run if cold
    // window extraction regresses — e.g. the summary partitioning or the
    // decode cache stops carrying the batch scan.
    if let Some(ceiling) = std::env::var("MAX_WINDOWING_NS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        let windowing_ns = timings
            .iter()
            .find(|t| t.name == "windowing")
            .map(|t| t.ns_per_series())
            .unwrap_or(f64::INFINITY);
        assert!(
            windowing_ns <= ceiling,
            "cold windowing regressed: {windowing_ns:.0} ns/series > ceiling {ceiling:.0}"
        );
        println!("MAX_WINDOWING_NS guard passed: {windowing_ns:.0} <= {ceiling:.0} ns/series");
    }
}
