//! Sustained ingest throughput under concurrent scanning: the ingest
//! front-end's headline benchmark.
//!
//! A production front door does not get the machine to itself — it
//! appends while the scheduler scans. This harness builds a suite store,
//! then pumps fresh wire batches through the staged pipeline
//! (decode → validate → quota → sharded append, `submit_or_shed` at
//! ingress) while a scanner thread runs streaming scan rounds over the
//! same store the whole time.
//!
//! Reported numbers:
//! - `points_per_sec` — goodput: points landed in the store per second of
//!   wall time, scans included;
//! - `offered_points_per_sec` — the submit-side rate before shedding;
//! - `shed_rate` — fraction of submitted points shed (ingress + quota +
//!   late), all explicitly counted;
//! - `quarantine_count`, `scan_rounds`, `reused_full` — the quarantine
//!   registry size and proof the streaming engine kept reusing rounds
//!   while ingest ran.
//!
//! Acceptance floor: goodput must sustain `MIN_INGEST` points/s
//! (default 100,000) with the scanner live, and the full accounting
//! invariant must hold — every submitted point appended or counted shed.
//!
//! Results merge into `BENCH_pipeline.json` under `"sustained_ingest"`.
//!
//! Run with: `cargo run --release -p fbd-bench --bin sustained_ingest`

use fbd_bench::{ingest_enabled, load_suite_store, render_table, suite_config, suite_scan_time, CADENCE};
use fbd_fleet::scenarios::{labelled_suite, SuiteConfig};
use fbd_ingest::pipeline::{IngestConfig, IngestPipeline};
use fbd_ingest::quota::QuotaConfig;
use fbd_ingest::wire::{encode_batch, SampleBatch};
use fbd_tsdb::MetricKind;
use fbdetect_core::{Pipeline, ScanContext, Threshold};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const LEN: usize = 900;
/// Fresh samples appended per series per wave; the wave's time span
/// (`5 × CADENCE = 300 s`) stays inside the validator's 900 s late slack.
const WAVE_SAMPLES: usize = 5;

fn main() {
    let n_series: usize = std::env::var("SERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);
    let target_points: u64 = std::env::var("POINTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let suite_cfg = SuiteConfig {
        clean: n_series * 7 / 10,
        regressions: n_series / 100,
        gradual: 0,
        transients: n_series / 4,
        seasonal: n_series / 25,
        len: LEN,
        change_fraction: 0.75,
        relative_magnitude_range: (0.01, 0.2),
        base: 1.0,
        noise_std: 0.002,
    };
    let suite = labelled_suite(&suite_cfg, 777).unwrap();
    let (store, ids) = load_suite_store(&suite, "svc", MetricKind::GCpu, ingest_enabled());
    let n = ids.len();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "sustained ingest: {n} series, target {target_points} fresh points, \
         streaming scans concurrent, cores {cores}\n"
    );

    let config = IngestConfig {
        queue_depth: 256,
        appenders: 2,
        // Throughput measurement, not admission control: the bucket never
        // empties, so every shed is a backpressure or late shed.
        quota: QuotaConfig {
            burst: u64::MAX / 2,
            points_per_sec: 0,
        },
        ..IngestConfig::default()
    };
    let pipeline = IngestPipeline::new(Arc::clone(&store), config);
    let quarantine = pipeline.quarantine();

    let stop = AtomicBool::new(false);
    let scan_rounds = AtomicU64::new(0);
    let now = suite_scan_time(LEN);
    let mut reused_full = 0u64;
    let mut scanned = 0u64;

    let start = Instant::now();
    std::thread::scope(|scope| {
        // The scanner: streaming rounds over the store while ingest runs.
        // The watermark holds (appends land past it), so rounds after the
        // first exercise the engine's reuse path under concurrent writes.
        let scanner = scope.spawn(|| {
            let mut pipeline =
                Pipeline::new(suite_config(LEN, Threshold::Absolute(0.01))).unwrap();
            let mut stats = Default::default();
            while !stop.load(Ordering::Relaxed) {
                let out = pipeline
                    .scan(&store, &ids, now, &ScanContext::default())
                    .expect("scan must survive concurrent ingest");
                assert_eq!(out.health.panicked, 0, "detector panicked under ingest load");
                scan_rounds.fetch_add(1, Ordering::Relaxed);
                stats = pipeline.streaming_stats().unwrap();
            }
            stats
        });

        // The pump: waves of fresh points continuing every series' tail.
        let mut frontier: u64 = now;
        let mut pumped: u64 = 0;
        while pumped < target_points {
            let wave_end = frontier + WAVE_SAMPLES as u64 * CADENCE;
            let mut batch = SampleBatch::new("bench", wave_end);
            for (i, id) in ids.iter().enumerate() {
                for w in 0..WAVE_SAMPLES {
                    let t = frontier + w as u64 * CADENCE;
                    let v = suite[i].values[LEN - 1] + ((t / CADENCE + i as u64) % 7) as f64 * 1e-4;
                    batch.push(id, t, v).expect("wave fits the wire format");
                }
            }
            pumped += batch.point_count() as u64;
            let raw = encode_batch(&batch).expect("wave batch encodes");
            pipeline
                .submit_or_shed(raw)
                .expect("ingest pipeline alive");
            frontier = wave_end;
        }
        pipeline.drain();
        stop.store(true, Ordering::Relaxed);
        let stats = scanner.join().expect("scanner thread");
        reused_full = stats.reused_full;
        scanned = stats.scanned;
    });
    let stats = pipeline.finish();
    let elapsed = start.elapsed().as_secs_f64();

    // Every submitted point is accounted for — the "never silent loss"
    // invariant, under real concurrency.
    assert!(stats.is_accounted(), "accounting broken: {stats:?}");
    assert_eq!(stats.decode_errors, 0, "{stats:?}");
    assert_eq!(stats.quota_shed_points, 0, "{stats:?}");

    let goodput = stats.points_appended as f64 / elapsed;
    let offered = stats.points_submitted as f64 / elapsed;
    let shed_rate = stats.shed_rate();
    let rounds = scan_rounds.load(Ordering::Relaxed);
    let quarantine_count = quarantine.lock().len();

    println!(
        "{}",
        render_table(
            &["metric", "value"],
            &[
                vec!["points appended".into(), format!("{}", stats.points_appended)],
                vec!["points submitted".into(), format!("{}", stats.points_submitted)],
                vec!["goodput".into(), format!("{goodput:.0} points/s")],
                vec!["offered".into(), format!("{offered:.0} points/s")],
                vec!["shed rate".into(), format!("{:.2}%", shed_rate * 100.0)],
                vec!["late shed".into(), format!("{}", stats.late_shed_points)],
                vec!["quarantined".into(), format!("{quarantine_count}")],
                vec!["scan rounds".into(), format!("{rounds}")],
                vec!["engine reused(cum)".into(), format!("{reused_full}")],
                vec!["engine scanned(cum)".into(), format!("{scanned}")],
            ],
        )
    );

    assert!(
        rounds >= 1,
        "the scanner never completed a round while ingest ran"
    );
    assert!(
        reused_full > 0,
        "streaming engine reuse died under concurrent ingest"
    );

    // The acceptance floor, overridable for slow CI runners via
    // MIN_INGEST (points per second of goodput, scans concurrent).
    let min_ingest = std::env::var("MIN_INGEST")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(100_000.0);
    assert!(
        goodput >= min_ingest,
        "sustained ingest goodput {goodput:.0} points/s < floor {min_ingest:.0}"
    );
    println!("\ningest floor passed: {goodput:.0} >= {min_ingest:.0} points/s");

    // Merge the record into BENCH_pipeline.json under "sustained_ingest",
    // preserving the rest (same idiom as round_cadence).
    let entry = format!(
        "\"sustained_ingest\": {{\n    \"series\": {n},\n    \"cores\": {cores},\n    \
         \"points_submitted\": {},\n    \"points_appended\": {},\n    \
         \"points_per_sec\": {goodput:.1},\n    \
         \"offered_points_per_sec\": {offered:.1},\n    \
         \"shed_rate\": {shed_rate:.4},\n    \
         \"late_shed_points\": {},\n    \
         \"quarantine_count\": {quarantine_count},\n    \
         \"scan_rounds\": {rounds},\n    \"reused_full\": {reused_full}\n  }}",
        stats.points_submitted, stats.points_appended, stats.late_shed_points,
    );
    let out_path =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let merged = match std::fs::read_to_string(&out_path) {
        Ok(existing) => {
            let body = existing.trim_end();
            let body = body.strip_suffix('}').unwrap_or(body).trim_end();
            let body = match body.find(",\n  \"sustained_ingest\"") {
                Some(pos) => &body[..pos],
                None => body,
            };
            format!("{body},\n  {entry}\n}}\n")
        }
        Err(_) => format!("{{\n  {entry}\n}}\n"),
    };
    match std::fs::write(&out_path, &merged) {
        Ok(()) => println!("merged sustained_ingest into {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
