//! Appendix A.2: the detection-threshold model Δ ≈ √(s²/n₂) · T_critical.
//!
//! Empirically measures the smallest detectable mean shift for a grid of
//! (variance, sample-count) settings — the smallest Δ for which the
//! two-sample t-test rejects H0 at 99% in the majority of trials — and
//! compares it against the analytic expression. Also demonstrates the two
//! scaling laws of §2: Δ ∝ 1/√n and Δ ∝ σ.
//!
//! Run with: `cargo run --release -p fbd-bench --bin appendix_threshold`

use fbd_bench::render_table;
use fbd_fleet::spec::SeriesSpec;
use fbd_stats::distributions::student_t_critical;
use fbd_stats::hypothesis::{detection_threshold, two_sample_t_test};

/// Fraction of 20 trials in which the shift `delta` is detected.
fn detection_rate(variance: f64, n: usize, delta: f64, seed: u64) -> f64 {
    let std = variance.sqrt();
    let mut hits = 0;
    let trials = 20;
    for t in 0..trials {
        let before = SeriesSpec::flat(4 * n, 1.0, std)
            .generate(seed + t)
            .unwrap();
        let after = SeriesSpec::flat(n, 1.0 + delta, std)
            .generate(seed + 1_000 + t)
            .unwrap();
        let test = two_sample_t_test(&before, &after, 0.01).unwrap();
        if test.reject_null && test.statistic < 0.0 {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// Smallest delta (by bisection) detected in >= 50% of trials.
fn empirical_threshold(variance: f64, n: usize, seed: u64) -> f64 {
    let mut lo = 0.0;
    let mut hi = 20.0 * (variance / n as f64).sqrt();
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if detection_rate(variance, n, mid, seed) >= 0.5 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

fn main() {
    println!("Appendix A.2: Δ_threshold ≈ √(s²/n₂) · T_critical (99% confidence)\n");
    let mut rows = Vec::new();
    for &variance in &[0.01, 0.0001] {
        for &n in &[100usize, 400, 1_600] {
            let t_crit = student_t_critical(0.01, (5 * n - 2) as f64);
            let theory = detection_threshold(variance, n, t_crit).unwrap();
            let measured = empirical_threshold(variance, n, (n as u64) * 7 + 1);
            rows.push(vec![
                format!("{variance}"),
                format!("{n}"),
                format!("{theory:.5}"),
                format!("{measured:.5}"),
                format!("{:.2}", measured / theory),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["σ²", "n₂", "theory Δ", "measured Δ", "ratio"], &rows)
    );
    println!(
        "\nscaling checks (paper §2):\n\
         - quadrupling n halves Δ (rows within each σ² block);\n\
         - dividing σ² by 100 divides Δ by 10 (across blocks) — the\n\
           subroutine-level variance reduction that makes 0.005% reachable."
    );
    // The measured/theory ratio should be O(1) across the grid.
    for row in &rows {
        let ratio: f64 = row[4].parse().unwrap();
        assert!(
            (0.3..3.0).contains(&ratio),
            "measured threshold far from theory: {row:?}"
        );
    }
}
