//! §6.3: root-cause analysis accuracy.
//!
//! Repeated trials of the full loop: simulate a service, generate
//! background change traffic, plant one culprit that regresses a
//! subroutine, detect, and check whether RCA (i) suggests candidates at
//! all and (ii) puts the culprit in the top three. Mirrors the paper's
//! metrics: suggestion rate, top-3 accuracy among suggestions, and overall
//! success rate.
//!
//! Run with: `cargo run --release -p fbd-bench --bin rca_accuracy`

use fbd_changelog::{ChangeLog, ChangeTrafficConfig, ChangeTrafficGenerator};
use fbd_fleet::server::Fleet;
use fbd_fleet::{ServiceSim, ServiceSimConfig};
use fbd_profiler::callgraph::CallGraphBuilder;
use fbd_tsdb::{TsdbStore, WindowConfig};
use fbdetect_core::{DetectorConfig, Pipeline, ScanContext, Threshold};

struct TrialResult {
    detected: bool,
    suggested: bool,
    top3_correct: bool,
}

fn trial(seed: u64) -> TrialResult {
    // A modest service graph with distinct subsystem names.
    let mut b = CallGraphBuilder::new("main", 0.01);
    let dispatch = b.add_child(0, "dispatch", 0.01, "Runtime").unwrap();
    let subsystems = ["render", "data", "auth", "cache", "feed", "ads"];
    let mut leaves = Vec::new();
    for s in subsystems {
        let parent = b
            .add_child(dispatch, format!("{s}::entry"), 0.02, s)
            .unwrap();
        for j in 0..3 {
            leaves.push(
                b.add_child(parent, format!("{s}::step{j}"), 0.05, s)
                    .unwrap(),
            );
        }
    }
    let graph = b.build().unwrap();
    let fleet = Fleet::two_generations(40).unwrap();
    let sim_config = ServiceSimConfig {
        name: "svc".to_string(),
        tick_interval: 60,
        samples_per_tick: 2_000,
        seed,
        ..Default::default()
    };
    let mut sim = ServiceSim::new(sim_config, graph.clone(), fleet).unwrap();
    let mut log = ChangeLog::new();
    let mut traffic = ChangeTrafficGenerator::new(
        ChangeTrafficConfig {
            service: "svc".to_string(),
            changes_per_day: 120.0,
            subroutine_pool: graph.names().iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        },
        seed,
    );
    traffic.generate_background(&mut log, 0, 43_200);
    // Plant the culprit on a pseudo-random leaf.
    let victim = leaves[(seed as usize * 7) % leaves.len()];
    let victim_name = graph.frame(victim).unwrap().name.clone();
    let culprit = traffic.plant_culprit(
        &mut log,
        35_800,
        &[victim_name.as_str()],
        Some(&format!("Rework {victim_name} internals")),
    );
    sim.inject_regression(victim, 36_000, 0.05, culprit)
        .unwrap();
    let store = TsdbStore::new();
    sim.run(&store, 0, 43_200).unwrap();

    let windows = WindowConfig {
        historic: 8 * 3_600,
        analysis: 2 * 3_600,
        extended: 3_600,
        rerun_interval: 3_600,
    };
    let config = DetectorConfig::new("rca", windows, Threshold::Absolute(0.01));
    let mut pipeline = Pipeline::new(config).unwrap();
    let context = ScanContext {
        changelog: Some(&log),
        samples: Some(sim.retained_samples()),
        graph: Some(&graph),
        domain_providers: vec![],
    };
    let ids = store.series_ids_for_service("svc");
    let out = pipeline.scan(&store, &ids, 43_200, &context).unwrap();
    let victim_reports: Vec<_> = out
        .reports
        .iter()
        .filter(|r| r.series.target == victim_name || !r.root_cause_candidates.is_empty())
        .collect();
    let detected = !out.reports.is_empty();
    let suggested = victim_reports
        .iter()
        .any(|r| !r.root_cause_candidates.is_empty());
    let top3_correct = victim_reports
        .iter()
        .any(|r| r.root_cause_candidates.contains(&culprit));
    TrialResult {
        detected,
        suggested,
        top3_correct,
    }
}

fn main() {
    let trials: u64 = std::env::var("TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    println!("§6.3 RCA accuracy over {trials} simulated regressions\n");
    let mut detected = 0;
    let mut suggested = 0;
    let mut correct = 0;
    for t in 0..trials {
        let r = trial(1_000 + t);
        detected += r.detected as usize;
        suggested += r.suggested as usize;
        correct += r.top3_correct as usize;
        println!(
            "  trial {t:>2}: detected={} suggested={} top3-correct={}",
            r.detected as u8, r.suggested as u8, r.top3_correct as u8
        );
    }
    println!("\ndetection rate        : {detected}/{trials}");
    println!("RCA suggestion rate   : {suggested}/{trials} (paper: 75/217 = 35%)");
    if suggested > 0 {
        println!(
            "top-3 accuracy|suggest: {correct}/{suggested} = {:.0}% (paper: 71/75 = 95%)",
            100.0 * correct as f64 / suggested as f64
        );
    }
    assert!(detected as f64 >= trials as f64 * 0.8, "detection too weak");
    assert!(
        correct as f64 >= suggested as f64 * 0.6,
        "top-3 accuracy too weak: {correct}/{suggested}"
    );
    println!(
        "\nshape holds: when FBDetect suggests candidates, the culprit is usually in the top 3"
    );
}
