//! Ablation: SOM vs K-means vs hierarchical clustering for dedup
//! (§5.5.1, "Discussion of alternatives").
//!
//! The paper chose SOM because its single hyperparameter has a robust
//! setting (`L = ⌈n^(1/4)⌉`) across workloads, while K requires knowing the
//! cluster count and the hierarchical cut level depends on the data
//! distribution (Silhouette-guided selection "often does not converge").
//! Here batches with known group structure are clustered by all three;
//! quality is the fraction of ground-truth pairs kept together minus the
//! fraction of cross-group pairs wrongly merged (pairwise F-style score).
//!
//! Run with: `cargo run --release -p fbd-bench --bin ablation_clustering`

use fbd_bench::render_table;
use fbd_cluster::hierarchical::agglomerative;
use fbd_cluster::kmeans::kmeans;
use fbd_cluster::silhouette::silhouette_score;
use fbd_cluster::som::{cluster_by_cell, SelfOrganizingMap, SomConfig};

/// Generates a batch of feature vectors with `groups` ground-truth groups
/// of varying sizes, heterogeneous spreads, near-neighbour group pairs,
/// and a few outliers — the messy distribution production batches have.
/// Returns (features, labels).
fn batch(groups: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for g in 0..groups {
        // Group sizes vary 2..10 — the "varying number of regressions".
        let size = 2 + (g * 3 + seed as usize) % 9;
        // Groups come in near pairs: even/odd ids sit close together.
        let pair = (g / 2) as f64;
        let offset = if g % 2 == 0 { 0.0 } else { 3.0 };
        let centre = [
            (pair * 13.7).sin() * 40.0 + offset,
            (pair * 7.3).cos() * 40.0 - offset,
            pair * 5.0 + offset,
        ];
        // Spread varies 4x between groups.
        let spread = 0.4 + (g % 4) as f64 * 0.4;
        for m in 0..size {
            let mut z = (g as u64 * 1_000 + m as u64) ^ seed;
            let mut jitter = || {
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((z >> 33) % 1000) as f64 / 1000.0 - 0.5
            };
            features.push(vec![
                centre[0] + jitter() * spread,
                centre[1] + jitter() * spread,
                centre[2] + jitter() * spread * 0.5,
            ]);
            labels.push(g);
        }
    }
    // A few singleton outliers (their own labels).
    for o in 0..(groups / 5).max(1) {
        let v = 200.0 + o as f64 * 37.0;
        features.push(vec![v, -v, v * 0.5]);
        labels.push(groups + o);
    }
    (features, labels)
}

/// Pairwise clustering quality in [−1, 1]: recall of within-group pairs
/// minus the false-merge rate of cross-group pairs.
fn pair_quality(assignments: &[usize], truth: &[usize]) -> f64 {
    let n = truth.len();
    let (mut same_kept, mut same_total) = (0usize, 0usize);
    let (mut cross_merged, mut cross_total) = (0usize, 0usize);
    for i in 0..n {
        for j in i + 1..n {
            if truth[i] == truth[j] {
                same_total += 1;
                if assignments[i] == assignments[j] {
                    same_kept += 1;
                }
            } else {
                cross_total += 1;
                if assignments[i] == assignments[j] {
                    cross_merged += 1;
                }
            }
        }
    }
    same_kept as f64 / same_total.max(1) as f64 - cross_merged as f64 / cross_total.max(1) as f64
}

fn main() {
    println!("Clustering ablation: SOM vs K-means vs hierarchical\n");
    let batches: Vec<(usize, u64)> = vec![(3, 1), (8, 2), (15, 3), (25, 4), (40, 5)];
    let mut rows = Vec::new();
    let mut som_total = 0.0;
    let mut best_alternative_total = 0.0;
    for (groups, seed) in &batches {
        let (features, truth) = batch(*groups, *seed);
        let n = features.len();
        // SOM with the paper's automatic rule.
        let som = SelfOrganizingMap::train(&features, SomConfig::default()).unwrap();
        let som_cells = som.assign(&features).unwrap();
        let som_clusters = cluster_by_cell(&som_cells);
        let mut som_assign = vec![0usize; n];
        for (c, members) in som_clusters.iter().enumerate() {
            for &m in members {
                som_assign[m] = c;
            }
        }
        let som_q = pair_quality(&som_assign, &truth);
        // K-means with a fixed guess (K = 10, as an operator might set) —
        // there is no per-batch oracle for K in production.
        let k_fixed = 10.min(n);
        let km = kmeans(&features, k_fixed, 100, 7).unwrap();
        let km_q = pair_quality(&km.assignments, &truth);
        // Hierarchical with Silhouette-selected cut over a small grid.
        let dendrogram = agglomerative(&features).unwrap();
        let mut best_cut_q = f64::MIN;
        let mut best_sil = f64::MIN;
        let mut chosen_q = f64::MIN;
        for cut in [0.2, 0.5, 1.0, 2.0, 4.0] {
            let labels = dendrogram.cut(cut);
            let q = pair_quality(&labels, &truth);
            best_cut_q = best_cut_q.max(q);
            if let Ok(sil) = silhouette_score(&features, &labels) {
                if sil > best_sil {
                    best_sil = sil;
                    chosen_q = q;
                }
            }
        }
        if chosen_q == f64::MIN {
            chosen_q = 0.0;
        }
        som_total += som_q;
        best_alternative_total += km_q.max(chosen_q);
        rows.push(vec![
            format!("{groups} groups / {n} items"),
            format!("{som_q:.3}"),
            format!("{km_q:.3}"),
            format!("{chosen_q:.3}"),
            format!("{best_cut_q:.3}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "batch",
                "SOM (auto L)",
                "K-means (K=10)",
                "hier. (silhouette cut)",
                "hier. (oracle cut)"
            ],
            &rows
        )
    );
    println!(
        "\npaper's narrative: SOM's single automatic rule stays strong as the\n\
         number of regressions varies; fixed-K and silhouette-guided cuts\n\
         degrade on batches unlike the ones they were tuned for (the oracle\n\
         cut column shows hierarchical *could* do well with per-batch tuning,\n\
         which production cannot provide)."
    );
    assert!(
        som_total >= best_alternative_total - 1.0,
        "SOM should be competitive without tuning: {som_total:.2} vs {best_alternative_total:.2}"
    );
    assert!(
        som_total / batches.len() as f64 >= 0.6,
        "SOM average quality degraded: {:.2}",
        som_total / batches.len() as f64
    );
}
