//! Ablation: STL vs moving-average seasonality handling (§5.2.3,
//! "Discussion of alternatives").
//!
//! The paper chose STL because it is "sensitive to slight changes in
//! seasonality while being robust against sudden changes". Both
//! deseasonalizers are scored on two duties: (i) filtering pure-seasonal
//! false positives and (ii) preserving genuine steps riding on seasonal
//! series.
//!
//! Run with: `cargo run --release -p fbd-bench --bin ablation_seasonality`

use fbd_bench::render_table;
use fbd_fleet::seasonality::SeasonalProfile;
use fbd_fleet::spec::{Event, SeriesSpec};
use fbd_stats::descriptive;
use fbd_stats::smoothing::moving_average_deseasonalize;
use fbd_stats::stl::{decompose, StlConfig};

const LEN: usize = 720;
const PERIOD: usize = 24;
const CP: usize = 540;

/// Decision: given a deseasonalized series and residual scale, is there a
/// significant shift across CP? (The §5.2.3 pseudo z-score at threshold 2.)
fn shift_detected(deseasonalized: &[f64], residual_std: f64) -> bool {
    let before = descriptive::median(&deseasonalized[..CP]).unwrap();
    let after = descriptive::median(&deseasonalized[CP..]).unwrap();
    ((after - before) / residual_std.max(1e-12)).abs() >= 2.0
}

fn stl_judges_regression(values: &[f64]) -> bool {
    let d = decompose(values, StlConfig::for_period(PERIOD)).unwrap();
    let residual_std = descriptive::std_dev(&d.residual).unwrap();
    shift_detected(&d.deseasonalized(), residual_std)
}

fn ma_judges_regression(values: &[f64]) -> bool {
    let (_, deseasonalized) = moving_average_deseasonalize(values, PERIOD).unwrap();
    // Residual scale estimate: deviation from a trailing-mean trend.
    let trend = fbd_stats::smoothing::trailing_moving_average(&deseasonalized, PERIOD).unwrap();
    let residual: Vec<f64> = deseasonalized
        .iter()
        .zip(&trend)
        .map(|(v, t)| v - t)
        .collect();
    let residual_std = descriptive::std_dev(&residual).unwrap();
    shift_detected(&deseasonalized, residual_std)
}

fn seasonal_spec(amplitude: f64, phase: u64) -> SeriesSpec {
    let mut spec = SeriesSpec::flat(LEN, 10.0, 0.05).with_seasonality(SeasonalProfile {
        diurnal_amplitude: amplitude,
        weekly_amplitude: 0.0,
        phase,
    });
    spec.interval = 86_400 / PERIOD as u64; // One day spans PERIOD samples.
    spec
}

fn main() {
    let trials = 25u64;
    println!("Seasonality-handling ablation: STL vs moving average ({trials} trials/cell)\n");
    // Duty 1: pure seasonality must NOT look like a regression.
    let mut stl_fp = 0;
    let mut ma_fp = 0;
    for t in 0..trials {
        let values = seasonal_spec(0.12, t * 1_800).generate(t).unwrap();
        stl_fp += stl_judges_regression(&values) as usize;
        ma_fp += ma_judges_regression(&values) as usize;
    }
    // Duty 1b: *drifting* seasonality (amplitude grows slightly) — STL's
    // strength is tolerating slight seasonal change without flagging.
    let mut stl_fp_drift = 0;
    let mut ma_fp_drift = 0;
    for t in 0..trials {
        let base = seasonal_spec(0.10, t * 911).generate(t + 100).unwrap();
        // Amplify the cycle by 15% in the last third (seasonal drift).
        let values: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i >= 2 * LEN / 3 {
                    10.0 + (v - 10.0) * 1.15
                } else {
                    v
                }
            })
            .collect();
        stl_fp_drift += stl_judges_regression(&values) as usize;
        ma_fp_drift += ma_judges_regression(&values) as usize;
    }
    // Duty 2: a true step riding on seasonality must be preserved.
    let mut stl_tp = 0;
    let mut ma_tp = 0;
    for t in 0..trials {
        let spec = seasonal_spec(0.12, t * 733).with_event(Event::Step { at: CP, delta: 0.8 });
        let values = spec.generate(t + 200).unwrap();
        stl_tp += stl_judges_regression(&values) as usize;
        ma_tp += ma_judges_regression(&values) as usize;
    }
    let rows = vec![
        vec![
            "pure seasonality flagged (lower=better)".to_string(),
            format!("{stl_fp}/{trials}"),
            format!("{ma_fp}/{trials}"),
        ],
        vec![
            "drifting seasonality flagged (lower=better)".to_string(),
            format!("{stl_fp_drift}/{trials}"),
            format!("{ma_fp_drift}/{trials}"),
        ],
        vec![
            "true step kept (higher=better)".to_string(),
            format!("{stl_tp}/{trials}"),
            format!("{ma_tp}/{trials}"),
        ],
    ];
    println!(
        "{}",
        render_table(&["duty", "STL", "moving average"], &rows)
    );
    println!(
        "\npaper's choice: STL — robust to sudden changes (keeps true steps)\n\
         while absorbing slight seasonal drift."
    );
    assert!(
        stl_tp >= (trials as usize * 9) / 10,
        "STL must keep true steps"
    );
    assert!(
        stl_fp_drift <= ma_fp_drift,
        "STL should tolerate seasonal drift at least as well as MA"
    );
}
