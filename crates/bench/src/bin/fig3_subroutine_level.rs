//! Figure 3: subroutine-level measurement detects the same shift with
//! 1000× fewer servers.
//!
//! The process CPU of Figure 2 is distributed across k = 1000 subroutines;
//! the monitored subroutine's variance is k× smaller (Expression 2) while
//! the regression lands wholly within it, so m ∈ {500, 5K, 50K} matches
//! Figure 2's m ∈ {500K, 5M, 50M}.
//!
//! Run with: `cargo run --release -p fbd-bench --bin fig3_subroutine_level`

use fbd_bench::{render_table, sparkline};
use fbd_fleet::lln::{
    averaged_fleet_series, averaged_subroutine_series, shift_signal_to_noise, FIGURE2_POPULATIONS,
};
use fbd_stats::{cusum, hypothesis};

fn regenerate(m: u64, len: usize, change_at: usize, seed: u64) -> Vec<f64> {
    averaged_subroutine_series(&FIGURE2_POPULATIONS, 1_000, m, len, change_at, seed, 0)
        .expect("valid populations")
}

fn main() {
    let len = 1_000;
    let change_at = len / 2;
    let k = 1_000;
    println!("Figure 3: subroutine-level fleet averages, k = {k} subroutines\n");
    let mut rows = Vec::new();
    for (i, m) in [500u64, 5_000, 50_000].into_iter().enumerate() {
        let avg = averaged_subroutine_series(
            &FIGURE2_POPULATIONS,
            k,
            m,
            len,
            change_at,
            20 + i as u64,
            0,
        )
        .expect("valid populations");
        println!("  m = {m:>7}: {}", sparkline(&avg, 72));
        let snr = shift_signal_to_noise(&avg, change_at).unwrap();
        let cp = cusum::detect_change_point(&avg).unwrap();
        // Reliability across five independent seeds: the change point must
        // be located within ±2% of the truth and pass the likelihood-ratio
        // test each time. Low-m averages locate it only by luck.
        let mut reliable = 0;
        for extra in 0..5u64 {
            let trial = regenerate(m, len, change_at, 40 + i as u64 * 5 + extra);
            let Ok(tcp) = cusum::detect_change_point(&trial) else {
                continue;
            };
            let located = (tcp.index as i64 - change_at as i64).unsigned_abs() < len as u64 / 50;
            if located
                && hypothesis::likelihood_ratio_test(&trial, tcp.index, 0.01)
                    .map(|t| t.reject_null)
                    .unwrap_or(false)
            {
                reliable += 1;
            }
        }
        rows.push(vec![
            format!("{m}"),
            format!("{snr:.2}"),
            format!("{}", cp.index),
            format!("{reliable}/5"),
        ]);
    }
    println!();
    println!(
        "{}",
        render_table(
            &[
                "m (servers)",
                "shift SNR",
                "CUSUM change point",
                "reliably located"
            ],
            &rows
        )
    );
    // The equivalence claim: m=50K at subroutine level ≈ m=50M at process
    // level.
    let process = shift_signal_to_noise(
        &averaged_fleet_series(&FIGURE2_POPULATIONS, 50_000_000, len, change_at, 30, 0).unwrap(),
        change_at,
    )
    .unwrap();
    let subroutine = shift_signal_to_noise(
        &averaged_subroutine_series(&FIGURE2_POPULATIONS, k, 50_000, len, change_at, 30, 0)
            .unwrap(),
        change_at,
    )
    .unwrap();
    println!(
        "equivalence: SNR(process, m=50M) = {process:.2} vs SNR(subroutine, m=50K) = {subroutine:.2}\n\
         -> subroutine-level measurement needs {k}x fewer servers, as the paper claims."
    );
}
