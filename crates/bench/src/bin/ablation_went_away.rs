//! Ablation: the three design iterations of the went-away detector
//! (§5.2.2).
//!
//! - **v1**: inverse-CUSUM compensation — filter when a post-change inverse
//!   shift compensates the regression. Fails on true regressions followed
//!   by a temporary dip.
//! - **v2**: Mann-Kendall decreasing trend + comparison against a
//!   historical window. Fails when the chosen baseline window contains a
//!   spike (Figure 7).
//! - **v3** (shipped): SAX pattern comparison + the full predicate.
//!
//! Each iteration is scored on four scenario families; higher is better.
//!
//! Run with: `cargo run --release -p fbd-bench --bin ablation_went_away`

use fbd_bench::render_table;
use fbd_fleet::spec::{Event, SeriesSpec};
use fbd_stats::descriptive;
use fbd_stats::trend::{mann_kendall, TrendDirection};
use fbd_tsdb::WindowedData;
use fbd_tsdb::{MetricKind, SeriesId};
use fbdetect_core::config::{DetectorConfig, Threshold};
use fbdetect_core::types::{Regression, RegressionKind};
use fbdetect_core::went_away::WentAwayDetector;

const LEN: usize = 900;
const H: usize = 600;
const A: usize = 200;

/// Wraps a raw series into the Regression type at change point `cp`.
fn regression(values: &[f64], cp: usize) -> Regression {
    let historic = values[..H].to_vec();
    let analysis = values[H..H + A].to_vec();
    let extended = values[H + A..].to_vec();
    let before = &values[..=cp];
    let after = &values[cp + 1..(H + A).min(values.len())];
    Regression {
        series: SeriesId::new("svc", MetricKind::GCpu, "x"),
        kind: RegressionKind::ShortTerm,
        change_index: cp,
        change_time: cp as u64 * 60,
        mean_before: descriptive::mean(before).unwrap(),
        mean_after: descriptive::mean(after).unwrap_or(values[cp]),
        windows: WindowedData::from_regions(
            &historic,
            &analysis,
            &extended,
            H as u64 * 60,
            (H + A) as u64 * 60,
        ),
        root_cause_candidates: vec![],
    }
}

/// v1: inverse-CUSUM compensation check — "find an inverse regression and
/// check whether its magnitude sufficiently compensates" (§5.2.2, first
/// iteration). Scans every split of the post-change window for the most
/// negative mean shift. Returns `true` to KEEP.
fn v1_keep(r: &Regression) -> bool {
    let data = r.windows.all();
    let post = &data[r.change_index + 1..];
    if post.len() < 8 {
        return true;
    }
    let mut prefix = Vec::with_capacity(post.len() + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &v in post {
        acc += v;
        prefix.push(acc);
    }
    let n = post.len();
    let mut worst_drop = 0.0f64;
    for split in 4..n - 4 {
        let before = prefix[split] / split as f64;
        let after = (prefix[n] - prefix[split]) / (n - split) as f64;
        worst_drop = worst_drop.min(after - before);
    }
    // Filter when an inverse shift compensates at least half the original.
    !(worst_drop < 0.0 && worst_drop.abs() >= 0.5 * r.magnitude().abs())
}

/// v2: Mann-Kendall decreasing + compare end values against a historical
/// window (deliberately the paper's "window that happens to contain a
/// spike" hazard: the window with the historic maximum is chosen).
fn v2_keep(r: &Regression) -> bool {
    let data = r.windows.all();
    let post = &data[r.change_index + 1..];
    if post.len() < 8 {
        return true;
    }
    let trend = mann_kendall(post, 0.05).map(|m| m.direction);
    let decreasing = matches!(trend, Ok(TrendDirection::Decreasing));
    // Baseline: the 30-sample historic window around the historic maximum —
    // a plausible but hazardous choice.
    let historic = r.windows.historic();
    let max_at = historic
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let lo = max_at.saturating_sub(15);
    let hi = (max_at + 15).min(historic.len());
    let baseline = descriptive::mean(&historic[lo..hi]).unwrap();
    let tail = &post[post.len().saturating_sub(10)..];
    let tail_mean = descriptive::mean(tail).unwrap();
    // "Recovered to the normal level" -> filter.
    if decreasing && tail_mean <= baseline {
        return false;
    }
    // Regression persists only if the end stays above the (spiky) baseline.
    tail_mean > baseline
}

struct Scenario {
    name: &'static str,
    /// Ground truth: should the detector keep it?
    keep_truth: bool,
    series: Vec<(Vec<f64>, usize)>,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    // (1) Persistent step.
    let mut series = Vec::new();
    for s in 0..20 {
        let v = SeriesSpec::flat(LEN, 1.0, 0.03)
            .with_event(Event::Step {
                at: 660,
                delta: 0.5,
            })
            .generate(s)
            .unwrap();
        series.push((v, 659));
    }
    out.push(Scenario {
        name: "persistent step (true regression)",
        keep_truth: true,
        series,
    });
    // (2) Step followed by a temporary dip (v1's trap).
    let mut series = Vec::new();
    for s in 0..20 {
        let v = SeriesSpec::flat(LEN, 1.0, 0.03)
            .with_event(Event::Step {
                at: 660,
                delta: 0.5,
            })
            .with_event(Event::Transient {
                at: 700,
                duration: 150,
                delta: -0.45,
            })
            .generate(100 + s)
            .unwrap();
        series.push((v, 659));
    }
    out.push(Scenario {
        name: "step + temporary dip (still true)",
        keep_truth: true,
        series,
    });
    // (3) Figure 7: historic spike + final true step (v2's trap).
    let mut series = Vec::new();
    for s in 0..20 {
        let v = SeriesSpec::flat(LEN, 1.0, 0.03)
            .with_event(Event::Transient {
                at: 300,
                duration: 40,
                delta: 0.8,
            })
            .with_event(Event::Step {
                at: 700,
                delta: 0.5,
            })
            .generate(200 + s)
            .unwrap();
        series.push((v, 699));
    }
    out.push(Scenario {
        name: "historic spike + final step (Fig 7)",
        keep_truth: true,
        series,
    });
    // (4) Pure transient (everyone should filter).
    let mut series = Vec::new();
    for s in 0..20 {
        let v = SeriesSpec::flat(LEN, 1.0, 0.03)
            .with_event(Event::Transient {
                at: 660,
                duration: 120,
                delta: 0.5,
            })
            .generate(300 + s)
            .unwrap();
        series.push((v, 659));
    }
    out.push(Scenario {
        name: "transient that recovers (false)",
        keep_truth: false,
        series,
    });
    out
}

fn main() {
    let config = DetectorConfig::new(
        "ablation",
        fbd_bench::suite_windows(LEN),
        Threshold::Absolute(0.1),
    );
    let v3 = WentAwayDetector::from_config(&config);
    println!("Went-away detector ablation (correct decisions out of 20 per cell)\n");
    let mut rows = Vec::new();
    let mut totals = [0usize; 3];
    for scenario in scenarios() {
        let mut correct = [0usize; 3];
        for (values, cp) in &scenario.series {
            let r = regression(values, *cp);
            let verdicts = [
                v1_keep(&r),
                v2_keep(&r),
                v3.evaluate(&r).map(|v| v.keep).unwrap_or(true),
            ];
            for (i, &keep) in verdicts.iter().enumerate() {
                if keep == scenario.keep_truth {
                    correct[i] += 1;
                }
            }
        }
        for (t, c) in totals.iter_mut().zip(&correct) {
            *t += c;
        }
        rows.push(vec![
            scenario.name.to_string(),
            if scenario.keep_truth {
                "keep"
            } else {
                "filter"
            }
            .to_string(),
            format!("{}", correct[0]),
            format!("{}", correct[1]),
            format!("{}", correct[2]),
        ]);
    }
    rows.push(vec![
        "TOTAL".to_string(),
        String::new(),
        format!("{}", totals[0]),
        format!("{}", totals[1]),
        format!("{}", totals[2]),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "truth",
                "v1 inverse-CUSUM",
                "v2 MK+window",
                "v3 SAX (shipped)"
            ],
            &rows
        )
    );
    println!(
        "\npaper's narrative: v1 is fooled by post-regression dips, v2 by spiky\n\
         baselines; the SAX-based third iteration handles all scenarios."
    );
    assert!(totals[2] >= totals[0], "v3 must beat v1 overall");
    assert!(totals[2] >= totals[1], "v3 must beat v2 overall");
    assert!(
        totals[2] >= 70,
        "v3 should be nearly perfect, got {}",
        totals[2]
    );
}
