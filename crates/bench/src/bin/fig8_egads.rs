//! Figure 8: FBDetect vs Yahoo EGADS on the same windows.
//!
//! Test data mirrors §6.5: a small set of positive series (true
//! regressions) and a large set of negatives (noise, transients,
//! seasonality). FBDetect runs its full short-term pipeline; each EGADS
//! algorithm (adaptive kernel density, extreme low density, K-Sigma) is
//! swept across sensitivities to trace its FPR/FNR trade-off curve.
//! For fairness, EGADS sees the same historical window and the combined
//! analysis+extended windows, as in the paper.
//!
//! Scale with `SCALE=4 ... --bin fig8_egads` (default ~1,200 negatives;
//! the paper used 35K).

use fbd_bench::{render_table, suite_config, suite_scan_time, suite_windows};
use fbd_egads::{AdaptiveKernelDensity, EgadsDetector, ExtremeLowDensity, KSigma};
use fbd_fleet::scenarios::{labelled_suite, SuiteConfig};
use fbd_tsdb::{window::extract_windows, MetricKind, SeriesId};
use fbdetect_core::change_point::ChangePointDetector;
use fbdetect_core::seasonality::SeasonalityDetector;
use fbdetect_core::went_away::WentAwayDetector;
use fbdetect_core::Threshold;

const LEN: usize = 900;

fn main() {
    let scale: usize = std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    // Positives: 100 true regressions; negatives: noise + transients +
    // seasonal series.
    let suite_cfg = SuiteConfig {
        clean: 700 * scale,
        regressions: 100,
        gradual: 0,
        transients: 400 * scale,
        seasonal: 100 * scale,
        len: LEN,
        change_fraction: 0.75,
        relative_magnitude_range: (0.001, 0.15),
        base: 1.0,
        noise_std: 0.0005,
    };
    let suite = labelled_suite(&suite_cfg, 2024).unwrap();
    let positives = fbd_bench::true_regression_indices(&suite);
    let negatives = suite.len() - positives.len();
    println!(
        "test data: {} positives, {} negatives\n",
        positives.len(),
        negatives
    );

    // --- FBDetect: the per-series detection filters (change point ->
    // went-away -> seasonality -> threshold). Deduplication merges reports
    // of one root cause but does not change per-series verdicts, so the
    // fair per-series comparison — matching what EGADS judges — excludes
    // it. ---
    let config = suite_config(LEN, Threshold::Absolute(0.0008));
    let change_point = ChangePointDetector::from_config(&config);
    let went_away = WentAwayDetector::from_config(&config);
    let seasonality = SeasonalityDetector::from_config(&config);
    let now = suite_scan_time(LEN);
    let mut fp = 0usize;
    let mut fn_count = 0usize;
    for (i, labelled) in suite.iter().enumerate() {
        let ts = fbd_tsdb::TimeSeries::from_values(0, fbd_bench::CADENCE, &labelled.values);
        let id = SeriesId::new("svc", MetricKind::GCpu, format!("s{i:05}"));
        let windows = extract_windows(&ts, &config.windows, now).expect("windows cover suite");
        let verdict = match change_point.detect(&id, &windows, now).unwrap() {
            None => false,
            Some(r) => {
                went_away.evaluate(&r).unwrap().keep
                    && seasonality.evaluate(&r).unwrap().keep
                    && config.threshold.is_met(r.mean_before, r.mean_after)
            }
        };
        match (verdict, positives.contains(&i)) {
            (true, false) => fp += 1,
            (false, true) => fn_count += 1,
            _ => {}
        }
    }
    let fbdetect_fpr = fp as f64 / negatives as f64;
    let fbdetect_fnr = fn_count as f64 / positives.len() as f64;
    println!("FBDetect: FPR = {fbdetect_fpr:.5}, FNR = {fbdetect_fnr:.3}  (paper: 0.00088, ~0)\n");

    // --- EGADS algorithms, swept across sensitivities. ---
    let windows_cfg = suite_windows(LEN);
    let mut rows = Vec::new();
    let now = suite_scan_time(LEN);
    let series_windows: Vec<(usize, Vec<f64>, Vec<f64>)> = suite
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let ts = fbd_tsdb::TimeSeries::from_values(0, fbd_bench::CADENCE, &s.values);
            let w = extract_windows(&ts, &windows_cfg, now).expect("windows cover suite");
            // EGADS merges analysis and extended windows (§6.5).
            let analysis = w.analysis_and_extended().to_vec();
            (i, w.historic().to_vec(), analysis)
        })
        .collect();
    let mut best_ok: Option<(String, f64, f64)> = None;
    for (name, detectors) in [
        (
            "adaptive kernel density",
            (0..6)
                .map(|i| {
                    Box::new(AdaptiveKernelDensity::new(0.2 + i as f64 * 0.8))
                        as Box<dyn EgadsDetector>
                })
                .collect::<Vec<_>>(),
        ),
        (
            "extreme low density",
            (0..6)
                .map(|i| {
                    Box::new(ExtremeLowDensity::new(0.05 + i as f64 * 0.6))
                        as Box<dyn EgadsDetector>
                })
                .collect(),
        ),
        (
            "K-Sigma",
            (0..6)
                .map(|i| Box::new(KSigma::new(1.0 + i as f64 * 6.0)) as Box<dyn EgadsDetector>)
                .collect(),
        ),
    ] {
        for (si, detector) in detectors.iter().enumerate() {
            let mut fp = 0usize;
            let mut fn_count = 0usize;
            for (i, historical, analysis) in &series_windows {
                let verdict = detector.detect(historical, analysis);
                let is_positive = positives.contains(i);
                match (verdict.anomalous, is_positive) {
                    (true, false) => fp += 1,
                    (false, true) => fn_count += 1,
                    _ => {}
                }
            }
            let fpr = fp as f64 / negatives as f64;
            let fnr = fn_count as f64 / positives.len() as f64;
            rows.push(vec![
                name.to_string(),
                format!("{si}"),
                format!("{fpr:.4}"),
                format!("{fnr:.3}"),
            ]);
            // Track whether any EGADS point beats FBDetect on both axes.
            if fpr <= fbdetect_fpr && fnr <= fbdetect_fnr + 1e-12 {
                best_ok = Some((name.to_string(), fpr, fnr));
            }
        }
    }
    println!(
        "{}",
        render_table(&["EGADS algorithm", "sensitivity#", "FPR", "FNR"], &rows)
    );
    println!(
        "\npaper's shape: every EGADS curve trades FPR against FNR — none\n\
         reaches FBDetect's corner of simultaneously low FPR and low FNR."
    );
    match best_ok {
        None => println!("confirmed: no EGADS point dominates FBDetect ✓"),
        Some((name, fpr, fnr)) => println!(
            "NOTE: {name} reached FPR={fpr:.4}, FNR={fnr:.3} (ties FBDetect on this workload)"
        ),
    }
    assert!(fbdetect_fnr <= 0.1, "FBDetect FNR too high: {fbdetect_fnr}");
    assert!(
        fbdetect_fpr <= 0.02,
        "FBDetect FPR too high: {fbdetect_fpr}"
    );
}
