//! Steady-state scheduler-round cadence: the streaming scan engine's
//! headline benchmark.
//!
//! A production scheduler does not scan a frozen store: every re-run
//! interval it scans series that grew by a handful of points since the
//! last round, with the scan watermark quantized to re-run boundaries
//! (§5.1's "rerun interval"). This harness drives that loop end to end:
//! each round appends `k ∈ [1, 30]` fresh points per series (a
//! deterministic per-series/per-round mix), then scans with the streaming
//! engine on and — over the identical store state — with it off, asserting
//! byte-identical reports and funnel counters every round.
//!
//! Reported numbers:
//! - `cold_rounds_per_sec` — the engine-off rate, with the pipeline's
//!   seasonality/STL caches warm: the strongest honest baseline, i.e. what
//!   a scheduler round costs without round-over-round reuse.
//! - `steady_rounds_per_sec` — engine-on rounds where the watermark did not
//!   move (the common case; appends land at or past the watermark, so the
//!   engine replays cached outcomes after a version/partition check).
//! - `boundary_rounds_per_sec` — engine-on rounds where the watermark
//!   jumped a re-run boundary and windows genuinely moved.
//!
//! The allocation-freedom satellite is asserted here too: after warmup the
//! engine's `buffer_growth` counter must stop moving — steady-state rounds
//! recycle their window buffers instead of growing fresh ones.
//!
//! Results merge into `BENCH_pipeline.json` under `"round_cadence"`.
//!
//! Run with: `cargo run --release -p fbd-bench --bin round_cadence`

use fbd_bench::{
    compress_enabled, ingest_enabled, load_suite_store, render_table, suite_config,
    suite_scan_time, CADENCE,
};
use fbd_fleet::scenarios::{labelled_suite, SuiteConfig};
use fbd_tsdb::MetricKind;
use fbdetect_core::{report, Pipeline, ScanContext, StageNanos, Threshold};
use std::time::Instant;

const LEN: usize = 900;
const ROUNDS: usize = 24;
/// Rounds excluded from the steady-state average while caches and the
/// engine warm up.
const WARMUP: usize = 4;

/// Deterministic per-series, per-round append count in `[1, 30]`.
fn appends_for(series: usize, round: usize) -> usize {
    1 + (series * 7 + round * 13) % 30
}

fn main() {
    let n_series: usize = std::env::var("SERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    // Same production-like mix and seed as capacity_scaling, so the two
    // records in BENCH_pipeline.json describe the same population.
    let suite_cfg = SuiteConfig {
        clean: n_series * 7 / 10,
        regressions: n_series / 100,
        gradual: 0,
        transients: n_series / 4,
        seasonal: n_series / 25,
        len: LEN,
        change_fraction: 0.75,
        relative_magnitude_range: (0.01, 0.2),
        base: 1.0,
        noise_std: 0.002,
    };
    let suite = labelled_suite(&suite_cfg, 777).unwrap();
    // INGEST=1 builds the starting store through the ingest front-end;
    // the per-round appends below stay direct (they are the scan bench's
    // workload model, not ingestion).
    let via_ingest = ingest_enabled();
    let (store, ids) = load_suite_store(&suite, "svc", MetricKind::GCpu, via_ingest);
    let n = ids.len();
    let config = suite_config(LEN, Threshold::Absolute(0.01));
    let rerun = config.windows.rerun_interval;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "round cadence: {n} series x {ROUNDS} rounds, 1..=30 appended points/series/round,\n\
         rerun interval {rerun} s, cores {cores}\n"
    );

    let mut warm = Pipeline::new(suite_config(LEN, Threshold::Absolute(0.01))).unwrap();
    let mut cold = Pipeline::new(suite_config(LEN, Threshold::Absolute(0.01))).unwrap();
    cold.set_streaming(false);
    // Worker count: the pipeline default, capped at the physical core
    // count (THREADS overrides). Workers beyond physical cores only add
    // time-slicing overhead on this bench's fixed 2000-series rounds, and
    // — worse — they poison the per-stage attribution: time-sliced workers
    // all accumulate wall time concurrently, inflating every stage by the
    // oversubscription factor.
    let threads = std::env::var("THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| warm.threads.min(cores));
    warm.threads = threads;
    cold.threads = threads;

    // Continuation level per series: the median of the trailing 128
    // points, robust to a transient that overlaps the tail. Appends must
    // continue the series at its genuine level — centering them on the
    // single (noisy) last sample would inject a real sub-sigma level
    // shift into every boundary round.
    let level: Vec<f64> = suite
        .iter()
        .map(|s| {
            let mut tail: Vec<f64> = s.values[LEN - 128..].to_vec();
            tail.sort_by(f64::total_cmp);
            (tail[63] + tail[64]) / 2.0
        })
        .collect();
    // Per-series ingestion frontier: the next timestamp each series writes.
    let mut frontier: Vec<u64> = vec![suite_scan_time(LEN); n];
    // The scan watermark trails the slowest series, quantized to re-run
    // boundaries — the production scheduler's clock model. Appends always
    // land at or past it, so an unmoved watermark means unmoved windows.
    let mut now = suite_scan_time(LEN);

    let mut steady_secs = 0.0;
    let mut steady_rounds = 0usize;
    let mut boundary_secs = 0.0;
    let mut boundary_rounds = 0usize;
    let mut cold_secs = 0.0;
    let mut cold_rounds = 0usize;
    let mut growth_before_round = 0u64;
    let mut steady_growth = 0u64;
    let mut rows = Vec::new();
    // Per-stage attribution: cumulative profile snapshots are diffed per
    // round and folded into the matching bucket (post-warmup only).
    let mut warm_prof_mark = warm.stage_profile();
    let mut cold_prof_mark = cold.stage_profile();
    let mut boundary_prof = StageNanos::default();
    let mut steady_prof = StageNanos::default();
    let mut cold_prof = StageNanos::default();

    for round in 0..ROUNDS {
        for (i, id) in ids.iter().enumerate() {
            let k = appends_for(i, round);
            for _ in 0..k {
                // Fresh points continue the series' tail with deterministic
                // pseudo-noise whose std matches the suite's noise_std
                // (0.002): clean series must keep looking clean after the
                // append, or every boundary round manufactures genuine
                // variance-drop change points that no engine may skip.
                let t = frontier[i];
                let mut z = t ^ ((i as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let unit = (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                // Uniform on [-a, a] has std a/sqrt(3); pick a for std 0.002.
                let v = level[i] + unit * 2.0 * 0.002 * 3.0f64.sqrt();
                store.append(id, t, v).unwrap();
                frontier[i] += CADENCE;
            }
        }
        let slowest = frontier.iter().copied().min().unwrap_or(now);
        let quantized = slowest / rerun * rerun;
        let moved = quantized > now;
        now = now.max(quantized);

        let start = Instant::now();
        let w = warm.scan(&store, &ids, now, &ScanContext::default()).unwrap();
        let warm_elapsed = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let c = cold.scan(&store, &ids, now, &ScanContext::default()).unwrap();
        let cold_elapsed = start.elapsed().as_secs_f64();

        // Byte-identity every round: the engine may only skip work, never
        // change what the scan reports.
        let wf = format!(
            "{}{:?}|{:?}",
            report::render_batch(&w.reports, None),
            w.funnel,
            w.health
        );
        let cf = format!(
            "{}{:?}|{:?}",
            report::render_batch(&c.reports, None),
            c.funnel,
            c.health
        );
        assert_eq!(
            wf, cf,
            "round {round}: streaming and cold scans diverged at now={now}"
        );

        let stats = warm.streaming_stats().unwrap();
        if round >= WARMUP && !moved {
            steady_growth += stats.buffer_growth - growth_before_round;
        }
        growth_before_round = stats.buffer_growth;
        let warm_round_prof = warm.stage_profile();
        let cold_round_prof = cold.stage_profile();
        if round >= WARMUP {
            cold_secs += cold_elapsed;
            cold_rounds += 1;
            cold_prof.accumulate(&cold_round_prof.since(&cold_prof_mark));
            if moved {
                boundary_secs += warm_elapsed;
                boundary_rounds += 1;
                boundary_prof.accumulate(&warm_round_prof.since(&warm_prof_mark));
            } else {
                steady_secs += warm_elapsed;
                steady_rounds += 1;
                steady_prof.accumulate(&warm_round_prof.since(&warm_prof_mark));
            }
        }
        warm_prof_mark = warm_round_prof;
        cold_prof_mark = cold_round_prof;
        rows.push(vec![
            format!("{round}"),
            format!("{now}"),
            if moved { "jump".into() } else { "held".into() },
            format!("{:.1} ms", warm_elapsed * 1e3),
            format!("{:.1} ms", cold_elapsed * 1e3),
            format!("{}", stats.reused_full),
            format!("{}", stats.advanced_online),
            format!("{}", stats.scanned),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "round",
                "watermark",
                "window",
                "streaming",
                "cold",
                "reused(cum)",
                "online(cum)",
                "scanned(cum)"
            ],
            &rows
        )
    );

    let stats = warm.streaming_stats().unwrap();
    println!("engine counters: {stats:?}\n");

    // Storage footprint after all rounds' appends, under the policy the
    // environment selected (COMPRESS=1 / SHARD_BUDGET_MB).
    let storage = store.stats();
    let resident_bytes = storage.resident_bytes();
    let bytes_per_point = storage.bytes_per_point();
    println!(
        "storage: {:.1} MiB resident, {bytes_per_point:.2} B/point, {} sealed blocks\n\
         decode:  {} blocks decoded, {} cache hits, {} summary hits\n",
        resident_bytes as f64 / (1024.0 * 1024.0),
        storage.sealed_blocks(),
        storage.blocks_decoded(),
        storage.decode_cache_hits(),
        stats.summary_hits,
    );

    let steady_rate = steady_rounds as f64 / steady_secs.max(1e-12);
    let boundary_rate = if boundary_rounds > 0 {
        boundary_rounds as f64 / boundary_secs.max(1e-12)
    } else {
        0.0
    };
    let cold_rate = cold_rounds as f64 / cold_secs.max(1e-12);
    let speedup = steady_rate / cold_rate.max(1e-12);
    println!(
        "steady-state: {steady_rate:.2} rounds/s over {steady_rounds} held-watermark rounds \
         ({:.0} series/s)",
        steady_rate * n as f64
    );
    if boundary_rounds > 0 {
        println!("boundary:     {boundary_rate:.2} rounds/s over {boundary_rounds} jump rounds");
    }
    let boundary_speedup = boundary_rate / cold_rate.max(1e-12);
    println!(
        "cold:         {cold_rate:.2} rounds/s (engine off, caches warm)\n\
         steady-state speedup over cold: {speedup:.2}x\n\
         boundary speedup over cold:     {boundary_speedup:.2}x"
    );

    // Stage-by-stage attribution of boundary rounds (the watermark-jump
    // case this bench exists to speed up), next to the cold baseline.
    let per_series = |prof: &StageNanos, rounds: usize| -> Vec<(&'static str, f64)> {
        let denom = (rounds * n).max(1) as f64;
        prof.named().iter().map(|&(name, ns)| (name, ns as f64 / denom)).collect()
    };
    if boundary_rounds > 0 {
        let b = per_series(&boundary_prof, boundary_rounds);
        let s = per_series(&steady_prof, steady_rounds);
        let c = per_series(&cold_prof, cold_rounds);
        let mut stage_rows = Vec::new();
        for ((name, bv), ((_, sv), (_, cv))) in b.iter().zip(s.iter().zip(&c)) {
            stage_rows.push(vec![
                name.to_string(),
                format!("{bv:.0}"),
                format!("{sv:.0}"),
                format!("{cv:.0}"),
            ]);
        }
        println!(
            "\nper-stage ns/series (post-warmup averages):\n{}",
            render_table(&["stage", "boundary", "steady", "cold"], &stage_rows)
        );
        // CI latency guard: MAX_WINDOWING_NS (boundary windowing
        // ns/series, derived from the committed BENCH_pipeline.json's
        // `boundary_stage_ns_per_series.windowing` with headroom) fails
        // the run if tail-incremental extraction regresses on watermark
        // jumps — the rounds this bench exists to keep cheap.
        if let Some(ceiling) = std::env::var("MAX_WINDOWING_NS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
        {
            let windowing_ns = b
                .iter()
                .find(|(name, _)| *name == "windowing")
                .map(|&(_, ns)| ns)
                .unwrap_or(f64::INFINITY);
            assert!(
                windowing_ns <= ceiling,
                "boundary windowing regressed: {windowing_ns:.0} ns/series > ceiling {ceiling:.0}"
            );
            println!(
                "MAX_WINDOWING_NS guard passed: {windowing_ns:.0} <= {ceiling:.0} ns/series"
            );
        }
    }

    // Allocation proxy: once warm, steady-state rounds must recycle their
    // window buffers — any growth there means the hot loop is allocating.
    // Boundary rounds may still grow the pool when a series falls back to
    // the cold kernels for the first time, but never past one buffer set
    // per series.
    assert_eq!(
        steady_growth, 0,
        "window buffers grew by {steady_growth} during held-watermark rounds after warmup"
    );
    assert!(
        stats.buffer_growth <= n as u64,
        "window buffer pool outgrew the series count: {} buffers for {n} series",
        stats.buffer_growth
    );
    assert!(
        stats.reused_full > 0,
        "no round ever replayed a cached outcome; the steady-state path never ran"
    );
    assert!(
        steady_rounds > 0 && boundary_rounds > 0,
        "schedule produced no steady ({steady_rounds}) or no boundary ({boundary_rounds}) rounds"
    );
    // The tentpole acceptance floor, overridable for slow CI runners via
    // MIN_SPEEDUP (e.g. MIN_SPEEDUP=2 on shared runners).
    let min_speedup = std::env::var("MIN_SPEEDUP")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(3.0);
    assert!(
        speedup >= min_speedup,
        "steady-state rounds are only {speedup:.2}x the cold rate (need >= {min_speedup:.1}x)"
    );
    println!("speedup floor passed: {speedup:.2}x >= {min_speedup:.1}x");

    // Level C must carry boundary rounds: in steady append traffic the
    // online refuters advance most series, falling back cold only where a
    // genuine candidate (or non-finite data) demands the full kernels.
    assert!(
        stats.advanced_online > stats.online_fallbacks,
        "online detectors fell back more than they advanced: {} advances vs {} fallbacks",
        stats.advanced_online,
        stats.online_fallbacks
    );
    // The boundary floor is deliberately lower than the steady floor: the
    // word-buffered Gorilla decoder and the shard decode cache together
    // nearly tripled the *cold* baseline (decode dominated cold windowing),
    // which compresses this ratio even though boundary rounds got faster in
    // absolute terms. What the floor guards is the Level C refutation path:
    // ~35% of the population is genuinely active (transients/seasonal/
    // regressions) and must run the full kernels for byte-identity, so a
    // healthy boundary round sits modestly above cold — losing refutation
    // entirely pushes it below parity, because boundary rounds also pay
    // for ingest while cold rounds read warm caches only.
    let min_boundary_speedup = std::env::var("MIN_BOUNDARY_SPEEDUP")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    assert!(
        boundary_speedup >= min_boundary_speedup,
        "boundary rounds are only {boundary_speedup:.2}x the cold rate \
         (need >= {min_boundary_speedup:.1}x)"
    );
    println!(
        "boundary speedup floor passed: {boundary_speedup:.2}x >= {min_boundary_speedup:.1}x"
    );

    // The zero-decode counters must actually move: every reuse level
    // increments `summary_hits`, and under compressed storage the per-round
    // tail copies both decode fresh seals (`blocks_decoded`) and re-serve
    // them from the shard decode cache while the head is still short
    // (`decode_cache_hits`). A zero here means the summary/cache path
    // silently stopped carrying the round loop.
    assert!(
        stats.summary_hits > 0,
        "no round was ever answered from summaries/partitions alone"
    );
    if compress_enabled() {
        assert!(
            storage.blocks_decoded() > 0,
            "compressed rounds decoded no sealed blocks — tail reads are broken"
        );
        assert!(
            storage.decode_cache_hits() > 0,
            "the decode cache never served a cross-round tail re-read"
        );
    }

    // Merge the record into BENCH_pipeline.json (written by
    // capacity_scaling) under a "round_cadence" key, preserving the rest.
    let stage_json = |prof: &StageNanos, rounds: usize| -> String {
        let denom = (rounds * n).max(1) as f64;
        let fields: Vec<String> = prof
            .named()
            .iter()
            .map(|&(name, ns)| format!("\"{name}\": {:.0}", ns as f64 / denom))
            .collect();
        format!("{{ {} }}", fields.join(", "))
    };
    let entry = format!(
        "\"round_cadence\": {{\n    \"series\": {n},\n    \"rounds\": {ROUNDS},\n    \
         \"cores\": {cores},\n    \"steady_rounds_per_sec\": {steady_rate:.3},\n    \
         \"boundary_rounds_per_sec\": {boundary_rate:.3},\n    \
         \"cold_rounds_per_sec\": {cold_rate:.3},\n    \
         \"steady_speedup\": {speedup:.2},\n    \
         \"boundary_speedup\": {boundary_speedup:.2},\n    \
         \"steady_series_per_sec\": {:.1},\n    \
         \"resident_bytes\": {resident_bytes},\n    \
         \"bytes_per_point\": {bytes_per_point:.2},\n    \
         \"reused_full\": {},\n    \"buffer_growth\": {},\n    \
         \"advanced_online\": {},\n    \"online_fallbacks\": {},\n    \
         \"summary_hits\": {},\n    \"blocks_decoded\": {},\n    \
         \"decode_cache_hits\": {},\n    \
         \"boundary_stage_ns_per_series\": {},\n    \
         \"steady_stage_ns_per_series\": {},\n    \
         \"cold_stage_ns_per_series\": {}\n  }}",
        steady_rate * n as f64,
        stats.reused_full,
        stats.buffer_growth,
        stats.advanced_online,
        stats.online_fallbacks,
        stats.summary_hits,
        storage.blocks_decoded(),
        storage.decode_cache_hits(),
        stage_json(&boundary_prof, boundary_rounds),
        stage_json(&steady_prof, steady_rounds),
        stage_json(&cold_prof, cold_rounds),
    );
    let out_path =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    let merged = match std::fs::read_to_string(&out_path) {
        Ok(existing) => {
            let body = existing.trim_end();
            let body = body.strip_suffix('}').unwrap_or(body).trim_end();
            // Replace a previous round_cadence entry if present.
            let body = match body.find(",\n  \"round_cadence\"") {
                Some(pos) => &body[..pos],
                None => body,
            };
            format!("{body},\n  {entry}\n}}\n")
        }
        Err(_) => format!("{{\n  {entry}\n}}\n"),
    };
    match std::fs::write(&out_path, &merged) {
        Ok(()) => println!("merged round_cadence into {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
