//! Table 4: magnitude distribution of detected regressions, plus the §6.2
//! false-positive/false-negative analysis.
//!
//! Production regressions arrive a few at a time across a month of scans —
//! never hundreds simultaneously — so the experiment runs in rounds: each
//! round is one scan over a population of clean/transient/seasonal series
//! plus a handful of true regressions whose magnitudes sweep a slice of
//! the paper's observed 0.005%–15% range. Detections are matched against
//! ground truth; percentiles of the detected relative magnitudes are
//! printed for All / TR / FP as in Table 4, followed by the §6.2 FP/FN
//! analysis.
//!
//! Run with: `cargo run --release -p fbd-bench --bin table4_magnitudes`
//! (`ROUNDS=120` for a bigger sample).

use fbd_bench::{load_suite, render_table, suite_config, suite_scan_time};
use fbd_fleet::scenarios::{labelled_suite, SeriesLabel, SuiteConfig};
use fbd_stats::descriptive::percentile;
use fbd_tsdb::MetricKind;
use fbdetect_core::{Pipeline, ScanContext, Threshold};

const LEN: usize = 900;
const REGRESSIONS_PER_ROUND: usize = 1;

fn percentile_row(name: &str, values: &[f64]) -> Vec<String> {
    if values.is_empty() {
        return vec![
            name.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ];
    }
    let fmt = |p: f64| format!("{:.4}%", percentile(values, p).unwrap() * 100.0);
    vec![
        name.to_string(),
        fmt(0.0),
        fmt(10.0),
        fmt(50.0),
        fmt(90.0),
        fmt(99.0),
        fmt(100.0),
    ]
}

fn main() {
    let rounds: usize = std::env::var("ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    // The full magnitude range, partitioned into per-round log slices so
    // the whole 0.005%..15% range is swept.
    let (range_lo, range_hi) = (0.00005f64, 0.15f64);
    println!(
        "Table 4: {rounds} rounds x {REGRESSIONS_PER_ROUND} regressions, magnitudes {:.3}%..{:.0}%\n",
        range_lo * 100.0,
        range_hi * 100.0
    );
    let mut all = Vec::new();
    let mut true_regressions = Vec::new();
    let mut false_positives = Vec::new();
    let mut fp_by_label: std::collections::HashMap<&str, usize> = Default::default();
    let mut truth_total = 0usize;
    let mut truth_caught = 0usize;
    let mut missed_above_threshold = 0usize;
    let mut negatives_total = 0usize;
    for round in 0..rounds {
        // This round's magnitude slice (log partition).
        let t0 = round as f64 / rounds as f64;
        let t1 = (round + 1) as f64 / rounds as f64;
        let lo = (range_lo.ln() + t0 * (range_hi.ln() - range_lo.ln())).exp();
        let hi = (range_lo.ln() + t1 * (range_hi.ln() - range_lo.ln())).exp();
        let suite_cfg = SuiteConfig {
            clean: 20,
            regressions: REGRESSIONS_PER_ROUND,
            gradual: 0,
            transients: 10,
            seasonal: 4,
            len: LEN,
            change_fraction: 0.75,
            relative_magnitude_range: (lo, hi),
            base: 1.0,
            // Noise floor compatible with detecting the smallest slice.
            noise_std: (lo / 10.0).max(2e-6),
        };
        let suite = labelled_suite(&suite_cfg, 7_000 + round as u64).unwrap();
        let (store, ids) = load_suite(&suite, "FrontFaaS", MetricKind::GCpu);
        // The detection threshold tracks the workload, as Table 1 does:
        // just under this round's smallest injected magnitude.
        let config = suite_config(LEN, Threshold::Absolute(lo * 0.8));
        let mut pipeline = Pipeline::new(config).unwrap();
        let out = pipeline
            .scan(&store, &ids, suite_scan_time(LEN), &ScanContext::default())
            .unwrap();
        let truth = fbd_bench::true_regression_indices(&suite);
        truth_total += truth.len();
        negatives_total += suite.len() - truth.len();
        let mut detected_indices = std::collections::HashSet::new();
        for r in &out.reports {
            let Some(idx) = fbd_bench::suite_index(&r.series) else {
                continue;
            };
            detected_indices.insert(idx);
            let magnitude = r.relative_change().abs();
            all.push(magnitude);
            match suite[idx].label {
                SeriesLabel::TrueRegression | SeriesLabel::TrueGradualRegression => {
                    true_regressions.push(magnitude)
                }
                label => {
                    false_positives.push(magnitude);
                    let name = match label {
                        SeriesLabel::Clean => "noise",
                        SeriesLabel::Transient => "transient not filtered",
                        SeriesLabel::SeasonalOnly => "seasonality not filtered",
                        _ => unreachable!(),
                    };
                    *fp_by_label.entry(name).or_insert(0) += 1;
                }
            }
        }
        for &i in &truth {
            if detected_indices.contains(&i) {
                truth_caught += 1;
            } else if suite[i].magnitude.abs() >= lo {
                missed_above_threshold += 1;
            }
        }
    }
    let rows = vec![
        percentile_row("All", &all),
        percentile_row("TR", &true_regressions),
        percentile_row("FP", &false_positives),
    ];
    println!(
        "{}",
        render_table(
            &["", "Smallest", "P10", "P50", "P90", "P99", "Largest"],
            &rows
        )
    );
    println!("\ndetected {} regressions total", all.len());
    println!(
        "true regressions: {truth_caught}/{truth_total} caught \
         ({missed_above_threshold} missed above the 0.005% threshold)"
    );
    println!(
        "false positives : {} ({:.3}% of {negatives_total} negative series)",
        false_positives.len(),
        100.0 * false_positives.len() as f64 / negatives_total as f64
    );
    if !fp_by_label.is_empty() {
        println!("false-positive taxonomy (paper: mostly cost shifts, then transients):");
        let mut entries: Vec<(&str, usize)> = fp_by_label.into_iter().collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.1));
        for (name, count) in entries {
            println!("  {count:>4}  {name}");
        }
    }
    if !true_regressions.is_empty() {
        println!(
            "\nsmallest detected true regression: {:.4}% (paper: 0.005%)",
            true_regressions.iter().cloned().fold(f64::MAX, f64::min) * 100.0
        );
    }
    // Shape assertions.
    let smallest = true_regressions.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        smallest < 0.0002,
        "smallest detected TR = {smallest}; expected ~0.00005"
    );
    assert!(
        truth_caught * 10 >= truth_total * 7,
        "too many false negatives: {truth_caught}/{truth_total}"
    );
    assert!(
        false_positives.len() * 50 <= negatives_total,
        "false-positive rate too high: {}/{negatives_total}",
        false_positives.len()
    );
}
