//! Figure 1: the three challenge scenarios.
//!
//! (a) a true 0.005% regression that is barely visible in single-server
//!     noise — FBDetect must catch it (at the subroutine level, with
//!     fleet-wide samples);
//! (b) a cost-shift false positive — a visible subroutine-level step that
//!     the cost-shift detector must filter;
//! (c) a transient throughput drop — a visible step that the went-away
//!     detector must filter.
//!
//! Run with: `cargo run --release -p fbd-bench --bin fig1_challenges`

use fbd_bench::sparkline;
use fbd_fleet::lln::{averaged_subroutine_series, shift_signal_to_noise, FIGURE2_POPULATIONS};
use fbd_fleet::scenarios::{figure1a, figure1b, figure1c};
use fbd_tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore, WindowConfig};
use fbdetect_core::cost_shift::{CostDomainProvider, CustomDomain};
use fbdetect_core::{DetectorConfig, Pipeline, ScanContext, Threshold};

fn main() {
    let len = 900usize;
    let windows = WindowConfig {
        historic: 600 * 60,
        analysis: 200 * 60,
        extended: 100 * 60,
        rerun_interval: 100 * 60,
    };
    let now = len as u64 * 60;

    // ---------- (a) the barely visible true regression ----------
    println!("=== Figure 1(a): true 0.005% regression, single server ===");
    let a = figure1a(len, 1).unwrap();
    println!("  {}", sparkline(&a.values, 72));
    let snr = shift_signal_to_noise(&a.values, a.change_at.unwrap()).unwrap();
    println!("  single-server SNR: {snr:+.3} — invisible, as in the paper");
    // Subroutine-level fleet aggregation makes it detectable.
    // The change lands inside the analysis window (samples 600..800).
    let fleet =
        averaged_subroutine_series(&FIGURE2_POPULATIONS, 1_000, 50_000, len, 675, 2, 0).unwrap();
    println!("  fleet-aggregated subroutine view:");
    println!("  {}", sparkline(&fleet, 72));
    let store = TsdbStore::new();
    let id = SeriesId::new("svc", MetricKind::GCpu, "tiny");
    store.insert_series(id.clone(), TimeSeries::from_values(0, 60, &fleet));
    let cfg = DetectorConfig::new("fig1a", windows, Threshold::Absolute(0.00003));
    let mut pipeline = Pipeline::new(cfg).unwrap();
    let out = pipeline
        .scan(&store, &[id], now, &ScanContext::default())
        .unwrap();
    println!(
        "  FBDetect verdict: {} regression(s) reported (magnitude {:+.6}%)",
        out.reports.len(),
        out.reports
            .first()
            .map(|r| r.magnitude() * 100.0)
            .unwrap_or(0.0)
    );
    assert_eq!(out.reports.len(), 1, "(a) must be caught");

    // ---------- (b) the cost-shift false positive ----------
    println!("\n=== Figure 1(b): cost-shift false positive ===");
    let (gained, lost) = figure1b(len, 3).unwrap();
    println!(
        "  destination subroutine: {}",
        sparkline(&gained.values, 72)
    );
    println!("  source subroutine     : {}", sparkline(&lost.values, 72));
    let store = TsdbStore::new();
    let id_gained = SeriesId::new("svc", MetricKind::GCpu, "dest");
    let id_lost = SeriesId::new("svc", MetricKind::GCpu, "src");
    store.insert_series(
        id_gained.clone(),
        TimeSeries::from_values(0, 60, &gained.values),
    );
    store.insert_series(
        id_lost.clone(),
        TimeSeries::from_values(0, 60, &lost.values),
    );
    let cfg = DetectorConfig::new("fig1b", windows, Threshold::Absolute(0.0001));
    let mut pipeline = Pipeline::new(cfg).unwrap();
    // The domain groups source and destination (e.g. same class).
    let domain = CustomDomain {
        label: "refactor-domain".to_string(),
        f: |_: &str| Some(vec!["dest".to_string(), "src".to_string()]),
    };
    let providers: Vec<&dyn CostDomainProvider> = vec![&domain];
    let context = ScanContext {
        domain_providers: providers,
        ..Default::default()
    };
    let out = pipeline
        .scan(&store, &[id_gained, id_lost], now, &context)
        .unwrap();
    println!(
        "  change points: {}, survived cost-shift filter: {}",
        out.funnel.change_points, out.funnel.after_cost_shift
    );
    assert!(
        out.reports.is_empty(),
        "(b) must be filtered as a cost shift, got {:?}",
        out.reports
            .iter()
            .map(|r| &r.series.target)
            .collect::<Vec<_>>()
    );
    println!("  FBDetect verdict: filtered (cost shift) ✓");

    // ---------- (c) the transient false positive ----------
    println!("\n=== Figure 1(c): transient throughput drop ===");
    let c = figure1c(len, 5).unwrap();
    println!("  {}", sparkline(&c.values, 72));
    let store = TsdbStore::new();
    let id = SeriesId::new("svc", MetricKind::Throughput, "");
    store.insert_series(id.clone(), TimeSeries::from_values(0, 60, &c.values));
    let cfg = DetectorConfig::new("fig1c", windows, Threshold::Absolute(5.0));
    let mut pipeline = Pipeline::new(cfg).unwrap();
    let out = pipeline
        .scan(&store, &[id], now, &ScanContext::default())
        .unwrap();
    println!(
        "  change points: {}, survived went-away filter: {}",
        out.funnel.change_points, out.funnel.after_went_away
    );
    assert!(out.funnel.change_points >= 1, "the drop is a change point");
    assert!(out.reports.is_empty(), "(c) must be filtered as transient");
    println!("  FBDetect verdict: filtered (went away) ✓");

    println!("\nall three Figure 1 challenges handled correctly");
}
