//! §6.6: PyPerf profiling overhead on the serialize/compress/write
//! micro-benchmark.
//!
//! The paper: at one sample per server per 30 minutes no overhead is
//! observable; at the worst-case one sample per second the micro-benchmark
//! loses about 0.8% of throughput. The simulated capture's per-sample cost
//! is calibrated so the worst-case rate reproduces the paper's measured
//! ~0.8% (the real cost includes eBPF probe execution, interpreter
//! perturbation, and cache pollution that a pure stack walk would
//! understate — see DESIGN.md); the experiment then shows how overhead
//! scales across sampling rates, with the production rate unobservable.
//!
//! Run with: `cargo run --release -p fbd-bench --bin pyperf_overhead`

use fbd_bench::render_table;
use fbd_profiler::overhead::{
    build_dataset, run_iteration, simulated_stack_capture, SamplingCost, Sink,
};
use std::time::Instant;

const CAPTURE_COST: SamplingCost = SamplingCost {
    stack_depth: 64,
    per_frame_work: 400,
};

/// Paired A/B measurement with per-iteration alternation: baseline and
/// profiled iterations interleave one-for-one, so CPU-frequency drift and
/// co-tenant noise hit both sides equally. The profiled side spreads its
/// capture budget evenly via an accumulator instead of bursting once per
/// second. Returns (baseline_its_per_sec, profiled_its_per_sec).
fn paired_throughput(
    records: &[fbd_profiler::overhead::Record],
    captures_per_iteration: f64,
    total_pairs: usize,
) -> (f64, f64) {
    let mut sink = Sink::new();
    // Warm-up.
    for _ in 0..50 {
        run_iteration(records, &mut sink, 0, CAPTURE_COST);
    }
    let mut base_secs = 0.0;
    let mut prof_secs = 0.0;
    let mut acc = 0.0f64;
    for _ in 0..total_pairs {
        let t0 = Instant::now();
        run_iteration(records, &mut sink, 0, CAPTURE_COST);
        base_secs += t0.elapsed().as_secs_f64();
        acc += captures_per_iteration;
        let fire = acc as usize;
        acc -= fire as f64;
        let t1 = Instant::now();
        run_iteration(records, &mut sink, fire, CAPTURE_COST);
        prof_secs += t1.elapsed().as_secs_f64();
    }
    std::hint::black_box(sink.checksum());
    let n = total_pairs as f64;
    (n / base_secs, n / prof_secs)
}

fn main() {
    let records = build_dataset(400);
    let total_pairs: usize = std::env::var("PAIRS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let repetitions: usize = std::env::var("REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    // Calibration: measure the baseline iteration rate and one capture's
    // cost, then size the worst-case (1 sample/sec) budget to the paper's
    // ~0.8% of wall time.
    let (baseline, _) = paired_throughput(&records, 0.0, 200);
    let capture_start = Instant::now();
    let probe = 10_000;
    for _ in 0..probe {
        simulated_stack_capture(CAPTURE_COST);
    }
    let capture_secs = capture_start.elapsed().as_secs_f64() / probe as f64;
    // 0.8% of wall time spent capturing => captures per iteration.
    let iteration_secs = 1.0 / baseline.max(1.0);
    let worst_case_captures_per_iteration = 0.008 * iteration_secs / capture_secs;
    println!(
        "calibration: baseline = {baseline:.0} it/s, capture = {:.1} µs, \
         worst-case budget = {worst_case_captures_per_iteration:.3} captures/iteration\n",
        capture_secs * 1e6
    );
    // The production 1/30min rate amortizes one capture over 30 minutes of
    // iterations — per-iteration budget ~ capture_secs/1800s of work.
    let production_captures_per_iteration = iteration_secs / 1_800.0 / capture_secs;
    let cases: [(&str, f64); 4] = [
        ("no profiling", 0.0),
        (
            "1 sample / 30 min (production)",
            production_captures_per_iteration,
        ),
        (
            "1 sample / sec (worst case)",
            worst_case_captures_per_iteration,
        ),
        (
            "4 samples / sec (beyond production)",
            4.0 * worst_case_captures_per_iteration,
        ),
    ];
    let mut rows = Vec::new();
    let mut worst_case_overhead = 0.0;
    for (name, budget) in cases {
        // Median of several repetitions: co-tenant machine noise can swamp
        // a sub-percent signal in any single run.
        let mut overheads = Vec::with_capacity(repetitions);
        let mut last_prof = 0.0;
        for _ in 0..repetitions {
            let (base, prof) = paired_throughput(&records, budget, total_pairs);
            overheads.push((base - prof) / base * 100.0);
            last_prof = prof;
        }
        overheads.sort_by(f64::total_cmp);
        let overhead = overheads[overheads.len() / 2];
        if name.contains("worst case") {
            worst_case_overhead = overhead;
        }
        rows.push(vec![
            name.to_string(),
            format!("{last_prof:.0} it/s"),
            format!("{overhead:+.2}%"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["configuration", "throughput", "overhead vs paired baseline"],
            &rows
        )
    );
    println!(
        "\npaper's shape: no observable overhead at the production rate; about\n\
         0.8% at the worst-case per-second rate used only on tiny services.\n\
         worst-case measured here: {worst_case_overhead:+.2}%"
    );
    assert!(
        (-1.0..4.0).contains(&worst_case_overhead),
        "worst-case overhead {worst_case_overhead:.2}% outside the expected band"
    );
}
