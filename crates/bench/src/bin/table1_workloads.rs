//! Table 1: all twelve workload configurations detect at their thresholds.
//!
//! For every Table 1 row, a series matching the workload's window span is
//! synthesized with (i) a regression at 2× the configured threshold and
//! (ii) one at 0.5× the threshold. The configuration must detect the
//! former and ignore the latter. Window lengths, re-run intervals, and
//! absolute/relative thresholds mirror the paper's table exactly.
//!
//! Run with: `cargo run --release -p fbd-bench --bin table1_workloads`

use fbd_bench::render_table;
use fbd_fleet::spec::{Event, SeriesSpec};
use fbd_tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore};
use fbdetect_core::config::presets;
use fbdetect_core::{DetectorConfig, Pipeline, ScanContext, Threshold};

/// Runs one injected-regression trial; returns whether it was reported.
fn trial(config: &DetectorConfig, relative_injection: f64, seed: u64) -> bool {
    // Choose a cadence that yields ~900 samples over the whole span.
    let span = config.windows.total_span();
    let cadence = (span / 900).max(1);
    let len = (span / cadence) as usize;
    // The change lands in the middle of the analysis window.
    let analysis_samples = (config.windows.analysis / cadence) as usize;
    let extended_samples = (config.windows.extended / cadence) as usize;
    let change_at = len - extended_samples - analysis_samples / 2;
    let base = 1.0;
    let delta = base * relative_injection;
    // Noise floor well under the small thresholds: gCPU aggregation noise.
    let noise = (delta.abs() / 8.0).max(1e-7);
    let spec = SeriesSpec {
        len,
        interval: cadence,
        base,
        noise_std: noise,
        seasonal: None,
        events: vec![Event::Step {
            at: change_at,
            delta,
        }],
        clamp: None,
    };
    let values = spec.generate(seed).expect("valid spec");
    let store = TsdbStore::new();
    let id = SeriesId::new("wl", MetricKind::GCpu, "probe");
    store.insert_series(id.clone(), TimeSeries::from_values(0, cadence, &values));
    let mut pipeline = Pipeline::new(config.clone()).expect("valid preset");
    let out = pipeline
        .scan(&store, &[id], len as u64 * cadence, &ScanContext::default())
        .expect("scan succeeds");
    !out.reports.is_empty()
}

fn main() {
    println!("Table 1: workload configurations (detect at 2x threshold, ignore 0.5x)\n");
    let mut rows = Vec::new();
    let mut all_ok = true;
    for config in presets::all() {
        let (threshold_desc, base_relative) = match config.threshold {
            Threshold::Absolute(t) => (format!("{:.4}% abs", t * 100.0), t),
            Threshold::Relative(t) => (format!("{:.0}% rel", t * 100.0), t),
        };
        let detected_large = trial(&config, base_relative * 2.0, 11);
        let detected_small = trial(&config, base_relative * 0.5, 13);
        let ok = detected_large && !detected_small;
        all_ok &= ok;
        rows.push(vec![
            config.name.clone(),
            threshold_desc,
            format!("{}d", config.windows.historic / 86_400),
            format!("{}h", config.windows.analysis / 3_600),
            if config.windows.extended == 0 {
                "N/A".to_string()
            } else {
                format!("{}h", config.windows.extended / 3_600)
            },
            if detected_large { "yes" } else { "NO" }.to_string(),
            if detected_small { "YES" } else { "no" }.to_string(),
            if ok { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "threshold",
                "historic",
                "analysis",
                "extended",
                "detects 2x",
                "flags 0.5x",
                "verdict"
            ],
            &rows
        )
    );
    assert!(all_ok, "every Table 1 row must behave as configured");
    println!("all 12 Table 1 configurations behave as specified");
}
