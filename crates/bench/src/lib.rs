//! Shared helpers for the benchmark harness.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! FBDetect paper (see DESIGN.md for the experiment index). These helpers
//! cover the common plumbing: loading labelled series suites into a store,
//! standard scaled-down window configurations, simple ASCII tables, and
//! sparkline rendering for figure-style output.

#![forbid(unsafe_code)]

use fbd_fleet::scenarios::{LabelledSeries, SeriesLabel};
use fbd_ingest::pipeline::{IngestConfig, IngestPipeline};
use fbd_ingest::quota::QuotaConfig;
use fbd_ingest::wire::{encode_batch, SampleBatch};
use fbd_tsdb::{MetricKind, SeriesId, StoreConfig, TimeSeries, TsdbStore, WindowConfig};
use fbdetect_core::{DetectorConfig, Threshold};
use std::sync::Arc;

/// Sample cadence used by the scaled-down experiments (seconds).
pub const CADENCE: u64 = 60;

/// Whether `INGEST=1` asks the harness to build stores through the
/// staged ingest front-end instead of direct `insert_series` loops.
pub fn ingest_enabled() -> bool {
    std::env::var("INGEST").map(|v| v == "1").unwrap_or(false)
}

/// Whether `COMPRESS=1` asks the harness to build Gorilla-compressed
/// stores (sealed immutable blocks behind a small mutable head) instead
/// of plain point vectors. Scan results are byte-identical either way;
/// only the resident footprint changes.
pub fn compress_enabled() -> bool {
    std::env::var("COMPRESS").map(|v| v == "1").unwrap_or(false)
}

/// Storage policy selected by the environment: `COMPRESS=1` turns on
/// sealed-block compression, and `SHARD_BUDGET_MB=<n>` additionally caps
/// each store shard's resident bytes (oldest sealed blocks are evicted
/// past the cap).
pub fn store_config_from_env() -> StoreConfig {
    let mut config = if compress_enabled() {
        StoreConfig::compressed()
    } else {
        StoreConfig::default()
    };
    if let Some(mb) = std::env::var("SHARD_BUDGET_MB")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        config.shard_budget_bytes = Some(mb * 1024 * 1024);
    }
    config
}

/// Series per wire batch when slicing a suite for ingestion; bounded by
/// the wire format's `u16` dictionary index.
const INGEST_SERIES_CHUNK: usize = 4_096;
/// Samples per series per wire batch. The slice's time span
/// (`8 × CADENCE = 480 s`) stays inside the validator's default 900 s
/// late slack, so punctual suite data is never misread as late.
const INGEST_SAMPLE_CHUNK: usize = 8;

/// Loads a labelled suite by replaying it through the full ingest
/// front-end — wire encode, decode, validation, quota, sharded append —
/// instead of direct `insert_series`. Store contents are point-for-point
/// identical to [`load_suite`]; panics if the pipeline sheds or loses
/// anything (clean punctual data must be admitted in full).
pub fn load_suite_via_ingest(
    suite: &[LabelledSeries],
    service: &str,
    metric: MetricKind,
) -> (Arc<TsdbStore>, Vec<SeriesId>) {
    let store = Arc::new(TsdbStore::with_config(store_config_from_env()));
    let ids: Vec<SeriesId> = (0..suite.len())
        .map(|i| SeriesId::new(service, metric, format!("s{i:05}")))
        .collect();
    let config = IngestConfig {
        // Store building is replay, not admission control: an unbounded
        // bucket keeps the loaded store byte-identical to `load_suite`.
        quota: QuotaConfig {
            burst: u64::MAX / 2,
            points_per_sec: 0,
        },
        ..IngestConfig::default()
    };
    let pipeline = IngestPipeline::new(Arc::clone(&store), config);
    for series_lo in (0..suite.len()).step_by(INGEST_SERIES_CHUNK) {
        let series_hi = (series_lo + INGEST_SERIES_CHUNK).min(suite.len());
        let len = suite[series_lo..series_hi]
            .iter()
            .map(|s| s.values.len())
            .max()
            .unwrap_or(0);
        for lo in (0..len).step_by(INGEST_SAMPLE_CHUNK) {
            let hi = (lo + INGEST_SAMPLE_CHUNK).min(len);
            let mut batch = SampleBatch::new("bench", hi as u64 * CADENCE);
            for (i, s) in suite[series_lo..series_hi].iter().enumerate() {
                for j in lo..hi.min(s.values.len()) {
                    batch
                        .push(&ids[series_lo + i], j as u64 * CADENCE, s.values[j])
                        .expect("suite slice fits the wire format");
                }
            }
            if batch.is_empty() {
                continue;
            }
            let raw = encode_batch(&batch).expect("suite batch encodes");
            pipeline.submit(raw).expect("ingest pipeline alive");
        }
    }
    let stats = pipeline.finish();
    assert!(stats.is_accounted(), "ingest accounting broken: {stats:?}");
    assert_eq!(
        stats.points_appended, stats.points_submitted,
        "clean suite data was shed during ingest: {stats:?}"
    );
    (store, ids)
}

/// Builds the suite store either directly or through the ingest
/// front-end, per `via_ingest` (typically [`ingest_enabled`]).
pub fn load_suite_store(
    suite: &[LabelledSeries],
    service: &str,
    metric: MetricKind,
    via_ingest: bool,
) -> (Arc<TsdbStore>, Vec<SeriesId>) {
    if via_ingest {
        load_suite_via_ingest(suite, service, metric)
    } else {
        let (store, ids) = load_suite(suite, service, metric);
        (Arc::new(store), ids)
    }
}

/// The standard scaled-down window split for suite series of length `len`:
/// 2/3 historic, 2/9 analysis, 1/9 extended.
pub fn suite_windows(len: usize) -> WindowConfig {
    let total = len as u64 * CADENCE;
    WindowConfig {
        historic: total * 2 / 3,
        analysis: total * 2 / 9,
        extended: total / 9,
        rerun_interval: total / 9,
    }
}

/// A detector configuration matched to [`suite_windows`].
pub fn suite_config(len: usize, threshold: Threshold) -> DetectorConfig {
    DetectorConfig::new("bench", suite_windows(len), threshold)
}

/// Loads a labelled suite into a fresh store under the environment's
/// storage policy ([`store_config_from_env`]); series are named
/// `s<index>` under the given service, with the given metric kind.
/// Returns the ids in suite order.
pub fn load_suite(
    suite: &[LabelledSeries],
    service: &str,
    metric: MetricKind,
) -> (TsdbStore, Vec<SeriesId>) {
    load_suite_with_config(suite, service, metric, store_config_from_env())
}

/// [`load_suite`] with an explicit storage policy.
pub fn load_suite_with_config(
    suite: &[LabelledSeries],
    service: &str,
    metric: MetricKind,
    config: StoreConfig,
) -> (TsdbStore, Vec<SeriesId>) {
    let store = TsdbStore::with_config(config);
    let mut ids = Vec::with_capacity(suite.len());
    for (i, s) in suite.iter().enumerate() {
        let id = SeriesId::new(service, metric, format!("s{i:05}"));
        store.insert_series(id.clone(), TimeSeries::from_values(0, CADENCE, &s.values));
        ids.push(id);
    }
    (store, ids)
}

/// Scan time covering the whole suite (its last timestamp plus one step).
pub fn suite_scan_time(len: usize) -> u64 {
    len as u64 * CADENCE
}

/// Ground-truth index: which suite entries are true regressions.
pub fn true_regression_indices(suite: &[LabelledSeries]) -> Vec<usize> {
    suite
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            matches!(
                s.label,
                SeriesLabel::TrueRegression | SeriesLabel::TrueGradualRegression
            )
        })
        .map(|(i, _)| i)
        .collect()
}

/// Extracts the suite index from an `s<index>` series target.
pub fn suite_index(id: &SeriesId) -> Option<usize> {
    id.target.strip_prefix('s').and_then(|n| n.parse().ok())
}

/// Renders a simple ASCII table: header row plus data rows, columns padded.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Renders a series as a unicode sparkline (figure-style output).
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    // Downsample to the requested width by bucket means.
    let bucket = (values.len() as f64 / width as f64).max(1.0);
    let mut points = Vec::with_capacity(width);
    let mut i = 0.0;
    while (i as usize) < values.len() && points.len() < width {
        let lo = i as usize;
        let hi = ((i + bucket) as usize).min(values.len()).max(lo + 1);
        points.push(values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64);
        i += bucket;
    }
    let min = points.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = points.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(1e-12);
    points
        .iter()
        .map(|&v| BARS[(((v - min) / range) * 7.0).round() as usize])
        .collect()
}

/// The three decoder workload shapes the decode micro-benchmarks run:
/// steady cadence with smoothly varying finite values (the common case),
/// the same cadence with NaN bursts (fault-window traffic), and irregular
/// cadence with repeated values and timestamp jumps (every delta-of-delta
/// and XOR escape class).
pub const DECODE_SHAPES: [&str; 3] = ["steady", "nan_burst", "irregular"];

/// Block sizes the decode micro-benchmarks sweep: a small partial block,
/// the suite's standard series length, and a large block.
pub const DECODE_SIZES: [usize; 3] = [128, 900, 4096];

/// Deterministic point fixture for the decoder benchmarks; `shape` is one
/// of [`DECODE_SHAPES`].
pub fn decode_fixture(shape: &str, n: usize) -> Vec<fbd_tsdb::DataPoint> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (n as u64) << 7;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ts = 0u64;
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let r = next();
        let (gap, value) = match shape {
            "steady" => (CADENCE, 1.0 + (r % 1000) as f64 / 5000.0),
            "nan_burst" => {
                // Ten-sample NaN runs every fifty samples: roughly the
                // density a faulted host's counters show.
                let v = if i % 50 < 10 {
                    f64::NAN
                } else {
                    1.0 + (r % 1000) as f64 / 5000.0
                };
                (CADENCE, v)
            }
            "irregular" => {
                let gap = match i % 7 {
                    0 => 0,
                    1 => 1,
                    2 => CADENCE,
                    3 => 3_600,
                    4 => 1 << 21,
                    _ => CADENCE + (r % 30),
                };
                // Repeat the previous value a third of the time so the
                // XOR-zero class is exercised alongside wide payloads.
                let v = if i % 3 == 0 {
                    points
                        .last()
                        .map(|p: &fbd_tsdb::DataPoint| p.value)
                        .unwrap_or(1.0)
                } else {
                    f64::from_bits(r)
                };
                (gap, v)
            }
            other => panic!("unknown decode shape {other:?}"),
        };
        ts = ts.saturating_add(if i == 0 { 0 } else { gap });
        points.push(fbd_tsdb::DataPoint::new(ts, value));
    }
    points
}

/// Formats a Table 3 style reduction ("1/x") from counts.
pub fn reduction(change_points: usize, remaining: usize) -> String {
    if remaining == 0 {
        "-".to_string()
    } else {
        format!("1/{:.0}", change_points as f64 / remaining as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_fleet::scenarios::{labelled_suite, SuiteConfig};

    #[test]
    fn suite_roundtrip() {
        let cfg = SuiteConfig {
            clean: 2,
            regressions: 1,
            gradual: 0,
            transients: 0,
            seasonal: 0,
            len: 90,
            ..Default::default()
        };
        let suite = labelled_suite(&cfg, 1).unwrap();
        let (store, ids) = load_suite(&suite, "svc", MetricKind::GCpu);
        assert_eq!(store.series_count(), 3);
        assert_eq!(suite_index(&ids[2]), Some(2));
        assert_eq!(true_regression_indices(&suite), vec![2]);
    }

    #[test]
    fn ingest_built_store_matches_direct() {
        let cfg = SuiteConfig {
            clean: 3,
            regressions: 1,
            gradual: 0,
            transients: 1,
            seasonal: 0,
            len: 120,
            ..Default::default()
        };
        let suite = labelled_suite(&cfg, 9).unwrap();
        let (direct, direct_ids) = load_suite(&suite, "svc", MetricKind::GCpu);
        let (wired, wired_ids) = load_suite_via_ingest(&suite, "svc", MetricKind::GCpu);
        assert_eq!(direct_ids, wired_ids);
        for id in &direct_ids {
            let a = direct.get(id).unwrap();
            let b = wired.get(id).unwrap();
            assert_eq!(a.len(), b.len(), "{id:?}");
            for (pa, pb) in a.iter().zip(b.iter()) {
                assert_eq!(pa.timestamp, pb.timestamp, "{id:?}");
                assert_eq!(pa.value.to_bits(), pb.value.to_bits(), "{id:?}");
            }
        }
    }

    #[test]
    fn compressed_suite_store_matches_plain_and_shrinks() {
        let cfg = SuiteConfig {
            clean: 4,
            regressions: 1,
            gradual: 0,
            transients: 1,
            seasonal: 0,
            len: 300,
            ..Default::default()
        };
        let suite = labelled_suite(&cfg, 5).unwrap();
        let (plain, ids) =
            load_suite_with_config(&suite, "svc", MetricKind::GCpu, StoreConfig::default());
        let (packed, packed_ids) =
            load_suite_with_config(&suite, "svc", MetricKind::GCpu, StoreConfig::compressed());
        assert_eq!(ids, packed_ids);
        for id in &ids {
            let a = plain.get(id).unwrap();
            let b = packed.get(id).unwrap();
            assert_eq!(a.len(), b.len(), "{id:?}");
            for (pa, pb) in a.iter().zip(b.iter()) {
                assert_eq!(pa.timestamp, pb.timestamp, "{id:?}");
                assert_eq!(pa.value.to_bits(), pb.value.to_bits(), "{id:?}");
            }
        }
        let (ps, cs) = (plain.stats(), packed.stats());
        assert_eq!(ps.points(), cs.points());
        assert!((ps.bytes_per_point() - 16.0).abs() < 1e-9);
        assert!(cs.sealed_blocks() > 0);
        assert!(
            cs.bytes_per_point() < 12.0,
            "suite data should compress well below raw: {:.2} B/pt",
            cs.bytes_per_point()
        );
    }

    #[test]
    fn windows_cover_suite() {
        let cfg = suite_windows(900);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.total_span(), 900 * CADENCE);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.0, 1.0, 1.0], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[], 5), "");
    }

    #[test]
    fn reduction_format() {
        assert_eq!(reduction(1000, 10), "1/100");
        assert_eq!(reduction(1000, 0), "-");
    }
}
