//! Criterion micro-benchmarks of the Gorilla block decoders.
//!
//! Compares the word-buffered decoder ([`SealedBlock::iter`]) against the
//! retained bit-at-a-time legacy decoder ([`SealedBlock::reference_iter`])
//! across the workload shapes the store actually sees: steady cadence,
//! NaN bursts, and irregular cadence with timestamp jumps and repeated
//! values. `decode_bench` (a plain binary) produces the committed
//! `decode_ns_per_point` numbers in `BENCH_pipeline.json`; this harness
//! is for interactive before/after comparisons with criterion's
//! statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use fbd_bench::{decode_fixture, DECODE_SHAPES, DECODE_SIZES};
use fbd_tsdb::SealedBlock;

fn consume_word(block: &SealedBlock) -> u64 {
    let mut acc = 0u64;
    for p in block.iter() {
        acc ^= p.timestamp ^ p.value.to_bits();
    }
    acc
}

fn consume_legacy(block: &SealedBlock) -> u64 {
    let mut acc = 0u64;
    for p in block.reference_iter() {
        acc ^= p.timestamp ^ p.value.to_bits();
    }
    acc
}

fn bench_decoders(c: &mut Criterion) {
    for shape in DECODE_SHAPES {
        let mut group = c.benchmark_group(&format!("decode/{shape}"));
        for n in DECODE_SIZES {
            let block = SealedBlock::from_points(&decode_fixture(shape, n));
            assert_eq!(block.count() as usize, n);
            group.bench_function(&format!("word/{n}"), |b| {
                b.iter(|| consume_word(&block));
            });
            group.bench_function(&format!("legacy/{n}"), |b| {
                b.iter(|| consume_legacy(&block));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_decoders);
criterion_main!(benches);
