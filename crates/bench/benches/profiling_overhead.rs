//! Criterion benchmark for §6.6: micro-benchmark iteration time with and
//! without simulated stack sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use fbd_profiler::overhead::{build_dataset, run_iteration, SamplingCost, Sink};

fn bench_overhead(c: &mut Criterion) {
    let records = build_dataset(400);
    let mut group = c.benchmark_group("pyperf_overhead");
    for (name, samples) in [
        ("no_profiling", 0usize),
        ("worst_case_1_per_sec", 2),
        ("extreme_10_per_sec", 20),
    ] {
        group.bench_function(name, |b| {
            let mut sink = Sink::new();
            b.iter(|| run_iteration(&records, &mut sink, samples, SamplingCost::default()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_overhead
}
criterion_main!(benches);
