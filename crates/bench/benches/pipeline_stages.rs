//! Criterion benchmarks of the pipeline's stage costs.
//!
//! The paper runs FBDetect on "capacity equivalent to hundreds of servers,
//! analyzing approximately 800,000 time series". These benches measure the
//! per-series cost of each stage so the ordering argument of §5.1 (fast
//! filters first) and the overall capacity claim can be sanity-checked.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fbd_cluster::som::{SelfOrganizingMap, SomConfig};
use fbd_fleet::spec::{Event, SeriesSpec};
use fbd_profiler::callgraph::uniform_service_graph;
use fbd_profiler::sample::TraceSampler;
use fbd_stats::sax::{encode, SaxConfig};
use fbd_stats::stl::{decompose, StlConfig};
use fbd_stats::{cusum, em};
use fbd_tsdb::window::extract_windows;
use fbd_tsdb::{MetricKind, SeriesId, TimeSeries, WindowConfig, WindowedData};
use fbdetect_core::change_point::ChangePointDetector;
use fbdetect_core::config::{DetectorConfig, Threshold};
use fbdetect_core::types::{Regression, RegressionKind};
use fbdetect_core::went_away::WentAwayDetector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn step_series(len: usize) -> Vec<f64> {
    SeriesSpec::flat(len, 1.0, 0.05)
        .with_event(Event::Step {
            at: len * 3 / 4,
            delta: 0.3,
        })
        .generate(7)
        .unwrap()
}

fn windows_of(values: &[f64]) -> WindowedData {
    let h = values.len() * 2 / 3;
    let a = values.len() * 2 / 9;
    WindowedData::from_regions(
        &values[..h],
        &values[h..h + a],
        &values[h + a..],
        h as u64 * 60,
        (h + a) as u64 * 60,
    )
}

fn regression_of(values: &[f64]) -> Regression {
    let w = windows_of(values);
    let cp = values.len() * 3 / 4 - 1;
    Regression {
        series: SeriesId::new("svc", MetricKind::GCpu, "x"),
        kind: RegressionKind::ShortTerm,
        change_index: cp,
        change_time: cp as u64 * 60,
        mean_before: 1.0,
        mean_after: 1.3,
        windows: w,
        root_cause_candidates: vec![],
    }
}

fn bench_stages(c: &mut Criterion) {
    let values = step_series(900);
    let windows = windows_of(&values);
    let config = DetectorConfig::new(
        "bench",
        fbd_tsdb::WindowConfig {
            historic: 600 * 60,
            analysis: 200 * 60,
            extended: 100 * 60,
            rerun_interval: 100 * 60,
        },
        Threshold::Absolute(0.1),
    );
    let sid = SeriesId::new("svc", MetricKind::GCpu, "x");

    c.bench_function("cusum_change_point_900", |b| {
        b.iter(|| cusum::detect_change_point(&values).unwrap())
    });
    c.bench_function("em_fit_two_segment_900", |b| {
        b.iter(|| em::fit_two_segment(&values, 50).unwrap())
    });
    let detector = ChangePointDetector::from_config(&config);
    c.bench_function("change_point_detector_full_900", |b| {
        b.iter(|| detector.detect(&sid, &windows, 54_000).unwrap())
    });
    let went_away = WentAwayDetector::from_config(&config);
    let regression = regression_of(&values);
    c.bench_function("went_away_evaluate_900", |b| {
        b.iter(|| went_away.evaluate(&regression).unwrap())
    });
    c.bench_function("sax_encode_900", |b| {
        b.iter(|| encode(&values, SaxConfig::default()).unwrap())
    });
    c.bench_function("stl_decompose_900_period24", |b| {
        b.iter(|| decompose(&values, StlConfig::for_period(24)).unwrap())
    });
    // SOM over a realistic dedup batch.
    let features: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            (0..9)
                .map(|j| ((i * 31 + j * 7) % 97) as f64 + (i / 64) as f64 * 100.0)
                .collect()
        })
        .collect();
    c.bench_function("som_train_assign_256x9", |b| {
        b.iter(|| {
            let som = SelfOrganizingMap::train(&features, SomConfig::default()).unwrap();
            som.assign(&features).unwrap()
        })
    });
    // Stack sampling throughput.
    let graph = uniform_service_graph(1_000, 1.0).unwrap();
    let sampler = TraceSampler::new(&graph).unwrap();
    c.bench_function("stack_sampling_1k_traces", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(1),
            |mut rng| sampler.sample_n(&mut rng, 1_000, 0, 0),
            BatchSize::SmallInput,
        )
    });
}

/// Scan hot-path kernels at the sizes the capacity argument leans on:
/// a dedup batch (256), the standard suite series (900), and a long
/// high-resolution series (4096). `fit_two_segment` is O(n + radius·iters)
/// on prefix sums, windowing is a single contiguous copy out of the store,
/// and `spectral_features` runs on the O(n log n) FFT.
fn bench_hot_path_sizes(c: &mut Criterion) {
    for &n in &[256usize, 900, 4096] {
        let values = step_series(n);
        c.bench_function(&format!("hot/fit_two_segment/{n}"), |b| {
            b.iter(|| em::fit_two_segment(&values, 50).unwrap())
        });
        let series = TimeSeries::from_values(0, 60, &values);
        let h = n as u64 * 2 / 3;
        let a = n as u64 * 2 / 9;
        let cfg = WindowConfig {
            historic: h * 60,
            analysis: a * 60,
            extended: (n as u64 - h - a) * 60,
            rerun_interval: a * 60,
        };
        let now = n as u64 * 60;
        c.bench_function(&format!("hot/extract_windows/{n}"), |b| {
            b.iter(|| extract_windows(&series, &cfg, now).unwrap())
        });
        c.bench_function(&format!("hot/spectral_features/{n}"), |b| {
            b.iter(|| fbd_stats::fourier::spectral_features(&values, 3).unwrap())
        });
    }
}

/// Fast/naive pairs for the long_term and went_away stage kernels at the
/// sizes the capacity argument leans on. Each fast kernel is benchmarked
/// next to its reference twin so the complexity claims in DESIGN.md
/// (Wiener–Khinchin ACF, inversion-counting Mann-Kendall, selection
/// Theil-Sen, sliding-regression Loess) stay observable, not folklore.
fn bench_stage_kernels(c: &mut Criterion) {
    for &n in &[256usize, 900, 4096] {
        let values = step_series(n);
        let ones = vec![1.0; n];

        // long_term trend extraction: Loess at the detector's 0.3 fraction.
        c.bench_function(&format!("kernel/loess_fft/{n}"), |b| {
            b.iter(|| fbd_stats::stl::loess_smooth_fft(&values, 0.3, &ones).unwrap())
        });
        c.bench_function(&format!("kernel/loess_naive/{n}"), |b| {
            b.iter(|| fbd_stats::stl::loess_smooth_naive(&values, 0.3, &ones).unwrap())
        });

        // went_away trend tests: Mann-Kendall on the post-change window.
        c.bench_function(&format!("kernel/mann_kendall_fast/{n}"), |b| {
            b.iter(|| fbd_stats::trend::mann_kendall(&values, 0.05).unwrap())
        });
        c.bench_function(&format!("kernel/mann_kendall_naive/{n}"), |b| {
            b.iter(|| fbd_stats::trend::mann_kendall_naive(&values, 0.05).unwrap())
        });

        // went_away slope test: Theil-Sen. Both variants generate all O(n²)
        // pairwise slopes; the naive twin then sorts them, which at n=4096
        // is ~8M elements per iteration — too slow for a smoke bench, so
        // the reference is pinned at the two smaller sizes only.
        c.bench_function(&format!("kernel/theil_sen_select/{n}"), |b| {
            b.iter(|| fbd_stats::trend::theil_sen(&values).unwrap())
        });
        if n <= 900 {
            c.bench_function(&format!("kernel/theil_sen_sort/{n}"), |b| {
                b.iter(|| fbd_stats::trend::theil_sen_naive(&values).unwrap())
            });
        }

        // All-lags ACF, as used by seasonality search over wide lag ranges.
        let max_lag = n - 2;
        c.bench_function(&format!("kernel/acf_fft_all_lags/{n}"), |b| {
            b.iter(|| fbd_stats::acf::acf_fft(&values, max_lag).unwrap())
        });
        c.bench_function(&format!("kernel/acf_naive_all_lags/{n}"), |b| {
            b.iter(|| fbd_stats::acf::acf_naive(&values, max_lag).unwrap())
        });

        // went_away full stage at each size.
        let config = DetectorConfig::new(
            "bench",
            fbd_tsdb::WindowConfig {
                historic: n as u64 * 2 / 3 * 60,
                analysis: n as u64 * 2 / 9 * 60,
                extended: (n as u64 - n as u64 * 2 / 3 - n as u64 * 2 / 9) * 60,
                rerun_interval: n as u64 * 2 / 9 * 60,
            },
            Threshold::Absolute(0.1),
        );
        let went_away = WentAwayDetector::from_config(&config);
        let regression = regression_of(&values);
        c.bench_function(&format!("kernel/went_away_evaluate/{n}"), |b| {
            b.iter(|| went_away.evaluate(&regression).unwrap())
        });
    }

    // The long_term stage with and without the O(n) flat-series prefilter,
    // on the flat series the prefilter is built to skip.
    let n = 900usize;
    let flat = SeriesSpec::flat(n, 1.0, 0.05).generate(7).unwrap();
    let config = DetectorConfig::new(
        "bench",
        fbd_tsdb::WindowConfig {
            historic: 600 * 60,
            analysis: 200 * 60,
            extended: 100 * 60,
            rerun_interval: 100 * 60,
        },
        Threshold::Absolute(0.1),
    );
    let detector = fbdetect_core::long_term::LongTermDetector::from_config(&config);
    let sid = SeriesId::new("svc", MetricKind::GCpu, "x");
    let windows = windows_of(&flat);
    c.bench_function("kernel/long_term_prefiltered/900_flat", |b| {
        b.iter(|| detector.detect(&sid, &windows, 54_000).unwrap())
    });
    c.bench_function("kernel/long_term_full_stl/900_flat", |b| {
        b.iter(|| detector.detect_without_prefilter(&sid, &windows, 54_000).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stages, bench_hot_path_sizes, bench_stage_kernels
}
criterion_main!(benches);
