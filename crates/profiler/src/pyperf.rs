//! PyPerf: end-to-end Python stack reconstruction (§4, Figure 5).
//!
//! Sampling an interpreted program captures the *interpreter's* stack, not
//! the program's. For CPython the captured system stack interleaves:
//!
//! 1. CPython-internal C calls,
//! 2. one `_PyEval_EvalFrameDefault` call per active Python frame, and
//! 3. native C/C++ library calls invoked by the Python code.
//!
//! CPython separately maintains a *virtual call stack* (VCS): a linked list
//! of frames, each recording the running Python subroutine. PyPerf's key
//! insight is that each `_PyEval_EvalFrameDefault` call maps precisely to
//! one VCS frame, so an eBPF probe can walk the VCS and splice Python
//! function names into the native stack, producing a precise end-to-end
//! trace across Python and the C/C++ libraries it invokes.
//!
//! This module models those two stacks and performs the merge, plus a
//! Scalene-style baseline that only sees Python frames and must
//! *approximate* native time (the limitation §4 contrasts against).

use crate::{ProfilerError, Result};

/// One frame on the sampled native (system) stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NativeFrame {
    /// The process entry point.
    Start,
    /// A CPython-internal C function (e.g. `call_function`).
    CPythonInternal(String),
    /// One `_PyEval_EvalFrameDefault` invocation — executes exactly one
    /// Python frame.
    PyEvalFrameDefault,
    /// A native C/C++ library function invoked by Python code.
    CLibrary(String),
}

/// One frame of CPython's virtual call stack: the Python subroutine and its
/// source location, as the eBPF probe reads them from frame objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcsFrame {
    /// Python function name (e.g. `"handler.process"`).
    pub function: String,
    /// Source file and line (e.g. `"handler.py:42"`).
    pub source: String,
}

/// A captured pair of stacks, as the kernel probe sees them: the native
/// stack bottom-up (index 0 = `_start`) and the VCS outermost-first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedStacks {
    /// Native system stack, bottom (oldest) first.
    pub system: Vec<NativeFrame>,
    /// Virtual call stack, outermost Python frame first.
    pub vcs: Vec<VcsFrame>,
}

/// A frame of the merged, end-to-end stack trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergedFrame {
    /// A native frame retained from the system stack prefix or a C-library
    /// leaf.
    Native(String),
    /// A Python subroutine spliced in from the VCS.
    Python(String),
}

impl MergedFrame {
    /// The frame's display name.
    pub fn name(&self) -> &str {
        match self {
            MergedFrame::Native(n) | MergedFrame::Python(n) => n,
        }
    }
}

/// Reconstructs the end-to-end stack trace from a captured pair (Figure 5).
///
/// Rules:
/// - native frames *before* the first `_PyEval_EvalFrameDefault` are kept
///   (the process prologue);
/// - each `_PyEval_EvalFrameDefault` is replaced by the corresponding VCS
///   frame, in order;
/// - CPython-internal frames *between* eval frames are interpreter plumbing
///   and are dropped;
/// - native C-library frames above the last eval are kept (they are real
///   work the Python code invoked).
///
/// # Examples
///
/// ```
/// use fbd_profiler::pyperf::*;
/// let captured = CapturedStacks {
///     system: vec![
///         NativeFrame::Start,
///         NativeFrame::CPythonInternal("pymain_run".into()),
///         NativeFrame::PyEvalFrameDefault,
///         NativeFrame::CPythonInternal("call_function".into()),
///         NativeFrame::PyEvalFrameDefault,
///         NativeFrame::CLibrary("zlib_compress".into()),
///     ],
///     vcs: vec![
///         VcsFrame { function: "main".into(), source: "app.py:1".into() },
///         VcsFrame { function: "save".into(), source: "app.py:9".into() },
///     ],
/// };
/// let merged = reconstruct(&captured).unwrap();
/// let names: Vec<&str> = merged.iter().map(|f| f.name()).collect();
/// assert_eq!(names, vec!["_start", "pymain_run", "main", "save", "zlib_compress"]);
/// ```
pub fn reconstruct(captured: &CapturedStacks) -> Result<Vec<MergedFrame>> {
    let eval_count = captured
        .system
        .iter()
        .filter(|f| matches!(f, NativeFrame::PyEvalFrameDefault))
        .count();
    if eval_count != captured.vcs.len() {
        return Err(ProfilerError::MalformedStack(
            "eval-frame count does not match VCS length",
        ));
    }
    let mut merged = Vec::with_capacity(captured.system.len());
    let mut vcs_iter = captured.vcs.iter();
    let mut seen_eval = false;
    for frame in &captured.system {
        match frame {
            NativeFrame::Start => merged.push(MergedFrame::Native("_start".to_string())),
            NativeFrame::CPythonInternal(name) => {
                // Interpreter plumbing between Python frames is dropped;
                // the prologue before any Python code is kept.
                if !seen_eval {
                    merged.push(MergedFrame::Native(name.clone()));
                }
            }
            NativeFrame::PyEvalFrameDefault => {
                seen_eval = true;
                let Some(vcs_frame) = vcs_iter.next() else {
                    // Unreachable given the count check above, but degrade
                    // to an error rather than panic in a supervised path.
                    return Err(ProfilerError::MalformedStack(
                        "VCS exhausted before eval frames",
                    ));
                };
                merged.push(MergedFrame::Python(vcs_frame.function.clone()));
            }
            NativeFrame::CLibrary(name) => merged.push(MergedFrame::Native(name.clone())),
        }
    }
    Ok(merged)
}

/// The Scalene-style view: only the Python frames, with native leaf time
/// *attributed to* the innermost Python frame rather than reported exactly.
///
/// Returns `(python_frames, native_leaf_attributed)`: the Python-only stack
/// and whether native-library time was folded into the leaf.
pub fn scalene_view(captured: &CapturedStacks) -> (Vec<String>, bool) {
    let python: Vec<String> = captured.vcs.iter().map(|f| f.function.clone()).collect();
    let has_native_leaf = captured
        .system
        .iter()
        .rev()
        .take_while(|f| !matches!(f, NativeFrame::PyEvalFrameDefault))
        .any(|f| matches!(f, NativeFrame::CLibrary(_)));
    (python, has_native_leaf)
}

/// Synthesizes the captured stacks for a Python call chain executing with
/// an optional native-library leaf — a generator for tests and simulations.
///
/// `python_chain` is outermost-first; each Python frame contributes one
/// `_PyEval_EvalFrameDefault` preceded (after the first) by a
/// `call_function` internal frame, matching CPython's real layout.
pub fn synthesize_stacks(python_chain: &[&str], native_leaf: Option<&str>) -> CapturedStacks {
    let mut system = vec![
        NativeFrame::Start,
        NativeFrame::CPythonInternal("pymain_run".to_string()),
    ];
    for (i, _) in python_chain.iter().enumerate() {
        if i > 0 {
            system.push(NativeFrame::CPythonInternal("call_function".to_string()));
        }
        system.push(NativeFrame::PyEvalFrameDefault);
    }
    if let Some(leaf) = native_leaf {
        system.push(NativeFrame::CLibrary(leaf.to_string()));
    }
    let vcs = python_chain
        .iter()
        .enumerate()
        .map(|(i, name)| VcsFrame {
            function: name.to_string(),
            source: format!("module.py:{}", 10 * (i + 1)),
        })
        .collect();
    CapturedStacks { system, vcs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_reconstruction() {
        // Figure 5: system stack with two eval frames and a C-lib leaf maps
        // to [_start, ..., Py-funX, ..., Py-funZ, C-lib-foo].
        let captured = synthesize_stacks(&["Py-funX", "Py-funZ"], Some("C-lib-foo"));
        let merged = reconstruct(&captured).unwrap();
        let names: Vec<&str> = merged.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec!["_start", "pymain_run", "Py-funX", "Py-funZ", "C-lib-foo"]
        );
    }

    #[test]
    fn python_frames_marked_as_python() {
        let captured = synthesize_stacks(&["a", "b"], None);
        let merged = reconstruct(&captured).unwrap();
        let py: Vec<&str> = merged
            .iter()
            .filter_map(|f| match f {
                MergedFrame::Python(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(py, vec!["a", "b"]);
    }

    #[test]
    fn deep_chain_reconstructs_in_order() {
        let chain: Vec<String> = (0..50).map(|i| format!("f{i}")).collect();
        let refs: Vec<&str> = chain.iter().map(String::as_str).collect();
        let captured = synthesize_stacks(&refs, None);
        let merged = reconstruct(&captured).unwrap();
        let py: Vec<&str> = merged
            .iter()
            .filter_map(|f| match f {
                MergedFrame::Python(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(py, refs);
    }

    #[test]
    fn mismatched_vcs_is_malformed() {
        let mut captured = synthesize_stacks(&["a", "b"], None);
        captured.vcs.pop();
        assert!(matches!(
            reconstruct(&captured),
            Err(ProfilerError::MalformedStack(_))
        ));
    }

    #[test]
    fn pure_native_stack_passes_through() {
        let captured = CapturedStacks {
            system: vec![
                NativeFrame::Start,
                NativeFrame::CPythonInternal("gc_collect".to_string()),
            ],
            vcs: vec![],
        };
        let merged = reconstruct(&captured).unwrap();
        assert_eq!(merged.len(), 2);
        assert!(matches!(merged[0], MergedFrame::Native(_)));
    }

    #[test]
    fn internal_frames_between_evals_dropped() {
        let captured = synthesize_stacks(&["outer", "inner"], None);
        // The synthesized stack contains a call_function between the evals.
        assert!(captured
            .system
            .iter()
            .any(|f| matches!(f, NativeFrame::CPythonInternal(n) if n == "call_function")));
        let merged = reconstruct(&captured).unwrap();
        assert!(!merged.iter().any(|f| f.name() == "call_function"));
    }

    #[test]
    fn scalene_loses_native_leaf() {
        // PyPerf reports the C library precisely; the Scalene-style view
        // only knows "some native time under the innermost Python frame".
        let captured = synthesize_stacks(&["save"], Some("zlib_compress"));
        let merged = reconstruct(&captured).unwrap();
        assert_eq!(merged.last().unwrap().name(), "zlib_compress");
        let (python, attributed) = scalene_view(&captured);
        assert_eq!(python, vec!["save"]);
        assert!(attributed);
        assert!(!python.iter().any(|f| f == "zlib_compress"));
    }

    #[test]
    fn scalene_no_native_leaf() {
        let captured = synthesize_stacks(&["f"], None);
        let (_, attributed) = scalene_view(&captured);
        assert!(!attributed);
    }
}
