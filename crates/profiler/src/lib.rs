//! Stack-trace profiling substrate for the FBDetect reproduction.
//!
//! Production FBDetect derives each subroutine's relative CPU usage (gCPU)
//! from periodic stack-trace samples collected fleet-wide by eBPF or
//! language-runtime profilers (§4). This crate provides:
//!
//! - a weighted call-graph model of a service's code ([`callgraph`]);
//! - a sampler that draws stack traces from that model the way a wall-clock
//!   profiler would ([`sample`]);
//! - gCPU derivation, popularity scores, and stack-trace overlap
//!   ([`gcpu`]);
//! - frame metadata annotation, the `SetFrameMetadata()` facility (§3)
//!   ([`metadata`]);
//! - **PyPerf**: reconstruction of end-to-end Python stacks by walking the
//!   CPython virtual call stack and mapping `_PyEval_EvalFrameDefault`
//!   frames to Python functions (Figure 5), plus a Scalene-style
//!   approximation baseline ([`pyperf`]);
//! - the CPU-intensive micro-benchmark used to measure profiling overhead
//!   (§6.6) ([`overhead`]).
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod callgraph;
pub mod endpoint;
pub mod error;
pub mod gcpu;
pub mod metadata;
pub mod overhead;
pub mod pyperf;
pub mod sample;

pub use callgraph::{CallGraph, CallGraphBuilder, FrameId};
pub use error::ProfilerError;
pub use gcpu::GcpuTable;
pub use sample::{StackSample, StackTrace, TraceSampler};

/// Convenience alias used by fallible routines in this crate.
pub type Result<T> = std::result::Result<T, ProfilerError>;
