//! The CPU-intensive micro-benchmark used to measure profiling overhead
//! (§6.6).
//!
//! The paper measures PyPerf's overhead with a workload that "repeatedly
//! serializes a large data structure, compresses it, and writes it to a
//! file", comparing throughput with and without sampling. This module
//! implements that workload (serialization and a from-scratch RLE+delta
//! compressor over [`bytes`] buffers) and a sampling hook whose per-sample
//! cost models walking the virtual call stack.

use bytes::{BufMut, Bytes, BytesMut};

/// A record in the serialized data structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Record key.
    pub id: u64,
    /// Payload counters.
    pub counters: Vec<u32>,
    /// A label string.
    pub label: String,
}

/// Builds a deterministic dataset of `n` records.
pub fn build_dataset(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| Record {
            id: i as u64,
            counters: (0..32).map(|j| ((i * 31 + j * 7) % 251) as u32).collect(),
            label: format!("record-{i:08}"),
        })
        .collect()
}

/// Serializes records into a length-prefixed binary buffer.
pub fn serialize(records: &[Record]) -> Bytes {
    let mut buf = BytesMut::with_capacity(records.len() * 64);
    buf.put_u32(records.len() as u32);
    for r in records {
        buf.put_u64(r.id);
        buf.put_u16(r.counters.len() as u16);
        for &c in &r.counters {
            buf.put_u32(c);
        }
        buf.put_u16(r.label.len() as u16);
        buf.put_slice(r.label.as_bytes());
    }
    buf.freeze()
}

/// Compresses a buffer with byte-wise delta coding followed by run-length
/// encoding — simple, deterministic, and CPU-bound like the paper's zlib
/// stage.
pub fn compress(data: &[u8]) -> Bytes {
    // Delta stage.
    let mut delta = Vec::with_capacity(data.len());
    let mut prev = 0u8;
    for &b in data {
        delta.push(b.wrapping_sub(prev));
        prev = b;
    }
    // RLE stage: (count, byte) pairs with max run 255.
    let mut out = BytesMut::with_capacity(delta.len() / 2 + 16);
    let mut i = 0;
    while i < delta.len() {
        let b = delta[i];
        let mut run = 1usize;
        while i + run < delta.len() && delta[i + run] == b && run < 255 {
            run += 1;
        }
        out.put_u8(run as u8);
        out.put_u8(b);
        i += run;
    }
    out.freeze()
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Vec<u8> {
    let mut delta = Vec::with_capacity(data.len() * 2);
    for pair in data.chunks_exact(2) {
        for _ in 0..pair[0] {
            delta.push(pair[1]);
        }
    }
    let mut out = Vec::with_capacity(delta.len());
    let mut prev = 0u8;
    for d in delta {
        prev = prev.wrapping_add(d);
        out.push(prev);
    }
    out
}

/// A sink standing in for the output file.
#[derive(Debug, Default)]
pub struct Sink {
    bytes_written: u64,
    checksum: u64,
}

impl Sink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// "Writes" a buffer: accounts its length and folds a checksum so the
    /// optimizer cannot elide the work.
    pub fn write(&mut self, data: &[u8]) {
        self.bytes_written += data.len() as u64;
        let mut sum = self.checksum;
        for chunk in data.chunks(8) {
            let mut v = 0u64;
            for &b in chunk {
                v = (v << 8) | b as u64;
            }
            sum = sum.wrapping_mul(0x100_0000_01b3).wrapping_add(v);
        }
        self.checksum = sum;
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Fold-in checksum of everything written.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }
}

/// Models the profiler's per-sample cost: walking a virtual call stack of
/// `depth` frames and hashing each frame descriptor, as PyPerf's eBPF probe
/// does.
#[derive(Debug, Clone, Copy)]
pub struct SamplingCost {
    /// Stack depth walked per sample.
    pub stack_depth: usize,
    /// Iterations of per-frame work (pointer chases + hashing).
    pub per_frame_work: usize,
}

impl Default for SamplingCost {
    fn default() -> Self {
        SamplingCost {
            stack_depth: 40,
            per_frame_work: 24,
        }
    }
}

/// Performs one simulated stack capture and returns a checksum (so the work
/// is observable).
pub fn simulated_stack_capture(cost: SamplingCost) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for frame in 0..cost.stack_depth {
        for w in 0..cost.per_frame_work {
            h ^= (frame as u64) << 17 ^ w as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    std::hint::black_box(h)
}

/// One iteration of the micro-benchmark: serialize, compress, write.
///
/// `samples_per_iteration` simulated stack captures are interleaved,
/// modelling the configured sampling rate (0 disables profiling).
pub fn run_iteration(
    records: &[Record],
    sink: &mut Sink,
    samples_per_iteration: usize,
    cost: SamplingCost,
) -> usize {
    let serialized = serialize(records);
    for _ in 0..samples_per_iteration {
        simulated_stack_capture(cost);
    }
    let compressed = compress(&serialized);
    sink.write(&compressed);
    compressed.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_deterministic() {
        let d = build_dataset(10);
        assert_eq!(serialize(&d), serialize(&d));
    }

    #[test]
    fn compress_roundtrip() {
        let d = build_dataset(50);
        let s = serialize(&d);
        let c = compress(&s);
        assert_eq!(decompress(&c), s.to_vec());
    }

    #[test]
    fn compress_shrinks_runs() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert!(c.len() < 20, "compressed to {} bytes", c.len());
        assert_eq!(decompress(&c), data);
    }

    #[test]
    fn compress_empty() {
        assert!(compress(&[]).is_empty());
        assert!(decompress(&[]).is_empty());
    }

    #[test]
    fn sink_accounts_bytes() {
        let mut sink = Sink::new();
        sink.write(&[1, 2, 3]);
        sink.write(&[4]);
        assert_eq!(sink.bytes_written(), 4);
        assert_ne!(sink.checksum(), 0);
    }

    #[test]
    fn iteration_produces_output() {
        let d = build_dataset(20);
        let mut sink = Sink::new();
        let n = run_iteration(&d, &mut sink, 0, SamplingCost::default());
        assert!(n > 0);
        assert_eq!(sink.bytes_written(), n as u64);
    }

    #[test]
    fn sampling_work_is_observable() {
        // The capture must return a nonzero checksum and vary with depth.
        let a = simulated_stack_capture(SamplingCost {
            stack_depth: 10,
            per_frame_work: 10,
        });
        let b = simulated_stack_capture(SamplingCost {
            stack_depth: 20,
            per_frame_work: 10,
        });
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
