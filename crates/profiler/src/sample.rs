//! Stack-trace sampling from a weighted call graph.
//!
//! A wall-clock sampling profiler interrupts a process at random times; the
//! probability of observing the CPU inside subroutine `f`'s own code is
//! proportional to `f`'s self weight. The captured stack trace is then the
//! path from the root to `f`. [`TraceSampler`] reproduces this behaviour
//! over a [`CallGraph`].

use crate::callgraph::{CallGraph, FrameId};
use crate::{ProfilerError, Result};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

/// A captured stack trace: frame ids from the root (index 0) to the leaf.
pub type StackTrace = Vec<FrameId>;

/// One stack-trace sample with collection context.
#[derive(Debug, Clone, PartialEq)]
pub struct StackSample {
    /// Frames from root to leaf.
    pub trace: StackTrace,
    /// When the sample was taken (simulator seconds).
    pub timestamp: u64,
    /// Which server produced the sample.
    pub server: u32,
    /// Optional frame metadata attached via `SetFrameMetadata()` (§3);
    /// `(frame_index_in_trace, metadata)` pairs.
    pub metadata: Vec<(usize, String)>,
}

impl StackSample {
    /// Whether the sample's trace contains the given frame.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.trace.contains(&frame)
    }

    /// The leaf frame (where the CPU actually was).
    pub fn leaf(&self) -> Option<FrameId> {
        self.trace.last().copied()
    }
}

/// Samples stack traces from a call graph.
///
/// The sampler pre-computes a weighted distribution over frames (by self
/// weight); each sample picks a frame and emits the root path to it. This
/// is equivalent to, but much faster than, a top-down weighted walk.
#[derive(Debug, Clone)]
pub struct TraceSampler {
    paths: Vec<StackTrace>,
    distribution: WeightedIndex<f64>,
}

impl TraceSampler {
    /// Builds a sampler for the graph's current weights.
    ///
    /// Rebuild the sampler after mutating the graph (regression injection or
    /// cost shifts) — the distribution snapshots the weights at build time.
    pub fn new(graph: &CallGraph) -> Result<Self> {
        let mut paths = Vec::with_capacity(graph.len());
        let mut weights = Vec::with_capacity(graph.len());
        for id in 0..graph.len() {
            let frame = graph.frame(id)?;
            paths.push(graph.path_to_root(id)?);
            weights.push(frame.self_weight.max(0.0));
        }
        let distribution =
            WeightedIndex::new(&weights).map_err(|_| ProfilerError::EmptyCallGraph)?;
        Ok(TraceSampler {
            paths,
            distribution,
        })
    }

    /// Draws one stack trace.
    pub fn sample_trace<R: Rng>(&self, rng: &mut R) -> StackTrace {
        self.paths[self.distribution.sample(rng)].clone()
    }

    /// Draws a full [`StackSample`] with context.
    pub fn sample<R: Rng>(&self, rng: &mut R, timestamp: u64, server: u32) -> StackSample {
        StackSample {
            trace: self.sample_trace(rng),
            timestamp,
            server,
            metadata: Vec::new(),
        }
    }

    /// Draws `n` samples at the given timestamp.
    pub fn sample_n<R: Rng>(
        &self,
        rng: &mut R,
        n: usize,
        timestamp: u64,
        server: u32,
    ) -> Vec<StackSample> {
        (0..n)
            .map(|_| self.sample(rng, timestamp, server))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_graph() -> CallGraph {
        let mut b = CallGraphBuilder::new("main", 1.0);
        let a = b.add_child(0, "a", 2.0, "A").unwrap();
        b.add_child(0, "b", 3.0, "B").unwrap();
        b.add_child(a, "c", 4.0, "A").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn traces_start_at_root() {
        let g = demo_graph();
        let sampler = TraceSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let t = sampler.sample_trace(&mut rng);
            assert_eq!(t[0], g.root());
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn sampling_frequency_matches_gcpu() {
        // With enough samples the fraction of traces containing a frame
        // converges to its expected gCPU.
        let g = demo_graph();
        let sampler = TraceSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let a = g.frame_by_name("a").unwrap();
        let b_id = g.frame_by_name("b").unwrap();
        let mut count_a = 0;
        let mut count_b = 0;
        for _ in 0..n {
            let t = sampler.sample_trace(&mut rng);
            if t.contains(&a) {
                count_a += 1;
            }
            if t.contains(&b_id) {
                count_b += 1;
            }
        }
        let ga = count_a as f64 / n as f64;
        let gb = count_b as f64 / n as f64;
        assert!((ga - 0.6).abs() < 0.01, "gCPU(a) = {ga}");
        assert!((gb - 0.3).abs() < 0.01, "gCPU(b) = {gb}");
    }

    #[test]
    fn zero_weight_frames_never_lead() {
        // "main" has weight 1 but "dispatch"-style zero-weight frames can
        // appear only as ancestors, never as leaves.
        let mut b = CallGraphBuilder::new("main", 0.0);
        let mid = b.add_child(0, "dispatch", 0.0, "").unwrap();
        b.add_child(mid, "leaf", 1.0, "").unwrap();
        let g = b.build().unwrap();
        let sampler = TraceSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let t = sampler.sample_trace(&mut rng);
            assert_eq!(t.len(), 3); // Every sample reaches the only leaf.
        }
    }

    #[test]
    fn sample_carries_context() {
        let g = demo_graph();
        let sampler = TraceSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = sampler.sample(&mut rng, 1234, 56);
        assert_eq!(s.timestamp, 1234);
        assert_eq!(s.server, 56);
        assert!(s.leaf().is_some());
    }

    #[test]
    fn sample_n_count() {
        let g = demo_graph();
        let sampler = TraceSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(sampler.sample_n(&mut rng, 17, 0, 0).len(), 17);
    }
}
