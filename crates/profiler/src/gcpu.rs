//! gCPU derivation from stack-trace samples (§2, §4).
//!
//! "If 100 stack-trace samples are collected for a service, and a subroutine
//! `foo` appears in 8 of these samples, the normalized CPU usage of `foo` is
//! calculated as 8%." The gCPU of a subroutine is *inclusive*: it counts
//! samples where the subroutine appears anywhere in the trace, covering its
//! own code and everything it transitively invokes.

use crate::callgraph::FrameId;
use crate::sample::StackSample;
use crate::{ProfilerError, Result};
use std::collections::HashMap;

/// Per-subroutine gCPU values derived from a batch of samples.
#[derive(Debug, Clone, Default)]
pub struct GcpuTable {
    counts: HashMap<FrameId, usize>,
    total_samples: usize,
}

impl GcpuTable {
    /// Tallies a batch of samples. Each frame is counted at most once per
    /// sample even if recursion repeats it in the trace.
    pub fn from_samples(samples: &[StackSample]) -> Result<Self> {
        if samples.is_empty() {
            return Err(ProfilerError::NoSamples);
        }
        let mut counts: HashMap<FrameId, usize> = HashMap::new();
        let mut seen: Vec<FrameId> = Vec::new();
        for s in samples {
            seen.clear();
            for &f in &s.trace {
                if !seen.contains(&f) {
                    seen.push(f);
                    *counts.entry(f).or_insert(0) += 1;
                }
            }
        }
        Ok(GcpuTable {
            counts,
            total_samples: samples.len(),
        })
    }

    /// Number of samples the table was built from.
    pub fn total_samples(&self) -> usize {
        self.total_samples
    }

    /// gCPU of a subroutine: the fraction of samples containing it.
    pub fn gcpu(&self, frame: FrameId) -> f64 {
        if self.total_samples == 0 {
            0.0
        } else {
            self.counts.get(&frame).copied().unwrap_or(0) as f64 / self.total_samples as f64
        }
    }

    /// Raw sample count for a subroutine.
    pub fn count(&self, frame: FrameId) -> usize {
        self.counts.get(&frame).copied().unwrap_or(0)
    }

    /// All frames observed at least once, with their gCPU, sorted by frame.
    pub fn all_gcpu(&self) -> Vec<(FrameId, f64)> {
        let mut v: Vec<(FrameId, f64)> = self
            .counts
            .iter()
            .map(|(&f, &c)| (f, c as f64 / self.total_samples as f64))
            .collect();
        v.sort_by_key(|&(f, _)| f);
        v
    }

    /// Frames whose gCPU is at least `threshold` — the paper's "non-trivial"
    /// subroutines are those with gCPU ≥ 0.001% (§2).
    pub fn non_trivial(&self, threshold: f64) -> Vec<(FrameId, f64)> {
        self.all_gcpu()
            .into_iter()
            .filter(|&(_, g)| g >= threshold)
            .collect()
    }

    /// The *popularity score* of a subroutine — the probability that it
    /// appears in a random stack-trace sample (used by `ImportanceScore`,
    /// §5.5.1). Identical to gCPU by definition.
    pub fn popularity(&self, frame: FrameId) -> f64 {
        self.gcpu(frame)
    }
}

/// Stack-trace overlap between two subroutines: the fraction of samples used
/// by either that contain *both* (Jaccard on sample sets). A PairwiseDedup
/// feature (§5.5.2).
pub fn stack_trace_overlap(samples: &[StackSample], a: FrameId, b: FrameId) -> Result<f64> {
    if samples.is_empty() {
        return Err(ProfilerError::NoSamples);
    }
    let mut only_a = 0usize;
    let mut only_b = 0usize;
    let mut both = 0usize;
    for s in samples {
        let has_a = s.contains(a);
        let has_b = s.contains(b);
        match (has_a, has_b) {
            (true, true) => both += 1,
            (true, false) => only_a += 1,
            (false, true) => only_b += 1,
            (false, false) => {}
        }
    }
    let union = only_a + only_b + both;
    if union == 0 {
        Ok(0.0)
    } else {
        Ok(both as f64 / union as f64)
    }
}

/// gCPU restricted to samples that satisfy a predicate (e.g. samples whose
/// metadata carries a particular annotation — metadata-annotated regressions
/// of §3).
pub fn gcpu_filtered<P>(samples: &[StackSample], frame: FrameId, predicate: P) -> Result<f64>
where
    P: Fn(&StackSample) -> bool,
{
    if samples.is_empty() {
        return Err(ProfilerError::NoSamples);
    }
    let mut matching = 0usize;
    let mut containing = 0usize;
    for s in samples {
        if predicate(s) {
            matching += 1;
            if s.contains(frame) {
                containing += 1;
            }
        }
    }
    if matching == 0 {
        Ok(0.0)
    } else {
        Ok(containing as f64 / matching as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(trace: &[FrameId]) -> StackSample {
        StackSample {
            trace: trace.to_vec(),
            timestamp: 0,
            server: 0,
            metadata: Vec::new(),
        }
    }

    #[test]
    fn paper_eight_percent_example() {
        // 100 samples, frame 7 appears in 8 of them -> gCPU 8%.
        let mut samples = Vec::new();
        for i in 0..100 {
            if i < 8 {
                samples.push(sample(&[0, 7]));
            } else {
                samples.push(sample(&[0, 1]));
            }
        }
        let t = GcpuTable::from_samples(&samples).unwrap();
        assert!((t.gcpu(7) - 0.08).abs() < 1e-12);
        assert!((t.gcpu(0) - 1.0).abs() < 1e-12);
        assert_eq!(t.count(7), 8);
    }

    #[test]
    fn recursion_counted_once() {
        let samples = vec![sample(&[0, 1, 1, 1])];
        let t = GcpuTable::from_samples(&samples).unwrap();
        assert_eq!(t.count(1), 1);
        assert_eq!(t.gcpu(1), 1.0);
    }

    #[test]
    fn non_trivial_threshold() {
        let mut samples = vec![sample(&[0, 1]); 999];
        samples.push(sample(&[0, 2]));
        let t = GcpuTable::from_samples(&samples).unwrap();
        // Frame 2 has gCPU 0.001.
        let nt = t.non_trivial(0.01);
        assert!(nt.iter().all(|&(f, _)| f != 2));
        let nt = t.non_trivial(0.0005);
        assert!(nt.iter().any(|&(f, _)| f == 2));
    }

    #[test]
    fn overlap_of_caller_and_callee_is_high() {
        // b is only ever called through a: overlap(a, b) counts samples
        // containing either; all b-samples contain a.
        let samples = vec![
            sample(&[0, 1, 2]), // a=1, b=2.
            sample(&[0, 1, 2]),
            sample(&[0, 1]),
            sample(&[0, 3]),
        ];
        let o = stack_trace_overlap(&samples, 1, 2).unwrap();
        assert!((o - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_disjoint_frames_is_zero() {
        let samples = vec![sample(&[0, 1]), sample(&[0, 2])];
        assert_eq!(stack_trace_overlap(&samples, 1, 2).unwrap(), 0.0);
    }

    #[test]
    fn overlap_unobserved_frames_zero() {
        let samples = vec![sample(&[0, 1])];
        assert_eq!(stack_trace_overlap(&samples, 5, 6).unwrap(), 0.0);
    }

    #[test]
    fn filtered_gcpu_by_metadata() {
        let mut with_meta = sample(&[0, 1]);
        with_meta.metadata.push((1, "user_category:vip".into()));
        let samples = vec![with_meta, sample(&[0, 1]), sample(&[0, 2])];
        let g = gcpu_filtered(&samples, 1, |s| {
            s.metadata
                .iter()
                .any(|(_, m)| m.starts_with("user_category:"))
        })
        .unwrap();
        assert_eq!(g, 1.0);
        let g_all = gcpu_filtered(&samples, 1, |_| true).unwrap();
        assert!((g_all - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_error() {
        assert!(GcpuTable::from_samples(&[]).is_err());
        assert!(stack_trace_overlap(&[], 0, 1).is_err());
    }
}
