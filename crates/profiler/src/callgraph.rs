//! Weighted call-graph model of a service.
//!
//! A service's code is modelled as a tree of subroutines. Each node carries
//! a *self weight* — the relative CPU time spent in the subroutine's own
//! code — and children it invokes. A stack-trace sample is a root-to-frame
//! path drawn with probability proportional to the weights, exactly what a
//! wall-clock sampling profiler observes. Cost shifts (code refactoring
//! moving work between subroutines, §5.4) are modelled by moving self
//! weight between nodes.

use crate::{ProfilerError, Result};

/// Index of a subroutine within a [`CallGraph`].
pub type FrameId = usize;

/// A subroutine node in the call graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Fully qualified subroutine name, e.g. `"RequestHandler::decode"`.
    pub name: String,
    /// Class (or module) the subroutine belongs to, used as a cost domain
    /// by the cost-shift detector (§5.4). Empty if free-standing.
    pub class: String,
    /// Relative CPU time spent in this subroutine's own code.
    pub self_weight: f64,
    /// Children invoked by this subroutine.
    pub children: Vec<FrameId>,
    /// Parent frame, if any (the root has none).
    pub parent: Option<FrameId>,
}

/// A weighted call tree describing where a service spends CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CallGraph {
    frames: Vec<Frame>,
    root: FrameId,
}

impl CallGraph {
    /// The root frame id.
    pub fn root(&self) -> FrameId {
        self.root
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the graph has no frames (never true for built graphs).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The frame with the given id.
    pub fn frame(&self, id: FrameId) -> Result<&Frame> {
        self.frames.get(id).ok_or(ProfilerError::UnknownFrame(id))
    }

    /// Looks up a frame id by subroutine name.
    pub fn frame_by_name(&self, name: &str) -> Result<FrameId> {
        self.frames
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| ProfilerError::UnknownSubroutine(name.to_string()))
    }

    /// All frame names, indexed by frame id.
    pub fn names(&self) -> Vec<&str> {
        self.frames.iter().map(|f| f.name.as_str()).collect()
    }

    /// Inclusive weight of a frame: its self weight plus all descendants'.
    pub fn inclusive_weight(&self, id: FrameId) -> Result<f64> {
        let frame = self.frame(id)?;
        let mut total = frame.self_weight;
        for &child in &frame.children {
            total += self.inclusive_weight(child)?;
        }
        Ok(total)
    }

    /// Total weight of the whole graph.
    pub fn total_weight(&self) -> f64 {
        self.inclusive_weight(self.root).unwrap_or(0.0)
    }

    /// The expected gCPU of a subroutine: its inclusive weight over the
    /// total (this is the quantity stack-trace sampling estimates).
    pub fn expected_gcpu(&self, id: FrameId) -> Result<f64> {
        let total = self.total_weight();
        if total <= 0.0 {
            return Err(ProfilerError::EmptyCallGraph);
        }
        Ok(self.inclusive_weight(id)? / total)
    }

    /// Adds `delta` to a frame's self weight (used to inject regressions).
    ///
    /// The resulting weight must stay non-negative.
    pub fn adjust_self_weight(&mut self, id: FrameId, delta: f64) -> Result<()> {
        if !delta.is_finite() {
            return Err(ProfilerError::InvalidWeight("delta must be finite"));
        }
        let frame = self
            .frames
            .get_mut(id)
            .ok_or(ProfilerError::UnknownFrame(id))?;
        let new = frame.self_weight + delta;
        if new < 0.0 {
            return Err(ProfilerError::InvalidWeight(
                "self weight would become negative",
            ));
        }
        frame.self_weight = new;
        Ok(())
    }

    /// Moves `amount` of self weight from one frame to another — a *cost
    /// shift* (§5.4): total cost is unchanged but the destination appears
    /// to regress.
    pub fn shift_cost(&mut self, from: FrameId, to: FrameId, amount: f64) -> Result<()> {
        if amount < 0.0 || !amount.is_finite() {
            return Err(ProfilerError::InvalidWeight("shift must be non-negative"));
        }
        self.adjust_self_weight(from, -amount)?;
        // Roll back is unnecessary: the second adjust can only fail on an
        // unknown id, which we check first.
        self.frame(to)?;
        self.adjust_self_weight(to, amount)
    }

    /// The path of frame ids from the root to `id`, inclusive.
    pub fn path_to_root(&self, id: FrameId) -> Result<Vec<FrameId>> {
        let mut path = vec![id];
        let mut current = id;
        while let Some(parent) = self.frame(current)?.parent {
            path.push(parent);
            current = parent;
        }
        path.reverse();
        Ok(path)
    }

    /// All frames sharing the given class name — a class cost domain (§5.4).
    pub fn frames_in_class(&self, class: &str) -> Vec<FrameId> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.class == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// All descendant frame ids of `id` (excluding `id` itself).
    pub fn descendants(&self, id: FrameId) -> Result<Vec<FrameId>> {
        let mut out = Vec::new();
        let mut stack = self.frame(id)?.children.clone();
        while let Some(next) = stack.pop() {
            out.push(next);
            stack.extend(self.frame(next)?.children.iter().copied());
        }
        Ok(out)
    }
}

/// Builder for [`CallGraph`].
///
/// # Examples
///
/// ```
/// use fbd_profiler::CallGraphBuilder;
/// let mut b = CallGraphBuilder::new("main", 1.0);
/// let handler = b.add_child(b.root(), "handle_request", 2.0, "Server").unwrap();
/// b.add_child(handler, "decode", 3.0, "Codec").unwrap();
/// let graph = b.build().unwrap();
/// assert_eq!(graph.len(), 3);
/// assert!((graph.total_weight() - 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CallGraphBuilder {
    frames: Vec<Frame>,
}

impl CallGraphBuilder {
    /// Starts a graph with a root subroutine.
    pub fn new(root_name: impl Into<String>, root_self_weight: f64) -> Self {
        CallGraphBuilder {
            frames: vec![Frame {
                name: root_name.into(),
                class: String::new(),
                self_weight: root_self_weight,
                children: Vec::new(),
                parent: None,
            }],
        }
    }

    /// The root frame id (always 0).
    pub fn root(&self) -> FrameId {
        0
    }

    /// Adds a child subroutine under `parent` and returns its id.
    pub fn add_child(
        &mut self,
        parent: FrameId,
        name: impl Into<String>,
        self_weight: f64,
        class: impl Into<String>,
    ) -> Result<FrameId> {
        if !self_weight.is_finite() || self_weight < 0.0 {
            return Err(ProfilerError::InvalidWeight(
                "self weight must be finite and non-negative",
            ));
        }
        if parent >= self.frames.len() {
            return Err(ProfilerError::UnknownFrame(parent));
        }
        let id = self.frames.len();
        self.frames.push(Frame {
            name: name.into(),
            class: class.into(),
            self_weight,
            children: Vec::new(),
            parent: Some(parent),
        });
        self.frames[parent].children.push(id);
        Ok(id)
    }

    /// Finishes the graph.
    pub fn build(self) -> Result<CallGraph> {
        if self.frames.is_empty() {
            return Err(ProfilerError::EmptyCallGraph);
        }
        let graph = CallGraph {
            frames: self.frames,
            root: 0,
        };
        if graph.total_weight() <= 0.0 {
            return Err(ProfilerError::EmptyCallGraph);
        }
        Ok(graph)
    }
}

/// Builds a synthetic service call graph with `k` leaf subroutines of equal
/// weight under a small dispatch hierarchy — the §2 simulation setup where
/// process CPU is distributed across `k` subroutines.
pub fn uniform_service_graph(k: usize, total_weight: f64) -> Result<CallGraph> {
    if k == 0 {
        return Err(ProfilerError::EmptyCallGraph);
    }
    let mut b = CallGraphBuilder::new("main", 0.0);
    let dispatch = b.add_child(0, "dispatch", 0.0, "Runtime")?;
    let per_leaf = total_weight / k as f64;
    for i in 0..k {
        b.add_child(
            dispatch,
            format!("subroutine_{i:05}"),
            per_leaf,
            format!("Module{:03}", i % 97),
        )?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_graph() -> CallGraph {
        // main(1) -> a(2) -> c(4)
        //         -> b(3)
        let mut b = CallGraphBuilder::new("main", 1.0);
        let a = b.add_child(0, "a", 2.0, "A").unwrap();
        b.add_child(0, "b", 3.0, "B").unwrap();
        b.add_child(a, "c", 4.0, "A").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn inclusive_weights() {
        let g = demo_graph();
        assert_eq!(g.total_weight(), 10.0);
        let a = g.frame_by_name("a").unwrap();
        assert_eq!(g.inclusive_weight(a).unwrap(), 6.0);
        let c = g.frame_by_name("c").unwrap();
        assert_eq!(g.inclusive_weight(c).unwrap(), 4.0);
    }

    #[test]
    fn expected_gcpu_fractions() {
        let g = demo_graph();
        let a = g.frame_by_name("a").unwrap();
        assert!((g.expected_gcpu(a).unwrap() - 0.6).abs() < 1e-12);
        assert!((g.expected_gcpu(g.root()).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_shift_preserves_total() {
        let mut g = demo_graph();
        let b_id = g.frame_by_name("b").unwrap();
        let c_id = g.frame_by_name("c").unwrap();
        let before = g.total_weight();
        g.shift_cost(b_id, c_id, 2.0).unwrap();
        assert_eq!(g.total_weight(), before);
        assert_eq!(g.frame(b_id).unwrap().self_weight, 1.0);
        assert_eq!(g.frame(c_id).unwrap().self_weight, 6.0);
    }

    #[test]
    fn cost_shift_cannot_go_negative() {
        let mut g = demo_graph();
        let b_id = g.frame_by_name("b").unwrap();
        let c_id = g.frame_by_name("c").unwrap();
        assert!(g.shift_cost(b_id, c_id, 100.0).is_err());
    }

    #[test]
    fn path_to_root() {
        let g = demo_graph();
        let c = g.frame_by_name("c").unwrap();
        let path = g.path_to_root(c).unwrap();
        let names: Vec<&str> = path
            .iter()
            .map(|&id| g.frame(id).unwrap().name.as_str())
            .collect();
        assert_eq!(names, vec!["main", "a", "c"]);
    }

    #[test]
    fn class_domain_lookup() {
        let g = demo_graph();
        let class_a = g.frames_in_class("A");
        assert_eq!(class_a.len(), 2);
    }

    #[test]
    fn descendants_of_root() {
        let g = demo_graph();
        assert_eq!(g.descendants(g.root()).unwrap().len(), 3);
        let c = g.frame_by_name("c").unwrap();
        assert!(g.descendants(c).unwrap().is_empty());
    }

    #[test]
    fn uniform_graph_is_balanced() {
        let g = uniform_service_graph(100, 50.0).unwrap();
        assert_eq!(g.len(), 102);
        assert!((g.total_weight() - 50.0).abs() < 1e-9);
        let first = g.frame_by_name("subroutine_00000").unwrap();
        assert!((g.expected_gcpu(first).unwrap() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        let mut b = CallGraphBuilder::new("main", 1.0);
        assert!(b.add_child(99, "x", 1.0, "").is_err());
        assert!(b.add_child(0, "x", -1.0, "").is_err());
        assert!(b.add_child(0, "x", f64::NAN, "").is_err());
        assert!(uniform_service_graph(0, 1.0).is_err());
    }
}
