//! Frame metadata annotation — `SetFrameMetadata()` (§3).
//!
//! A subroutine can annotate its stack frame to provide additional context,
//! enabling detection of regressions that occur only under certain
//! conditions (e.g. requests on behalf of a specific category of users).
//! This module provides an annotator that decorates sampled stacks and
//! grouping helpers keyed by metadata prefix — which also serve as a cost
//! domain for the cost-shift detector (§5.4).

use crate::callgraph::FrameId;
use crate::sample::StackSample;
use std::collections::HashMap;

/// Attaches metadata to frames when they appear in sampled traces.
///
/// Mirrors the production flow: the *running code* calls
/// `SetFrameMetadata()`, so the annotation is a property of the frame at
/// sample time. The simulator registers annotations up front and applies
/// them to each captured sample.
#[derive(Debug, Clone, Default)]
pub struct FrameAnnotator {
    annotations: HashMap<FrameId, String>,
}

impl FrameAnnotator {
    /// Creates an empty annotator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers metadata for a frame — the simulator-side equivalent of
    /// that subroutine calling `SetFrameMetadata(metadata)`.
    pub fn set_frame_metadata(&mut self, frame: FrameId, metadata: impl Into<String>) {
        self.annotations.insert(frame, metadata.into());
    }

    /// Removes a frame's metadata.
    pub fn clear_frame_metadata(&mut self, frame: FrameId) {
        self.annotations.remove(&frame);
    }

    /// Decorates a sample with the registered annotations for every frame
    /// present in its trace.
    pub fn annotate(&self, sample: &mut StackSample) {
        for (idx, frame) in sample.trace.iter().enumerate() {
            if let Some(meta) = self.annotations.get(frame) {
                sample.metadata.push((idx, meta.clone()));
            }
        }
    }

    /// Decorates a whole batch.
    pub fn annotate_all(&self, samples: &mut [StackSample]) {
        for s in samples.iter_mut() {
            self.annotate(s);
        }
    }
}

/// Groups samples by the metadata value found at any frame, truncated to
/// `prefix_len` characters — the metadata-prefix cost domain (§5.4).
pub fn group_by_metadata_prefix(
    samples: &[StackSample],
    prefix_len: usize,
) -> HashMap<String, Vec<usize>> {
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, s) in samples.iter().enumerate() {
        for (_, meta) in &s.metadata {
            let prefix: String = meta.chars().take(prefix_len).collect();
            let entry = groups.entry(prefix).or_default();
            if entry.last() != Some(&i) {
                entry.push(i);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(trace: &[FrameId]) -> StackSample {
        StackSample {
            trace: trace.to_vec(),
            timestamp: 0,
            server: 0,
            metadata: Vec::new(),
        }
    }

    #[test]
    fn annotations_attach_to_matching_frames() {
        let mut ann = FrameAnnotator::new();
        ann.set_frame_metadata(2, "user:vip");
        let mut s = sample(&[0, 1, 2]);
        ann.annotate(&mut s);
        assert_eq!(s.metadata, vec![(2, "user:vip".to_string())]);
    }

    #[test]
    fn no_annotation_for_absent_frames() {
        let mut ann = FrameAnnotator::new();
        ann.set_frame_metadata(9, "x");
        let mut s = sample(&[0, 1]);
        ann.annotate(&mut s);
        assert!(s.metadata.is_empty());
    }

    #[test]
    fn clear_removes_annotation() {
        let mut ann = FrameAnnotator::new();
        ann.set_frame_metadata(1, "x");
        ann.clear_frame_metadata(1);
        let mut s = sample(&[0, 1]);
        ann.annotate(&mut s);
        assert!(s.metadata.is_empty());
    }

    #[test]
    fn grouping_by_prefix() {
        let mut ann = FrameAnnotator::new();
        ann.set_frame_metadata(1, "user:vip");
        ann.set_frame_metadata(2, "user:free");
        ann.set_frame_metadata(3, "batch:nightly");
        let mut samples = vec![sample(&[0, 1]), sample(&[0, 2]), sample(&[0, 3])];
        ann.annotate_all(&mut samples);
        let groups = group_by_metadata_prefix(&samples, 5);
        assert_eq!(groups.get("user:").map(Vec::len), Some(2));
        assert_eq!(groups.get("batch").map(Vec::len), Some(1));
    }

    #[test]
    fn sample_in_one_group_once() {
        let mut ann = FrameAnnotator::new();
        ann.set_frame_metadata(1, "user:a");
        ann.set_frame_metadata(2, "user:b");
        // One sample containing both annotated frames.
        let mut samples = vec![sample(&[0, 1, 2])];
        ann.annotate_all(&mut samples);
        let groups = group_by_metadata_prefix(&samples, 5);
        assert_eq!(groups.get("user:").map(Vec::len), Some(1));
    }
}
