//! Error type for the profiling substrate.

use std::fmt;

/// Errors produced by the profiling substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfilerError {
    /// A frame id did not resolve to a known subroutine.
    UnknownFrame(usize),
    /// A subroutine name did not resolve.
    UnknownSubroutine(String),
    /// The call graph is empty or has zero total weight.
    EmptyCallGraph,
    /// A weight was negative or non-finite.
    InvalidWeight(&'static str),
    /// A stack reconstruction failed (malformed virtual call stack).
    MalformedStack(&'static str),
    /// No samples available for the requested computation.
    NoSamples,
}

impl fmt::Display for ProfilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfilerError::UnknownFrame(id) => write!(f, "unknown frame id {id}"),
            ProfilerError::UnknownSubroutine(name) => write!(f, "unknown subroutine {name}"),
            ProfilerError::EmptyCallGraph => write!(f, "call graph is empty"),
            ProfilerError::InvalidWeight(what) => write!(f, "invalid weight: {what}"),
            ProfilerError::MalformedStack(what) => write!(f, "malformed stack: {what}"),
            ProfilerError::NoSamples => write!(f, "no stack samples available"),
        }
    }
}

impl std::error::Error for ProfilerError {}
