//! Endpoint-level end-to-end tracing (§3).
//!
//! "An endpoint is a user-facing URL. As an endpoint request may involve
//! asynchronous and concurrent processing across multiple threads, we use
//! end-to-end tracing to aggregate the costs of all subroutines involved."
//!
//! This module models a distributed trace: a request produces *spans* on
//! several threads, each span carrying the stack samples attributed to it.
//! The endpoint's aggregated cost sums every span — synchronous and
//! asynchronous — so a regression in an async helper thread still surfaces
//! at the endpoint level even though no single synchronous stack contains
//! it.

use crate::callgraph::FrameId;
use crate::sample::StackSample;
use crate::{ProfilerError, Result};
use std::collections::HashMap;

/// One span of a distributed trace: work done on one thread on behalf of a
/// request.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Executing thread.
    pub thread: u32,
    /// Stack samples attributed to this span.
    pub samples: Vec<StackSample>,
}

/// A complete end-to-end trace of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct EndToEndTrace {
    /// The user-facing endpoint (URL).
    pub endpoint: String,
    /// Trace id (unique per request).
    pub trace_id: u64,
    /// All spans, across threads.
    pub spans: Vec<Span>,
}

impl EndToEndTrace {
    /// Total sample count across all spans — the endpoint's aggregate cost
    /// in sampling units.
    pub fn total_samples(&self) -> usize {
        self.spans.iter().map(|s| s.samples.len()).sum()
    }

    /// Sample count attributable to a specific subroutine across all spans.
    pub fn samples_containing(&self, frame: FrameId) -> usize {
        self.spans
            .iter()
            .flat_map(|s| &s.samples)
            .filter(|s| s.contains(frame))
            .count()
    }
}

/// Aggregated per-endpoint costs over a batch of traces.
#[derive(Debug, Clone, Default)]
pub struct EndpointCostTable {
    costs: HashMap<String, usize>,
    total: usize,
}

impl EndpointCostTable {
    /// Aggregates a batch of end-to-end traces.
    pub fn from_traces(traces: &[EndToEndTrace]) -> Result<Self> {
        if traces.is_empty() {
            return Err(ProfilerError::NoSamples);
        }
        let mut costs: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        for t in traces {
            let c = t.total_samples();
            *costs.entry(t.endpoint.clone()).or_insert(0) += c;
            total += c;
        }
        Ok(EndpointCostTable { costs, total })
    }

    /// The endpoint's normalized cost: its share of all samples — the
    /// endpoint-level analogue of gCPU.
    pub fn normalized_cost(&self, endpoint: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.costs.get(endpoint).copied().unwrap_or(0) as f64 / self.total as f64
        }
    }

    /// Raw sample count for an endpoint.
    pub fn cost(&self, endpoint: &str) -> usize {
        self.costs.get(endpoint).copied().unwrap_or(0)
    }

    /// All endpoints with their normalized costs, sorted by name.
    pub fn all(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .costs
            .keys()
            .map(|e| (e.clone(), self.normalized_cost(e)))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Total samples across all endpoints.
    pub fn total_samples(&self) -> usize {
        self.total
    }
}

/// Endpoints whose names share a prefix form a cost domain (§5.4: "a
/// detector … considers endpoints with matching name prefixes").
pub fn endpoints_with_prefix<'a>(
    table: &'a EndpointCostTable,
    prefix: &str,
) -> Vec<(&'a String, usize)> {
    table
        .costs
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(name, &cost)| (name, cost))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(trace: &[FrameId]) -> StackSample {
        StackSample {
            trace: trace.to_vec(),
            timestamp: 0,
            server: 0,
            metadata: vec![],
        }
    }

    fn trace(endpoint: &str, id: u64, span_sizes: &[usize]) -> EndToEndTrace {
        EndToEndTrace {
            endpoint: endpoint.to_string(),
            trace_id: id,
            spans: span_sizes
                .iter()
                .enumerate()
                .map(|(t, &n)| Span {
                    thread: t as u32,
                    samples: vec![sample(&[0, t]); n],
                })
                .collect(),
        }
    }

    #[test]
    fn aggregates_across_threads() {
        // The request spends 3 samples on the sync thread and 5 on an async
        // helper: endpoint cost must be 8, not 3.
        let t = trace("api/feed", 1, &[3, 5]);
        assert_eq!(t.total_samples(), 8);
    }

    #[test]
    fn normalized_costs_sum_to_one() {
        let traces = vec![
            trace("api/feed", 1, &[4]),
            trace("api/feed", 2, &[4]),
            trace("api/profile", 3, &[2]),
        ];
        let table = EndpointCostTable::from_traces(&traces).unwrap();
        assert!((table.normalized_cost("api/feed") - 0.8).abs() < 1e-12);
        assert!((table.normalized_cost("api/profile") - 0.2).abs() < 1e-12);
        let sum: f64 = table.all().iter().map(|(_, c)| c).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn async_regression_surfaces_at_endpoint_level() {
        // Before: async span costs 2; after: async span costs 6. The
        // endpoint's aggregate cost reflects the async regression.
        let before = EndpointCostTable::from_traces(&[
            trace("api/feed", 1, &[3, 2]),
            trace("api/other", 2, &[5]),
        ])
        .unwrap();
        let after = EndpointCostTable::from_traces(&[
            trace("api/feed", 3, &[3, 6]),
            trace("api/other", 4, &[5]),
        ])
        .unwrap();
        assert!(after.normalized_cost("api/feed") > before.normalized_cost("api/feed") + 0.1);
    }

    #[test]
    fn subroutine_attribution_spans_threads() {
        let mut t = trace("api/feed", 1, &[2, 2]);
        // Frame 9 appears only in the async span.
        t.spans[1].samples = vec![sample(&[0, 9]), sample(&[0, 1])];
        assert_eq!(t.samples_containing(9), 1);
    }

    #[test]
    fn prefix_domain() {
        let table = EndpointCostTable::from_traces(&[
            trace("api/user/get", 1, &[1]),
            trace("api/user/set", 2, &[1]),
            trace("internal/gc", 3, &[1]),
        ])
        .unwrap();
        let domain = endpoints_with_prefix(&table, "api/user/");
        assert_eq!(domain.len(), 2);
    }

    #[test]
    fn empty_traces_error() {
        assert!(EndpointCostTable::from_traces(&[]).is_err());
    }
}
