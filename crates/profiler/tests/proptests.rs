//! Property-based tests for the profiling substrate.

use fbd_profiler::callgraph::{uniform_service_graph, CallGraphBuilder};
use fbd_profiler::gcpu::{stack_trace_overlap, GcpuTable};
use fbd_profiler::overhead::{compress, decompress};
use fbd_profiler::pyperf::{reconstruct, scalene_view, synthesize_stacks, MergedFrame};
use fbd_profiler::sample::{StackSample, TraceSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_samples() -> impl Strategy<Value = Vec<StackSample>> {
    prop::collection::vec(
        prop::collection::vec(0usize..12, 1..6).prop_map(|trace| StackSample {
            trace,
            timestamp: 0,
            server: 0,
            metadata: vec![],
        }),
        1..60,
    )
}

proptest! {
    #[test]
    fn gcpu_values_are_probabilities(samples in arbitrary_samples()) {
        let t = GcpuTable::from_samples(&samples).unwrap();
        for (_, g) in t.all_gcpu() {
            prop_assert!((0.0..=1.0).contains(&g));
        }
        // The root-most frame of every trace is counted: max gCPU ≤ 1.
        prop_assert!(t.all_gcpu().iter().all(|&(_, g)| g <= 1.0));
    }

    #[test]
    fn overlap_symmetric_and_bounded(samples in arbitrary_samples(), a in 0usize..12, b in 0usize..12) {
        let o1 = stack_trace_overlap(&samples, a, b).unwrap();
        let o2 = stack_trace_overlap(&samples, b, a).unwrap();
        prop_assert!((o1 - o2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&o1));
        // Self-overlap is 1 when the frame appears at all.
        let self_overlap = stack_trace_overlap(&samples, a, a).unwrap();
        let appears = samples.iter().any(|s| s.contains(a));
        prop_assert_eq!(self_overlap == 1.0, appears);
    }

    #[test]
    fn uniform_graph_gcpu_sums(k in 1usize..50, weight in 0.1f64..10.0) {
        let g = uniform_service_graph(k, weight).unwrap();
        prop_assert!((g.total_weight() - weight).abs() < 1e-9);
        // Leaf gCPUs sum to 1 (they partition the weight).
        let mut sum = 0.0;
        for id in 0..g.len() {
            if g.frame(id).unwrap().children.is_empty() {
                sum += g.expected_gcpu(id).unwrap();
            }
        }
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_distribution_tracks_weights(w1 in 0.1f64..5.0, w2 in 0.1f64..5.0) {
        let mut b = CallGraphBuilder::new("main", 0.0);
        b.add_child(0, "a", w1, "").unwrap();
        b.add_child(0, "b", w2, "").unwrap();
        let g = b.build().unwrap();
        let sampler = TraceSampler::new(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let a_id = g.frame_by_name("a").unwrap();
        let hits = (0..n)
            .filter(|_| sampler.sample_trace(&mut rng).contains(&a_id))
            .count();
        let expected = w1 / (w1 + w2);
        let got = hits as f64 / n as f64;
        prop_assert!((got - expected).abs() < 0.03, "expected {expected}, got {got}");
    }

    #[test]
    fn cost_shift_keeps_total_invariant(
        k in 3usize..20,
        from in 0usize..20,
        to in 0usize..20,
        amount in 0.0f64..0.01,
    ) {
        let mut g = uniform_service_graph(k, 1.0).unwrap();
        // Map into leaf range (leaves start at id 2).
        let from = 2 + from % k;
        let to = 2 + to % k;
        let before = g.total_weight();
        if g.shift_cost(from, to, amount).is_ok() {
            prop_assert!((g.total_weight() - before).abs() < 1e-9);
        }
    }

    #[test]
    fn pyperf_reconstruction_exact(depth in 1usize..20, with_native: bool) {
        let chain: Vec<String> = (0..depth).map(|d| format!("f{d}")).collect();
        let refs: Vec<&str> = chain.iter().map(String::as_str).collect();
        let captured = synthesize_stacks(&refs, with_native.then_some("native_leaf"));
        let merged = reconstruct(&captured).unwrap();
        let python: Vec<&str> = merged
            .iter()
            .filter_map(|f| match f {
                MergedFrame::Python(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        prop_assert_eq!(python, refs.clone());
        let (scalene, attributed) = scalene_view(&captured);
        prop_assert_eq!(scalene, chain);
        prop_assert_eq!(attributed, with_native);
    }

    #[test]
    fn compression_roundtrip(data in prop::collection::vec(any::<u8>(), 0..2_000)) {
        prop_assert_eq!(decompress(&compress(&data)), data);
    }
}
