//! The adaptive-kernel-density EGADS detector.
//!
//! Estimates the historical value density with a Gaussian kernel whose
//! bandwidth adapts to the data (Silverman's rule), then flags the analysis
//! window when a sustained fraction of its points fall in low-density
//! regions. "EGADS algorithm 1" in Figure 8 — the only baseline able to
//! reach a low false-positive rate, at the cost of a high false-negative
//! rate.

use crate::{EgadsDetector, EgadsVerdict};
use fbd_stats::descriptive;

/// Adaptive kernel density detector.
///
/// `sensitivity` in `(0, +inf)` scales the density threshold: larger values
/// flag more anomalies.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveKernelDensity {
    sensitivity: f64,
}

impl AdaptiveKernelDensity {
    /// Creates a detector with the given sensitivity.
    pub fn new(sensitivity: f64) -> Self {
        AdaptiveKernelDensity { sensitivity }
    }

    /// Gaussian KDE of `x` under the historical sample with bandwidth `h`.
    fn density(historical: &[f64], x: f64, h: f64) -> f64 {
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * historical.len() as f64);
        historical
            .iter()
            .map(|&v| (-((x - v) * (x - v)) / (2.0 * h * h)).exp())
            .sum::<f64>()
            * norm
    }
}

impl EgadsDetector for AdaptiveKernelDensity {
    fn name(&self) -> &'static str {
        "adaptive kernel density"
    }

    fn detect(&self, historical: &[f64], analysis: &[f64]) -> EgadsVerdict {
        if historical.len() < 2 || analysis.is_empty() {
            return EgadsVerdict {
                anomalous: false,
                score: 0.0,
            };
        }
        let std = descriptive::std_dev(historical).unwrap_or(0.0);
        let iqr = descriptive::percentile(historical, 75.0).unwrap_or(0.0)
            - descriptive::percentile(historical, 25.0).unwrap_or(0.0);
        // Silverman's rule of thumb, robust variant.
        let spread = if iqr > 0.0 { std.min(iqr / 1.34) } else { std };
        let h = (0.9 * spread * (historical.len() as f64).powf(-0.2)).max(1e-9);
        // Reference density: the typical density of historical points
        // themselves (subsampled for speed).
        let stride = (historical.len() / 100).max(1);
        let mut ref_densities: Vec<f64> = historical
            .iter()
            .step_by(stride)
            .map(|&v| Self::density(historical, v, h))
            .collect();
        ref_densities.sort_by(f64::total_cmp);
        let low_ref = ref_densities[(ref_densities.len() as f64 * 0.05) as usize];
        let threshold = low_ref * self.sensitivity;
        // Fraction of analysis points in low-density regions.
        let low_count = analysis
            .iter()
            .filter(|&&v| Self::density(historical, v, h) < threshold)
            .count();
        let fraction = low_count as f64 / analysis.len() as f64;
        EgadsVerdict {
            // Sustained: most of the window must be unusual, not one spike.
            anomalous: fraction > 0.5,
            score: fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64 ^ seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z >> 33) % 1000) as f64 / 1000.0 * scale
            })
            .collect()
    }

    #[test]
    fn flags_out_of_distribution_window() {
        let hist = noise(400, 1, 1.0);
        let analysis: Vec<f64> = noise(50, 2, 1.0).iter().map(|v| v + 10.0).collect();
        let d = AdaptiveKernelDensity::new(1.0);
        let v = d.detect(&hist, &analysis);
        assert!(v.anomalous);
        assert!(v.score > 0.9);
    }

    #[test]
    fn quiet_on_in_distribution_window() {
        let hist = noise(400, 1, 1.0);
        let analysis = noise(50, 9, 1.0);
        let d = AdaptiveKernelDensity::new(1.0);
        assert!(!d.detect(&hist, &analysis).anomalous);
    }

    #[test]
    fn single_spike_not_sustained() {
        let hist = noise(400, 1, 1.0);
        let mut analysis = noise(50, 9, 1.0);
        analysis[25] = 100.0;
        let d = AdaptiveKernelDensity::new(1.0);
        assert!(!d.detect(&hist, &analysis).anomalous);
    }

    #[test]
    fn degenerate_inputs() {
        let d = AdaptiveKernelDensity::new(1.0);
        assert!(!d.detect(&[1.0], &[2.0]).anomalous);
        assert!(!d.detect(&[1.0, 2.0], &[]).anomalous);
    }
}
