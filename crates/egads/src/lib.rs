//! Reimplementation of the Yahoo EGADS anomaly-detection baselines (§6.5).
//!
//! The paper compares FBDetect against three EGADS algorithms on the same
//! windows: **adaptive kernel density**, **extreme low density**, and
//! **K-Sigma**. Each exposes a sensitivity parameter that trades false
//! positives for false negatives — the trade-off curve of Figure 8. Every
//! detector answers one question: given a historical window and an analysis
//! window, does the analysis window contain an anomaly?
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod adaptive_kernel;
pub mod extreme_low_density;
pub mod ksigma;

/// A detector's verdict on an analysis window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EgadsVerdict {
    /// Whether an anomaly was flagged.
    pub anomalous: bool,
    /// The detector's internal score (higher = more anomalous).
    pub score: f64,
}

/// Common interface of the EGADS baseline detectors.
pub trait EgadsDetector {
    /// Name used in reports.
    fn name(&self) -> &'static str;
    /// Judges the analysis window against the historical baseline.
    fn detect(&self, historical: &[f64], analysis: &[f64]) -> EgadsVerdict;
}

pub use adaptive_kernel::AdaptiveKernelDensity;
pub use extreme_low_density::ExtremeLowDensity;
pub use ksigma::KSigma;

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64 ^ seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z >> 33) % 1000) as f64 / 1000.0
            })
            .collect()
    }

    #[test]
    fn all_detectors_flag_an_obvious_step() {
        let historical = noise(500, 1);
        let analysis: Vec<f64> = noise(100, 2).iter().map(|v| v + 5.0).collect();
        let detectors: Vec<Box<dyn EgadsDetector>> = vec![
            Box::new(AdaptiveKernelDensity::new(1.0)),
            Box::new(ExtremeLowDensity::new(1.0)),
            Box::new(KSigma::new(3.0)),
        ];
        for d in detectors {
            assert!(
                d.detect(&historical, &analysis).anomalous,
                "{} missed an obvious step",
                d.name()
            );
        }
    }

    #[test]
    fn all_detectors_quiet_on_identical_noise() {
        let historical = noise(500, 1);
        let analysis = noise(100, 3);
        let detectors: Vec<Box<dyn EgadsDetector>> = vec![
            Box::new(AdaptiveKernelDensity::new(0.2)),
            Box::new(ExtremeLowDensity::new(0.2)),
            Box::new(KSigma::new(4.0)),
        ];
        for d in detectors {
            assert!(
                !d.detect(&historical, &analysis).anomalous,
                "{} false-positived on plain noise",
                d.name()
            );
        }
    }
}
