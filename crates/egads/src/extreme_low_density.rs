//! The extreme-low-density EGADS detector.
//!
//! A histogram-based density model: flags the analysis window when its
//! points fall into value buckets that held almost no historical mass.
//! Cheaper than the kernel detector but more sensitive to transient spikes
//! — "EGADS algorithm 2" in Figure 8.

use crate::{EgadsDetector, EgadsVerdict};

/// Extreme-low-density detector.
///
/// `sensitivity` in `(0, 1]` is the historical-mass threshold under which a
/// bucket counts as "extreme low density" (larger = more anomalies).
#[derive(Debug, Clone, Copy)]
pub struct ExtremeLowDensity {
    sensitivity: f64,
}

const BUCKETS: usize = 40;

impl ExtremeLowDensity {
    /// Creates a detector with the given sensitivity.
    pub fn new(sensitivity: f64) -> Self {
        ExtremeLowDensity { sensitivity }
    }
}

impl EgadsDetector for ExtremeLowDensity {
    fn name(&self) -> &'static str {
        "extreme low density"
    }

    fn detect(&self, historical: &[f64], analysis: &[f64]) -> EgadsVerdict {
        if historical.len() < 2 || analysis.is_empty() {
            return EgadsVerdict {
                anomalous: false,
                score: 0.0,
            };
        }
        let lo = historical.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = historical.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / BUCKETS as f64).max(1e-12);
        let mut hist_mass = [0usize; BUCKETS];
        for &v in historical {
            let b = (((v - lo) / width) as usize).min(BUCKETS - 1);
            hist_mass[b] += 1;
        }
        let mass_threshold = (historical.len() as f64 * 0.02 * self.sensitivity).max(1.0) as usize;
        // An analysis point is "extreme" when outside the historical range
        // or inside a bucket with almost no historical mass.
        let extreme = analysis
            .iter()
            .filter(|&&v| {
                if v < lo || v > hi {
                    return true;
                }
                let b = (((v - lo) / width) as usize).min(BUCKETS - 1);
                hist_mass[b] < mass_threshold
            })
            .count();
        let fraction = extreme as f64 / analysis.len() as f64;
        EgadsVerdict {
            anomalous: fraction > 0.3,
            score: fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64 ^ seed).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z >> 33) % 1000) as f64 / 1000.0
            })
            .collect()
    }

    #[test]
    fn flags_out_of_range_window() {
        let hist = noise(300, 1);
        let analysis: Vec<f64> = noise(40, 2).iter().map(|v| v + 3.0).collect();
        assert!(
            ExtremeLowDensity::new(1.0)
                .detect(&hist, &analysis)
                .anomalous
        );
    }

    #[test]
    fn quiet_on_in_range_window() {
        let hist = noise(300, 1);
        let analysis = noise(40, 7);
        assert!(
            !ExtremeLowDensity::new(0.5)
                .detect(&hist, &analysis)
                .anomalous
        );
    }

    #[test]
    fn more_sensitive_flags_more() {
        // A window that drifts only slightly: high sensitivity flags it,
        // low does not.
        let hist = noise(300, 1);
        let analysis: Vec<f64> = noise(40, 7).iter().map(|v| v * 0.2 + 0.9).collect();
        let lax = ExtremeLowDensity::new(0.05).detect(&hist, &analysis);
        let sensitive = ExtremeLowDensity::new(10.0).detect(&hist, &analysis);
        assert!(sensitive.score >= lax.score);
    }

    #[test]
    fn degenerate_inputs() {
        let d = ExtremeLowDensity::new(1.0);
        assert!(!d.detect(&[1.0], &[2.0]).anomalous);
        assert!(!d.detect(&[1.0, 2.0], &[]).anomalous);
    }
}
