//! The K-Sigma EGADS detector: flags the analysis window when its mean
//! departs from the historical mean by more than `k` historical standard
//! deviations.

use crate::{EgadsDetector, EgadsVerdict};
use fbd_stats::descriptive;

/// K-Sigma detector; `k` is the sensitivity (smaller = more sensitive).
#[derive(Debug, Clone, Copy)]
pub struct KSigma {
    k: f64,
}

impl KSigma {
    /// Creates a K-Sigma detector with threshold `k`.
    pub fn new(k: f64) -> Self {
        KSigma { k }
    }
}

impl EgadsDetector for KSigma {
    fn name(&self) -> &'static str {
        "K-Sigma"
    }

    fn detect(&self, historical: &[f64], analysis: &[f64]) -> EgadsVerdict {
        let (Ok(h_mean), Ok(a_mean)) = (descriptive::mean(historical), descriptive::mean(analysis))
        else {
            return EgadsVerdict {
                anomalous: false,
                score: 0.0,
            };
        };
        let h_std = descriptive::std_dev(historical).unwrap_or(0.0);
        // Compare window means; the standard error of the analysis mean
        // shrinks with its length.
        let se = if h_std > 0.0 {
            h_std / (analysis.len() as f64).sqrt()
        } else {
            f64::MIN_POSITIVE
        };
        let score = (a_mean - h_mean).abs() / se;
        EgadsVerdict {
            anomalous: score > self.k,
            score,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_large_shift() {
        let hist: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let analysis = vec![100.0; 20];
        let d = KSigma::new(3.0);
        assert!(d.detect(&hist, &analysis).anomalous);
    }

    #[test]
    fn quiet_on_same_distribution() {
        let hist: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let analysis: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
        let d = KSigma::new(4.0);
        assert!(!d.detect(&hist, &analysis).anomalous);
    }

    #[test]
    fn sensitivity_ordering() {
        // A borderline shift trips a sensitive k but not a lax one.
        let hist: Vec<f64> = (0..400).map(|i| (i % 10) as f64).collect();
        let analysis: Vec<f64> = (0..50).map(|i| (i % 10) as f64 + 1.0).collect();
        let sensitive = KSigma::new(1.0).detect(&hist, &analysis);
        let lax = KSigma::new(50.0).detect(&hist, &analysis);
        assert!(sensitive.anomalous);
        assert!(!lax.anomalous);
        assert_eq!(sensitive.score, lax.score);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let d = KSigma::new(3.0);
        assert!(!d.detect(&[], &[1.0]).anomalous);
        assert!(!d.detect(&[1.0], &[]).anomalous);
    }
}
