//! Change records.

use serde::{Deserialize, Serialize};

/// Unique identifier of a change.
pub type ChangeId = u64;

/// Whether a change is a code commit or a configuration change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangeKind {
    /// A code commit.
    Code,
    /// A configuration change.
    Config,
}

/// A code or configuration change, as root-cause analysis sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Change {
    /// Unique id.
    pub id: ChangeId,
    /// Code or config.
    pub kind: ChangeKind,
    /// Service the change was deployed to.
    pub service: String,
    /// When the change reached production (simulator seconds).
    pub deploy_time: u64,
    /// Fully qualified names of subroutines the change modifies (empty for
    /// pure config changes).
    pub modified_subroutines: Vec<String>,
    /// One-line title.
    pub title: String,
    /// Longer description.
    pub summary: String,
    /// Touched file names.
    pub files: Vec<String>,
    /// Author handle.
    pub author: String,
}

impl Change {
    /// Whether the change modifies the named subroutine.
    pub fn modifies(&self, subroutine: &str) -> bool {
        self.modified_subroutines.iter().any(|s| s == subroutine)
    }

    /// All text fields concatenated, for text-similarity features (§5.6).
    pub fn full_text(&self) -> String {
        let mut t = String::with_capacity(
            self.title.len()
                + self.summary.len()
                + self.files.iter().map(String::len).sum::<usize>()
                + 16,
        );
        t.push_str(&self.title);
        t.push(' ');
        t.push_str(&self.summary);
        for f in &self.files {
            t.push(' ');
            t.push_str(f);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change() -> Change {
        Change {
            id: 1,
            kind: ChangeKind::Code,
            service: "svc".into(),
            deploy_time: 100,
            modified_subroutines: vec!["Foo::bar".into()],
            title: "Loosen constraints for foo".into(),
            summary: "Allows wider input ranges".into(),
            files: vec!["foo.cpp".into()],
            author: "dev1".into(),
        }
    }

    #[test]
    fn modifies_matches_exact_name() {
        let c = change();
        assert!(c.modifies("Foo::bar"));
        assert!(!c.modifies("Foo::baz"));
    }

    #[test]
    fn full_text_includes_all_fields() {
        let t = change().full_text();
        assert!(t.contains("Loosen"));
        assert!(t.contains("wider"));
        assert!(t.contains("foo.cpp"));
    }
}
