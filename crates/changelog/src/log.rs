//! Time-ordered change log with the queries root-cause analysis needs.

use crate::change::{Change, ChangeId};

/// A time-ordered log of deployed changes.
#[derive(Debug, Clone, Default)]
pub struct ChangeLog {
    // Kept sorted by deploy_time.
    changes: Vec<Change>,
}

impl ChangeLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a change, keeping the log sorted by deploy time.
    pub fn record(&mut self, change: Change) {
        let pos = self
            .changes
            .partition_point(|c| c.deploy_time <= change.deploy_time);
        self.changes.insert(pos, change);
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// All changes, in deploy order.
    pub fn all(&self) -> &[Change] {
        &self.changes
    }

    /// Looks a change up by id.
    pub fn get(&self, id: ChangeId) -> Option<&Change> {
        self.changes.iter().find(|c| c.id == id)
    }

    /// Changes deployed in `[start, end)` — the candidate generator for a
    /// regression whose change point falls shortly after `start` (§5.6
    /// "changes deployed immediately before the regression occurred").
    pub fn deployed_between(&self, start: u64, end: u64) -> Vec<&Change> {
        let lo = self.changes.partition_point(|c| c.deploy_time < start);
        let hi = self.changes.partition_point(|c| c.deploy_time < end);
        self.changes[lo..hi].iter().collect()
    }

    /// Changes to a given service deployed in `[start, end)`.
    pub fn deployed_to_service_between(&self, service: &str, start: u64, end: u64) -> Vec<&Change> {
        self.deployed_between(start, end)
            .into_iter()
            .filter(|c| c.service == service)
            .collect()
    }

    /// Changes in `[start, end)` that modify the named subroutine — the
    /// code-analysis root-cause factor (§5.6) and a SOMDedup candidate
    /// feature (§5.5.1).
    pub fn modifying_subroutine_between(
        &self,
        subroutine: &str,
        start: u64,
        end: u64,
    ) -> Vec<&Change> {
        self.deployed_between(start, end)
            .into_iter()
            .filter(|c| c.modifies(subroutine))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::ChangeKind;

    fn change(id: ChangeId, time: u64, subs: &[&str]) -> Change {
        Change {
            id,
            kind: ChangeKind::Code,
            service: "svc".into(),
            deploy_time: time,
            modified_subroutines: subs.iter().map(|s| s.to_string()).collect(),
            title: format!("change {id}"),
            summary: String::new(),
            files: vec![],
            author: "dev".into(),
        }
    }

    #[test]
    fn log_stays_sorted() {
        let mut log = ChangeLog::new();
        log.record(change(2, 200, &[]));
        log.record(change(1, 100, &[]));
        log.record(change(3, 150, &[]));
        let times: Vec<u64> = log.all().iter().map(|c| c.deploy_time).collect();
        assert_eq!(times, vec![100, 150, 200]);
    }

    #[test]
    fn range_query_is_half_open() {
        let mut log = ChangeLog::new();
        for t in [100, 200, 300] {
            log.record(change(t, t, &[]));
        }
        let hits = log.deployed_between(100, 300);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn subroutine_filter() {
        let mut log = ChangeLog::new();
        log.record(change(1, 100, &["a", "b"]));
        log.record(change(2, 110, &["c"]));
        log.record(change(3, 120, &["a"]));
        let hits = log.modifying_subroutine_between("a", 0, 1000);
        let ids: Vec<ChangeId> = hits.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn service_filter() {
        let mut log = ChangeLog::new();
        let mut c = change(1, 100, &[]);
        c.service = "other".into();
        log.record(c);
        log.record(change(2, 100, &[]));
        assert_eq!(log.deployed_to_service_between("svc", 0, 1000).len(), 1);
    }

    #[test]
    fn get_by_id() {
        let mut log = ChangeLog::new();
        log.record(change(42, 5, &[]));
        assert!(log.get(42).is_some());
        assert!(log.get(43).is_none());
    }
}
