//! Synthetic code/configuration change log for the FBDetect reproduction.
//!
//! Root-cause analysis (§5.6) ranks the code or configuration changes
//! deployed immediately before a regression. Production FBDetect reads
//! Meta's change-management systems; this crate is the stand-in: a stream
//! of [`Change`] records with deploy times, modified subroutines, and
//! textual descriptions, plus a generator that fabricates realistic change
//! traffic (thousands of commits per day on FrontFaaS, §3) with controlled
//! ground truth.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod change;
pub mod generator;
pub mod log;

pub use change::{Change, ChangeId, ChangeKind};
pub use generator::{ChangeTrafficConfig, ChangeTrafficGenerator};
pub use log::ChangeLog;
