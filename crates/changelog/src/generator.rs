//! Generator for realistic synthetic change traffic.
//!
//! FrontFaaS receives thousands of code commits every workday from tens of
//! thousands of developers (§3). The generator fabricates that traffic:
//! innocuous changes touching random subroutines, with configurable rates,
//! plus explicitly planted "culprit" changes whose ids the caller records
//! as ground truth for evaluating root-cause analysis.

use crate::change::{Change, ChangeId, ChangeKind};
use crate::log::ChangeLog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for synthetic change traffic.
#[derive(Debug, Clone)]
pub struct ChangeTrafficConfig {
    /// Service name stamped on every change.
    pub service: String,
    /// Mean number of changes per day.
    pub changes_per_day: f64,
    /// Fraction of changes that are configuration changes.
    pub config_fraction: f64,
    /// Subroutine names changes may touch.
    pub subroutine_pool: Vec<String>,
    /// Mean number of subroutines modified per code change.
    pub mean_subroutines_per_change: f64,
}

impl Default for ChangeTrafficConfig {
    fn default() -> Self {
        ChangeTrafficConfig {
            service: "FrontFaaS".to_string(),
            changes_per_day: 1000.0,
            config_fraction: 0.15,
            subroutine_pool: (0..500).map(|i| format!("subroutine_{i:05}")).collect(),
            mean_subroutines_per_change: 2.0,
        }
    }
}

/// Generates synthetic change traffic into a [`ChangeLog`].
#[derive(Debug)]
pub struct ChangeTrafficGenerator {
    config: ChangeTrafficConfig,
    rng: StdRng,
    next_id: ChangeId,
}

const TITLE_VERBS: &[&str] = &[
    "Refactor",
    "Optimize",
    "Fix",
    "Extend",
    "Simplify",
    "Migrate",
    "Clean up",
    "Harden",
    "Loosen constraints for",
    "Add caching to",
];
const TITLE_NOUNS: &[&str] = &[
    "request handling",
    "serialization",
    "retry logic",
    "cache eviction",
    "input validation",
    "logging",
    "pagination",
    "rate limiting",
    "batching",
    "error paths",
];

impl ChangeTrafficGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(config: ChangeTrafficConfig, seed: u64) -> Self {
        ChangeTrafficGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            next_id: 1,
        }
    }

    /// Next change id that will be assigned.
    pub fn peek_next_id(&self) -> ChangeId {
        self.next_id
    }

    /// Generates background change traffic covering `[start, end)` seconds
    /// and records it into `log`. Returns the ids generated.
    pub fn generate_background(
        &mut self,
        log: &mut ChangeLog,
        start: u64,
        end: u64,
    ) -> Vec<ChangeId> {
        let span_days = (end.saturating_sub(start)) as f64 / 86_400.0;
        let expected = (self.config.changes_per_day * span_days).round() as usize;
        let mut ids = Vec::with_capacity(expected);
        for _ in 0..expected {
            let deploy_time = self.rng.gen_range(start..end.max(start + 1));
            ids.push(self.emit(log, deploy_time, None, None));
        }
        ids
    }

    /// Plants a specific change at `deploy_time` modifying `subroutines`,
    /// with an optional descriptive title. Returns its id — the caller's
    /// ground truth.
    pub fn plant_culprit(
        &mut self,
        log: &mut ChangeLog,
        deploy_time: u64,
        subroutines: &[&str],
        title: Option<&str>,
    ) -> ChangeId {
        self.emit(
            log,
            deploy_time,
            Some(subroutines.iter().map(|s| s.to_string()).collect()),
            title,
        )
    }

    fn emit(
        &mut self,
        log: &mut ChangeLog,
        deploy_time: u64,
        subroutines: Option<Vec<String>>,
        title: Option<&str>,
    ) -> ChangeId {
        let id = self.next_id;
        self.next_id += 1;
        let kind = if subroutines.is_none() && self.rng.gen::<f64>() < self.config.config_fraction {
            ChangeKind::Config
        } else {
            ChangeKind::Code
        };
        let modified_subroutines = match (&kind, subroutines) {
            (_, Some(subs)) => subs,
            (ChangeKind::Config, None) => Vec::new(),
            (ChangeKind::Code, None) => {
                let count = 1 + self
                    .rng
                    .gen_range(0.0..self.config.mean_subroutines_per_change * 2.0)
                    as usize;
                (0..count)
                    .map(|_| {
                        let i = self.rng.gen_range(0..self.config.subroutine_pool.len());
                        self.config.subroutine_pool[i].clone()
                    })
                    .collect()
            }
        };
        let title = title.map(str::to_string).unwrap_or_else(|| {
            format!(
                "{} {}",
                TITLE_VERBS[self.rng.gen_range(0..TITLE_VERBS.len())],
                TITLE_NOUNS[self.rng.gen_range(0..TITLE_NOUNS.len())]
            )
        });
        let files = modified_subroutines
            .iter()
            .map(|s| format!("{}.src", s.replace("::", "_")))
            .collect();
        let summary = format!(
            "{} touching {} subroutine(s)",
            match kind {
                ChangeKind::Code => "Code change",
                ChangeKind::Config => "Configuration change",
            },
            modified_subroutines.len()
        );
        let author = format!("dev{:04}", self.rng.gen_range(0..10_000));
        log.record(Change {
            id,
            kind,
            service: self.config.service.clone(),
            deploy_time,
            modified_subroutines,
            title,
            summary,
            files,
            author,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_traffic_volume() {
        let mut log = ChangeLog::new();
        let mut g = ChangeTrafficGenerator::new(ChangeTrafficConfig::default(), 1);
        let ids = g.generate_background(&mut log, 0, 86_400);
        // 1000/day configured.
        assert_eq!(ids.len(), 1000);
        assert_eq!(log.len(), 1000);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = ChangeLog::new();
        let mut b = ChangeLog::new();
        ChangeTrafficGenerator::new(ChangeTrafficConfig::default(), 7)
            .generate_background(&mut a, 0, 3600);
        ChangeTrafficGenerator::new(ChangeTrafficConfig::default(), 7)
            .generate_background(&mut b, 0, 3600);
        assert_eq!(a.all(), b.all());
    }

    #[test]
    fn culprit_is_recorded_with_exact_fields() {
        let mut log = ChangeLog::new();
        let mut g = ChangeTrafficGenerator::new(ChangeTrafficConfig::default(), 1);
        let id = g.plant_culprit(&mut log, 500, &["hot::path"], Some("Add expensive check"));
        let c = log.get(id).unwrap();
        assert_eq!(c.deploy_time, 500);
        assert!(c.modifies("hot::path"));
        assert_eq!(c.title, "Add expensive check");
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut log = ChangeLog::new();
        let mut g = ChangeTrafficGenerator::new(ChangeTrafficConfig::default(), 2);
        let ids = g.generate_background(&mut log, 0, 7200);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn config_changes_have_no_subroutines() {
        let mut log = ChangeLog::new();
        let cfg = ChangeTrafficConfig {
            config_fraction: 1.0,
            ..Default::default()
        };
        let mut g = ChangeTrafficGenerator::new(cfg, 3);
        g.generate_background(&mut log, 0, 86_400);
        assert!(log
            .all()
            .iter()
            .all(|c| c.kind == ChangeKind::Config && c.modified_subroutines.is_empty()));
    }
}
