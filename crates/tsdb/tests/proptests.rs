//! Property-based tests for the time-series store.

use fbd_tsdb::aggregate::{aligned_mean, mean_of_series};
use fbd_tsdb::window::{extract_windows, WindowConfig};
use fbd_tsdb::{MetricKind, SeriesId, TimeSeries, TsdbStore};
use proptest::prelude::*;

fn values(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9f64..1e9, min_len..max_len)
}

proptest! {
    #[test]
    fn from_values_roundtrip(vals in values(1, 200), start in 0u64..1_000, step in 1u64..100) {
        let s = TimeSeries::from_values(start, step, &vals);
        prop_assert_eq!(s.len(), vals.len());
        prop_assert_eq!(s.values(), vals.clone());
        prop_assert_eq!(s.first_timestamp(), Some(start));
        prop_assert_eq!(
            s.last_timestamp(),
            Some(start + (vals.len() as u64 - 1) * step)
        );
    }

    #[test]
    fn range_returns_only_in_bounds(vals in values(1, 100), lo in 0u64..200, span in 1u64..200) {
        let s = TimeSeries::from_values(0, 2, &vals);
        let points = s.range(lo, lo + span).unwrap();
        prop_assert!(points.iter().all(|p| p.timestamp >= lo && p.timestamp < lo + span));
    }

    #[test]
    fn expire_then_len_consistent(vals in values(1, 100), cutoff in 0u64..300) {
        let mut s = TimeSeries::from_values(0, 3, &vals);
        let before = s.len();
        let removed = s.expire_before(cutoff);
        prop_assert_eq!(before, s.len() + removed);
        prop_assert!(s.points().iter().all(|p| p.timestamp >= cutoff));
    }

    #[test]
    fn downsample_preserves_mean(vals in values(4, 200), bucket in 1u64..50) {
        let s = TimeSeries::from_values(0, 1, &vals);
        let d = s.downsample(bucket).unwrap();
        // Weighted mean of bucket means equals the overall mean.
        let original_mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for p in d.points() {
            let bucket_n = s
                .range(p.timestamp, p.timestamp + bucket)
                .unwrap()
                .len() as f64;
            weighted += p.value * bucket_n;
            weight += bucket_n;
        }
        let scale = vals.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!((weighted / weight - original_mean).abs() < 1e-9 * scale);
    }

    #[test]
    fn windows_partition_counts(
        historic in 10u64..100,
        analysis in 5u64..50,
        extended in 0u64..30,
    ) {
        let total = historic + analysis + extended;
        let vals: Vec<f64> = (0..total).map(|i| i as f64).collect();
        let s = TimeSeries::from_values(0, 1, &vals);
        let cfg = WindowConfig { historic, analysis, extended, rerun_interval: 1 };
        let w = extract_windows(&s, &cfg, total).unwrap();
        prop_assert_eq!(w.historic_len() as u64, historic);
        prop_assert_eq!(w.analysis_len() as u64, analysis);
        prop_assert_eq!(w.extended_len() as u64, extended);
        prop_assert_eq!(w.all().len() as u64, total);
    }

    #[test]
    fn store_roundtrips_series(vals in values(1, 50), target in "[a-z]{1,8}") {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, target);
        store.insert_series(id.clone(), TimeSeries::from_values(0, 1, &vals));
        prop_assert_eq!(store.get(&id).unwrap().values(), vals);
        prop_assert!(store.contains(&id));
        prop_assert_eq!(store.series_count(), 1);
    }

    #[test]
    fn mean_of_series_bounded(
        rows in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 5), 1..10)
    ) {
        let mean = mean_of_series(&rows).unwrap();
        for (i, m) in mean.iter().enumerate() {
            let col: Vec<f64> = rows.iter().map(|r| r[i]).collect();
            let lo = col.iter().cloned().fold(f64::MAX, f64::min);
            let hi = col.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(*m >= lo - 1e-9 && *m <= hi + 1e-9);
        }
    }

    #[test]
    fn aligned_mean_of_identical_series_is_identity(vals in values(4, 60)) {
        let a = TimeSeries::from_values(0, 1, &vals);
        let b = TimeSeries::from_values(0, 1, &vals);
        let m = aligned_mean(&[a, b], 2).unwrap();
        // Every bucket mean equals the per-series bucket mean.
        let d = TimeSeries::from_values(0, 1, &vals).downsample(2).unwrap();
        prop_assert_eq!(m.values(), d.values());
    }
}
