//! Property-based tests for the time-series store.

use fbd_tsdb::aggregate::{aligned_mean, mean_of_series};
use fbd_tsdb::window::{extract_windows, WindowConfig};
use fbd_tsdb::{
    DataPoint, MetricKind, SealedBlock, SeriesDelta, SeriesId, StoreConfig, TimeSeries, TsdbStore,
};
use proptest::prelude::*;

fn values(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e9f64..1e9, min_len..max_len)
}

/// Any f64 bit pattern, weighted toward the special cases the Gorilla
/// codec must preserve bit-exactly: NaN (any payload), signed zeros,
/// infinities, and arbitrary bit soup.
fn wild_value() -> impl Strategy<Value = f64> {
    (any::<u8>(), any::<u64>(), -1e12f64..1e12).prop_map(|(sel, bits, finite)| match sel % 8 {
        0 => f64::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 | 6 => f64::from_bits(bits),
        _ => finite,
    })
}

/// Timestamp/value pairs with irregular cadence: steady gaps, duplicates
/// (gap 0), and occasional huge jumps that force the codec's raw 64-bit
/// delta-of-delta escape. Timestamps are non-decreasing (capped, no wrap)
/// to match what `TimeSeries::append` admits.
fn wild_points(max_len: usize) -> impl Strategy<Value = Vec<DataPoint>> {
    prop::collection::vec((0u64..5_000, any::<u8>(), wild_value()), 0..max_len).prop_map(|raw| {
        let mut ts = 0u64;
        raw.into_iter()
            .map(|(gap, kind, value)| {
                let gap = match kind % 7 {
                    0 => 0,               // duplicate timestamp
                    1 => gap << 20,       // jump past every small dod class
                    2 => 60,              // steady cadence -> dod == 0 runs
                    _ => gap,
                };
                ts = ts.saturating_add(gap);
                DataPoint::new(ts, value)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn from_values_roundtrip(vals in values(1, 200), start in 0u64..1_000, step in 1u64..100) {
        let s = TimeSeries::from_values(start, step, &vals);
        prop_assert_eq!(s.len(), vals.len());
        prop_assert_eq!(s.values(), vals.clone());
        prop_assert_eq!(s.first_timestamp(), Some(start));
        prop_assert_eq!(
            s.last_timestamp(),
            Some(start + (vals.len() as u64 - 1) * step)
        );
    }

    #[test]
    fn range_returns_only_in_bounds(vals in values(1, 100), lo in 0u64..200, span in 1u64..200) {
        let s = TimeSeries::from_values(0, 2, &vals);
        let points = s.range(lo, lo + span).unwrap();
        prop_assert!(points.iter().all(|p| p.timestamp >= lo && p.timestamp < lo + span));
    }

    #[test]
    fn expire_then_len_consistent(vals in values(1, 100), cutoff in 0u64..300) {
        let mut s = TimeSeries::from_values(0, 3, &vals);
        let before = s.len();
        let removed = s.expire_before(cutoff);
        prop_assert_eq!(before, s.len() + removed);
        prop_assert!(s.points().iter().all(|p| p.timestamp >= cutoff));
    }

    #[test]
    fn downsample_preserves_mean(vals in values(4, 200), bucket in 1u64..50) {
        let s = TimeSeries::from_values(0, 1, &vals);
        let d = s.downsample(bucket).unwrap();
        // Weighted mean of bucket means equals the overall mean.
        let original_mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for p in d.points().iter() {
            let bucket_n = s
                .range(p.timestamp, p.timestamp + bucket)
                .unwrap()
                .len() as f64;
            weighted += p.value * bucket_n;
            weight += bucket_n;
        }
        let scale = vals.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!((weighted / weight - original_mean).abs() < 1e-9 * scale);
    }

    #[test]
    fn windows_partition_counts(
        historic in 10u64..100,
        analysis in 5u64..50,
        extended in 0u64..30,
    ) {
        let total = historic + analysis + extended;
        let vals: Vec<f64> = (0..total).map(|i| i as f64).collect();
        let s = TimeSeries::from_values(0, 1, &vals);
        let cfg = WindowConfig { historic, analysis, extended, rerun_interval: 1 };
        let w = extract_windows(&s, &cfg, total).unwrap();
        prop_assert_eq!(w.historic_len() as u64, historic);
        prop_assert_eq!(w.analysis_len() as u64, analysis);
        prop_assert_eq!(w.extended_len() as u64, extended);
        prop_assert_eq!(w.all().len() as u64, total);
    }

    #[test]
    fn store_roundtrips_series(vals in values(1, 50), target in "[a-z]{1,8}") {
        let store = TsdbStore::new();
        let id = SeriesId::new("svc", MetricKind::GCpu, target);
        store.insert_series(id.clone(), TimeSeries::from_values(0, 1, &vals));
        prop_assert_eq!(store.get(&id).unwrap().values(), vals);
        prop_assert!(store.contains(&id));
        prop_assert_eq!(store.series_count(), 1);
    }

    #[test]
    fn mean_of_series_bounded(
        rows in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 5), 1..10)
    ) {
        let mean = mean_of_series(&rows).unwrap();
        for (i, m) in mean.iter().enumerate() {
            let col: Vec<f64> = rows.iter().map(|r| r[i]).collect();
            let lo = col.iter().cloned().fold(f64::MAX, f64::min);
            let hi = col.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(*m >= lo - 1e-9 && *m <= hi + 1e-9);
        }
    }

    #[test]
    fn aligned_mean_of_identical_series_is_identity(vals in values(4, 60)) {
        let a = TimeSeries::from_values(0, 1, &vals);
        let b = TimeSeries::from_values(0, 1, &vals);
        let m = aligned_mean(&[a, b], 2).unwrap();
        // Every bucket mean equals the per-series bucket mean.
        let d = TimeSeries::from_values(0, 1, &vals).downsample(2).unwrap();
        prop_assert_eq!(m.values(), d.values());
    }

    // --- Gorilla compressed blocks ---

    #[test]
    fn compressed_block_roundtrip_is_bit_exact(points in wild_points(400)) {
        let block = SealedBlock::from_points(&points);
        prop_assert_eq!(block.count() as usize, points.len());
        let decoded = block.to_points();
        prop_assert_eq!(decoded.len(), points.len());
        for (got, want) in decoded.iter().zip(&points) {
            prop_assert_eq!(got.timestamp, want.timestamp);
            // to_bits: NaN payloads and -0.0 must survive exactly.
            prop_assert_eq!(got.value.to_bits(), want.value.to_bits());
        }
        if let (Some(first), Some(last)) = (points.first(), points.last()) {
            prop_assert_eq!(block.first_timestamp(), first.timestamp);
            prop_assert_eq!(block.last_timestamp(), last.timestamp);
        }
    }

    #[test]
    fn seal_time_summary_matches_full_decode(points in wild_points(400)) {
        let block = SealedBlock::from_points(&points);
        let s = *block.summary();
        // Recompute every summary field from a full decode, accumulating
        // the moments left-to-right exactly as seal time does: the fields
        // must be bit-identical, not merely close.
        let decoded = block.to_points();
        prop_assert_eq!(decoded.len(), points.len());
        let mut count = 0u32;
        let mut nan_count = 0u32;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        let (mut min_gap, mut max_gap) = (0u64, 0u64);
        for (i, p) in decoded.iter().enumerate() {
            if i > 0 {
                let gap = p.timestamp.wrapping_sub(decoded[i - 1].timestamp);
                max_gap = max_gap.max(gap);
                if gap > 0 && (min_gap == 0 || gap < min_gap) {
                    min_gap = gap;
                }
            }
            if p.value.is_finite() {
                min = min.min(p.value);
                max = max.max(p.value);
                sum += p.value;
                sum_sq += p.value * p.value;
            } else {
                nan_count += 1;
            }
            count += 1;
        }
        prop_assert_eq!(s.count, count);
        prop_assert_eq!(s.nan_count, nan_count);
        prop_assert_eq!(s.finite_count(), count - nan_count);
        if let (Some(first), Some(last)) = (decoded.first(), decoded.last()) {
            prop_assert_eq!(s.first_ts, first.timestamp);
            prop_assert_eq!(s.last_ts, last.timestamp);
        }
        prop_assert_eq!(s.min_gap, min_gap);
        prop_assert_eq!(s.max_gap, max_gap);
        prop_assert_eq!(s.min.to_bits(), min.to_bits());
        prop_assert_eq!(s.max.to_bits(), max.to_bits());
        prop_assert_eq!(s.sum.to_bits(), sum.to_bits());
        prop_assert_eq!(s.sum_sq.to_bits(), sum_sq.to_bits());
    }

    #[test]
    fn word_decoder_matches_legacy_on_corrupt_tails(
        points in wild_points(200),
        cut_frac in 0.0f64..1.0,
        flip_sel in 0u8..4,
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let block = SealedBlock::from_points(&points);
        let mut bytes = block.payload().to_vec();
        // Truncate somewhere inside the payload, then (three cases in
        // four) flip one bit of what is left, while still claiming the
        // original count: the decoders must agree point-for-point and
        // both stop cleanly.
        bytes.truncate((bytes.len() as f64 * cut_frac) as usize);
        if flip_sel > 0 && !bytes.is_empty() {
            let pos = flip_pos % bytes.len();
            bytes[pos] ^= 1 << flip_bit;
        }
        let corrupt = SealedBlock::from_raw_parts(bytes, block.count());
        let word: Vec<(u64, u64)> = corrupt
            .iter()
            .map(|p| (p.timestamp, p.value.to_bits()))
            .collect();
        let legacy: Vec<(u64, u64)> = corrupt
            .reference_iter()
            .map(|p| (p.timestamp, p.value.to_bits()))
            .collect();
        prop_assert_eq!(word, legacy);
    }

    #[test]
    fn compressed_series_reads_match_uncompressed(
        points in wild_points(300),
        seal_limit in 1u32..64,
        lo in 0u64..10_000,
        span in 1u64..1_000_000,
        tail in 0usize..350,
    ) {
        let mut plain = TimeSeries::new();
        let mut packed = TimeSeries::with_seal_limit(seal_limit);
        for p in &points {
            plain.append(p.timestamp, p.value).unwrap();
            packed.append(p.timestamp, p.value).unwrap();
        }
        prop_assert_eq!(plain.len(), packed.len());
        prop_assert_eq!((plain.version(), plain.appended()), (packed.version(), packed.appended()));
        // Bit-exact full reads (PartialEq would fail on NaN, so compare bits).
        let pv: Vec<(u64, u64)> = plain.iter().map(|p| (p.timestamp, p.value.to_bits())).collect();
        let cv: Vec<(u64, u64)> = packed.iter().map(|p| (p.timestamp, p.value.to_bits())).collect();
        prop_assert_eq!(pv, cv);
        // Range and tail reads agree.
        let pr: Vec<(u64, u64)> = plain.range_to_vec(lo, lo.saturating_add(span)).iter()
            .map(|p| (p.timestamp, p.value.to_bits())).collect();
        let cr: Vec<(u64, u64)> = packed.range_to_vec(lo, lo.saturating_add(span)).iter()
            .map(|p| (p.timestamp, p.value.to_bits())).collect();
        prop_assert_eq!(pr, cr);
        let pt: Vec<(u64, u64)> = plain.tail_to_vec(tail).iter()
            .map(|p| (p.timestamp, p.value.to_bits())).collect();
        let ct: Vec<(u64, u64)> = packed.tail_to_vec(tail).iter()
            .map(|p| (p.timestamp, p.value.to_bits())).collect();
        prop_assert_eq!(pt, ct);
        prop_assert_eq!(plain.resident_bytes(), plain.len() * 16);
    }

    #[test]
    fn append_stride_detection_survives_seals(
        chunks in prop::collection::vec(1usize..20, 1..10),
        seal_limit in 1u32..33,
    ) {
        let cfg = WindowConfig {
            historic: 1_000_000,
            analysis: 500_000,
            extended: 0,
            rerun_interval: 60,
        };
        let store = TsdbStore::with_config(StoreConfig {
            seal_limit,
            shard_budget_bytes: None,
            decode_cache_bytes: 2_048,
        });
        let id = SeriesId::new("svc", MetricKind::GCpu, "s");
        let mut t = 0u64;
        let mut known = None;
        let mut total = 0usize;
        for (i, chunk) in chunks.iter().enumerate() {
            let first_new = t;
            for _ in 0..*chunk {
                store.append(&id, t * 60, (t as f64).sin()).unwrap();
                t += 1;
            }
            total += chunk;
            let deltas = store.snapshot_deltas(&[&id], &[known], &cfg, t * 60);
            match &deltas[0] {
                SeriesDelta::Reset { version, points } if i == 0 => {
                    // First observation: full copy.
                    prop_assert_eq!(points.len(), total);
                    known = Some(*version);
                }
                SeriesDelta::Appended { version, tail } => {
                    // Sealing between observations must not break the
                    // append-only classification or the tail contents.
                    prop_assert_eq!(tail.len(), *chunk);
                    prop_assert_eq!(tail[0].timestamp, first_new * 60);
                    prop_assert_eq!(tail[tail.len() - 1].timestamp, (t - 1) * 60);
                    known = Some(*version);
                }
                other => panic!("chunk {i}: unexpected delta {other:?}"),
            }
        }
        prop_assert_eq!(store.get(&id).unwrap().len(), total);
    }
}
