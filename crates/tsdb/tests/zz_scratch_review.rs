use fbd_tsdb::{BlockBuilder, DataPoint, SealedBlock};

#[test]
fn reuse_before_window_corruption() {
    let mut b = BlockBuilder::new(2);
    b.push(DataPoint { timestamp: 0, value: 1.0 });
    b.push(DataPoint { timestamp: 60, value: 2.0 });
    let block = b.seal();
    let mut bytes = block.payload().to_vec();
    // bit 138 is the second control bit of the first value record:
    // '11' (fresh window) -> '10' (reuse) with no window ever set.
    bytes[17] ^= 1 << 5;
    let corrupt = SealedBlock::from_raw_parts(bytes, block.count());
    let legacy: Vec<_> = corrupt.reference_iter().map(|p| (p.timestamp, p.value.to_bits())).collect();
    let word: Vec<_> = corrupt.iter().map(|p| (p.timestamp, p.value.to_bits())).collect();
    assert_eq!(word, legacy);
}
