//! Gorilla-style compressed blocks: sealed, immutable runs of data points.
//!
//! Storage layout (bit-packed, MSB-first within each byte):
//!
//! ```text
//! +-------------------+-------------------+----------------------------+
//! | first ts (64 bit) | first val (64 bit)| per-point records ...      |
//! +-------------------+-------------------+----------------------------+
//! ```
//!
//! Each subsequent point stores a timestamp record followed by a value
//! record:
//!
//! * **Timestamps** use delta-of-delta coding. With `delta(i) = ts(i) -
//!   ts(i-1)` (wrapping `u64` arithmetic so arbitrary sequences roundtrip)
//!   and `dod = delta(i) - delta(i-1)` interpreted as `i64`:
//!   - `dod == 0`                → `0`
//!   - `dod ∈ [-63, 64]`         → `10`   + 7 bits of `dod + 63`
//!   - `dod ∈ [-255, 256]`       → `110`  + 9 bits of `dod + 255`
//!   - `dod ∈ [-2047, 2048]`     → `1110` + 12 bits of `dod + 2047`
//!   - otherwise                 → `1111` + 64 raw bits of `dod`
//! * **Values** XOR the IEEE-754 bits against the previous value, so the
//!   encoding is bit-exact for every `f64` including NaN payloads and
//!   signed zeros:
//!   - `xor == 0`                → `0`
//!   - previous window fits      → `10`   + the meaningful bits inside the
//!     previously emitted (leading, length) window
//!   - otherwise                 → `11`   + 6 bits leading-zero count +
//!     6 bits (significant length − 1) + the significant bits
//!
//! Unlike the original Gorilla paper we spend 6 bits (not 5) on each
//! window field so a fully significant 64-bit XOR is representable without
//! a special case.
//!
//! Blocks are built in memory and never deserialized from untrusted
//! input — the on-disk snapshot format remains the text format in
//! [`crate::snapshot`], which re-encodes on load. The decoder is still
//! panic-free: a short or corrupt buffer terminates the iterator (with a
//! `debug_assert` to surface the bug in tests) instead of panicking.

use bytes::{BufMut, Bytes, BytesMut};

use crate::types::{DataPoint, Timestamp};

/// Append-only bit sink over a growable byte buffer, MSB-first.
#[derive(Debug)]
struct BitWriter {
    buf: BytesMut,
    /// Byte currently being filled.
    cur: u8,
    /// Number of bits of `cur` already used (0..8).
    used: u8,
}

impl BitWriter {
    fn with_capacity(bytes: usize) -> Self {
        Self { buf: BytesMut::with_capacity(bytes), cur: 0, used: 0 }
    }

    fn push_bit(&mut self, bit: bool) {
        self.cur |= u8::from(bit) << (7 - self.used);
        self.used += 1;
        if self.used == 8 {
            self.buf.put_u8(self.cur);
            self.cur = 0;
            self.used = 0;
        }
    }

    /// Append the low `n` bits of `value`, most significant first.
    /// Supports the full `1..=64` range (a 64-bit XOR window is legal).
    fn push_bits(&mut self, value: u64, n: u32) {
        debug_assert!((1..=64).contains(&n), "bit run length out of range");
        let mut remaining = n;
        while remaining > 0 {
            remaining -= 1;
            self.push_bit((value >> remaining) & 1 == 1);
        }
    }

    /// Bytes written once the trailing partial byte is flushed.
    fn byte_len(&self) -> usize {
        self.buf.len() + usize::from(self.used > 0)
    }

    fn finish(mut self) -> Bytes {
        if self.used > 0 {
            self.buf.put_u8(self.cur);
        }
        self.buf.freeze()
    }
}

/// Bit-level cursor over an immutable byte slice. Every read returns
/// `None` on overrun instead of panicking.
#[derive(Debug)]
struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit position from the start of `buf`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.buf.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, n: u32) -> Option<u64> {
        debug_assert!((1..=64).contains(&n), "bit run length out of range");
        // Bounds-check once so a short buffer cannot leave the cursor
        // half-advanced.
        let end = self.pos.checked_add(n as usize)?;
        if end > self.buf.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..n {
            let byte = self.buf[self.pos / 8];
            let bit = u64::from((byte >> (7 - (self.pos % 8))) & 1);
            out = (out << 1) | bit;
            self.pos += 1;
        }
        Some(out)
    }
}

/// Incremental encoder producing one [`SealedBlock`].
#[derive(Debug)]
pub struct BlockBuilder {
    bits: BitWriter,
    count: u32,
    first_ts: Timestamp,
    last_ts: Timestamp,
    prev_delta: u64,
    prev_value_bits: u64,
    prev_leading: u32,
    prev_sig_len: u32,
    window_set: bool,
}

impl Default for BlockBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockBuilder {
    /// A builder with no points encoded yet.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A builder pre-sized for roughly `points` samples.
    pub fn with_capacity(points: usize) -> Self {
        // ~2 bytes/point is the steady-state for minute-cadence metrics;
        // the buffer grows if the data is noisier.
        Self {
            bits: BitWriter::with_capacity(16 + points * 2),
            count: 0,
            first_ts: 0,
            last_ts: 0,
            prev_delta: 0,
            prev_value_bits: 0,
            prev_leading: 0,
            prev_sig_len: 0,
            window_set: false,
        }
    }

    /// Number of points encoded so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when no point has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Compressed size in bytes if the block were sealed now.
    pub fn byte_len(&self) -> usize {
        self.bits.byte_len()
    }

    /// Append one point. Timestamps may be arbitrary (the codec uses
    /// wrapping arithmetic); [`crate::series::TimeSeries`] enforces
    /// monotonicity before points ever reach a builder.
    pub fn push(&mut self, point: DataPoint) {
        let value_bits = point.value.to_bits();
        if self.count == 0 {
            self.bits.push_bits(point.timestamp, 64);
            self.bits.push_bits(value_bits, 64);
            self.first_ts = point.timestamp;
        } else {
            self.push_timestamp(point.timestamp);
            self.push_value(value_bits);
        }
        self.last_ts = point.timestamp;
        self.prev_value_bits = value_bits;
        self.count += 1;
    }

    fn push_timestamp(&mut self, ts: Timestamp) {
        let delta = ts.wrapping_sub(self.last_ts);
        let dod = delta.wrapping_sub(self.prev_delta) as i64;
        self.prev_delta = delta;
        if dod == 0 {
            self.bits.push_bit(false);
        } else if (-63..=64).contains(&dod) {
            self.bits.push_bits(0b10, 2);
            self.bits.push_bits((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            self.bits.push_bits(0b110, 3);
            self.bits.push_bits((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            self.bits.push_bits(0b1110, 4);
            self.bits.push_bits((dod + 2047) as u64, 12);
        } else {
            self.bits.push_bits(0b1111, 4);
            self.bits.push_bits(dod as u64, 64);
        }
    }

    fn push_value(&mut self, value_bits: u64) {
        let xor = value_bits ^ self.prev_value_bits;
        if xor == 0 {
            self.bits.push_bit(false);
            return;
        }
        self.bits.push_bit(true);
        let leading = xor.leading_zeros();
        let trailing = xor.trailing_zeros();
        let prev_trailing = 64 - self.prev_leading - self.prev_sig_len;
        if self.window_set && leading >= self.prev_leading && trailing >= prev_trailing {
            // Meaningful bits fit inside the previously emitted window:
            // reuse it and pay only the window-sized payload.
            self.bits.push_bit(false);
            self.bits.push_bits(xor >> prev_trailing, self.prev_sig_len);
        } else {
            let sig_len = 64 - leading - trailing;
            self.bits.push_bit(true);
            self.bits.push_bits(u64::from(leading), 6);
            self.bits.push_bits(u64::from(sig_len - 1), 6);
            self.bits.push_bits(xor >> trailing, sig_len);
            self.prev_leading = leading;
            self.prev_sig_len = sig_len;
            self.window_set = true;
        }
    }

    /// Freeze the builder into an immutable block.
    pub fn seal(self) -> SealedBlock {
        SealedBlock {
            bytes: self.bits.finish(),
            count: self.count,
            first_ts: self.first_ts,
            last_ts: self.last_ts,
        }
    }
}

/// An immutable, compressed run of data points. Cloning is cheap: the
/// payload is a reference-counted [`Bytes`].
#[derive(Debug, Clone)]
pub struct SealedBlock {
    bytes: Bytes,
    count: u32,
    first_ts: Timestamp,
    last_ts: Timestamp,
}

impl SealedBlock {
    /// Compress a slice of points into one sealed block.
    pub fn from_points(points: &[DataPoint]) -> Self {
        let mut builder = BlockBuilder::with_capacity(points.len());
        for p in points {
            builder.push(*p);
        }
        builder.seal()
    }

    /// Number of points in the block.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when the block holds no points.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Timestamp of the first point (0 for an empty block).
    pub fn first_timestamp(&self) -> Timestamp {
        self.first_ts
    }

    /// Timestamp of the last point (0 for an empty block).
    pub fn last_timestamp(&self) -> Timestamp {
        self.last_ts
    }

    /// Compressed payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Streaming decoder over the block's points.
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter {
            reader: BitReader::new(&self.bytes),
            remaining: self.count,
            started: false,
            last_ts: 0,
            prev_delta: 0,
            prev_value_bits: 0,
            prev_leading: 0,
            prev_sig_len: 0,
        }
    }

    /// Decode every point, appending to `out`.
    pub fn decode_into(&self, out: &mut Vec<DataPoint>) {
        out.reserve(self.count as usize);
        out.extend(self.iter());
    }

    /// Decode every point into a fresh vector.
    pub fn to_points(&self) -> Vec<DataPoint> {
        let mut out = Vec::with_capacity(self.count as usize);
        out.extend(self.iter());
        out
    }
}

impl<'a> IntoIterator for &'a SealedBlock {
    type Item = DataPoint;
    type IntoIter = BlockIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Streaming decoder; see [`SealedBlock::iter`].
///
/// Yields exactly [`SealedBlock::count`] points for a well-formed block.
/// A corrupt or truncated payload ends iteration early (never panics);
/// `debug_assert` flags that case in test builds because blocks are only
/// ever produced by [`BlockBuilder`] in-process.
#[derive(Debug)]
pub struct BlockIter<'a> {
    reader: BitReader<'a>,
    remaining: u32,
    started: bool,
    last_ts: Timestamp,
    prev_delta: u64,
    prev_value_bits: u64,
    prev_leading: u32,
    prev_sig_len: u32,
}

impl BlockIter<'_> {
    fn step(&mut self) -> Option<DataPoint> {
        if !self.started {
            self.started = true;
            self.last_ts = self.reader.read_bits(64)?;
            self.prev_value_bits = self.reader.read_bits(64)?;
        } else {
            self.last_ts = self.next_timestamp()?;
            self.prev_value_bits = self.next_value_bits()?;
        }
        Some(DataPoint { timestamp: self.last_ts, value: f64::from_bits(self.prev_value_bits) })
    }

    fn next_timestamp(&mut self) -> Option<Timestamp> {
        let dod: i64 = if !self.reader.read_bit()? {
            0
        } else if !self.reader.read_bit()? {
            self.reader.read_bits(7)? as i64 - 63
        } else if !self.reader.read_bit()? {
            self.reader.read_bits(9)? as i64 - 255
        } else if !self.reader.read_bit()? {
            self.reader.read_bits(12)? as i64 - 2047
        } else {
            self.reader.read_bits(64)? as i64
        };
        self.prev_delta = self.prev_delta.wrapping_add(dod as u64);
        Some(self.last_ts.wrapping_add(self.prev_delta))
    }

    fn next_value_bits(&mut self) -> Option<u64> {
        if !self.reader.read_bit()? {
            return Some(self.prev_value_bits);
        }
        if self.reader.read_bit()? {
            // Fresh window: leading count + (length - 1) + payload.
            self.prev_leading = self.reader.read_bits(6)? as u32;
            self.prev_sig_len = self.reader.read_bits(6)? as u32 + 1;
            if self.prev_leading + self.prev_sig_len > 64 {
                return None; // corrupt window descriptor
            }
        }
        let trailing = 64 - self.prev_leading - self.prev_sig_len;
        let payload = self.reader.read_bits(self.prev_sig_len)?;
        Some(self.prev_value_bits ^ (payload << trailing))
    }
}

impl Iterator for BlockIter<'_> {
    type Item = DataPoint;

    fn next(&mut self) -> Option<DataPoint> {
        if self.remaining == 0 {
            return None;
        }
        match self.step() {
            Some(point) => {
                self.remaining -= 1;
                Some(point)
            }
            None => {
                debug_assert!(false, "truncated or corrupt compressed block");
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for BlockIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(points: &[DataPoint]) {
        let block = SealedBlock::from_points(points);
        assert_eq!(block.count() as usize, points.len());
        let decoded = block.to_points();
        assert_eq!(decoded.len(), points.len());
        for (got, want) in decoded.iter().zip(points) {
            assert_eq!(got.timestamp, want.timestamp);
            assert_eq!(
                got.value.to_bits(),
                want.value.to_bits(),
                "value bits diverged at ts {}",
                want.timestamp
            );
        }
        if let (Some(first), Some(last)) = (points.first(), points.last()) {
            assert_eq!(block.first_timestamp(), first.timestamp);
            assert_eq!(block.last_timestamp(), last.timestamp);
        }
    }

    fn dp(timestamp: Timestamp, value: f64) -> DataPoint {
        DataPoint { timestamp, value }
    }

    #[test]
    fn empty_block_yields_nothing() {
        let block = BlockBuilder::new().seal();
        assert!(block.is_empty());
        assert_eq!(block.iter().count(), 0);
        assert_eq!(block.byte_len(), 0);
    }

    #[test]
    fn single_point_roundtrip() {
        roundtrip(&[dp(1234, 42.5)]);
        roundtrip(&[dp(0, f64::NAN)]);
        roundtrip(&[dp(u64::MAX, -0.0)]);
    }

    #[test]
    fn regular_cadence_roundtrip() {
        let points: Vec<DataPoint> =
            (0..900).map(|i| dp(1000 + i * 60, 1.0 + (i as f64) * 0.001)).collect();
        roundtrip(&points);
    }

    #[test]
    fn irregular_cadence_roundtrip() {
        // Gaps exercising every delta-of-delta class, including the raw
        // 64-bit escape and duplicate timestamps (delta 0).
        let gaps: [u64; 12] =
            [60, 60, 1, 0, 4000, 63, 64, 257, 2049, 1 << 40, 0, 7];
        let mut ts = 5u64;
        let mut points = Vec::new();
        for (i, g) in gaps.iter().enumerate() {
            ts = ts.wrapping_add(*g);
            points.push(dp(ts, (i as f64).sin()));
        }
        roundtrip(&points);
    }

    #[test]
    fn special_float_values_bit_exact() {
        let specials = [
            0.0,
            -0.0,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::EPSILON,
            1.0,
            -1.0,
        ];
        let points: Vec<DataPoint> =
            specials.iter().enumerate().map(|(i, v)| dp(i as u64 * 60, *v)).collect();
        roundtrip(&points);
    }

    #[test]
    fn constant_series_compresses_hard() {
        let points: Vec<DataPoint> = (0..900).map(|i| dp(i * 60, 3.25)).collect();
        let block = SealedBlock::from_points(&points);
        roundtrip(&points);
        // First sample costs 16 bytes; every other point is 2 bits.
        assert!(
            block.byte_len() < 300,
            "constant series should be ~2 bits/point, got {} bytes",
            block.byte_len()
        );
    }

    #[test]
    fn noisy_series_still_beats_raw() {
        // Deterministic pseudo-noise (SplitMix64) over a realistic base.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let points: Vec<DataPoint> = (0..900)
            .map(|i| {
                let noise = (next() as f64 / u64::MAX as f64 - 0.5) * 0.004;
                dp(i * 60, 1.0 + noise)
            })
            .collect();
        let block = SealedBlock::from_points(&points);
        roundtrip(&points);
        let raw = points.len() * std::mem::size_of::<DataPoint>();
        assert!(
            block.byte_len() < raw,
            "compressed {} bytes vs raw {raw}",
            block.byte_len()
        );
    }

    #[test]
    fn full_width_xor_window_roundtrips() {
        // Alternating sign + magnitude extremes force 64-significant-bit
        // XOR windows (leading 0, trailing 0) — the case the 6+6 bit
        // header exists for.
        let points = [
            dp(0, f64::MAX),
            dp(60, -f64::MIN_POSITIVE),
            dp(120, f64::MAX),
            dp(180, -0.0),
        ];
        roundtrip(&points);
    }

    #[test]
    fn decode_into_appends() {
        let points: Vec<DataPoint> = (0..10).map(|i| dp(i * 60, i as f64)).collect();
        let block = SealedBlock::from_points(&points);
        let mut out = vec![dp(999, 9.9)];
        block.decode_into(&mut out);
        assert_eq!(out.len(), 11);
        assert_eq!(out[0].timestamp, 999);
        assert_eq!(out[1].timestamp, 0);
    }

    #[test]
    fn iterator_len_tracks_remaining() {
        let points: Vec<DataPoint> = (0..5).map(|i| dp(i * 60, i as f64)).collect();
        let block = SealedBlock::from_points(&points);
        let mut it = block.iter();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn builder_reports_incremental_size() {
        let mut b = BlockBuilder::new();
        assert!(b.is_empty());
        b.push(dp(0, 1.0));
        let after_one = b.byte_len();
        assert!(after_one >= 16);
        b.push(dp(60, 1.0));
        assert!(b.byte_len() >= after_one);
        assert_eq!(b.count(), 2);
    }
}
