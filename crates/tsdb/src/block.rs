//! Gorilla-style compressed blocks: sealed, immutable runs of data points.
//!
//! Storage layout (bit-packed, MSB-first within each byte):
//!
//! ```text
//! +-------------------+-------------------+----------------------------+
//! | first ts (64 bit) | first val (64 bit)| per-point records ...      |
//! +-------------------+-------------------+----------------------------+
//! ```
//!
//! Each subsequent point stores a timestamp record followed by a value
//! record:
//!
//! * **Timestamps** use delta-of-delta coding. With `delta(i) = ts(i) -
//!   ts(i-1)` (wrapping `u64` arithmetic so arbitrary sequences roundtrip)
//!   and `dod = delta(i) - delta(i-1)` interpreted as `i64`:
//!   - `dod == 0`                → `0`
//!   - `dod ∈ [-63, 64]`         → `10`   + 7 bits of `dod + 63`
//!   - `dod ∈ [-255, 256]`       → `110`  + 9 bits of `dod + 255`
//!   - `dod ∈ [-2047, 2048]`     → `1110` + 12 bits of `dod + 2047`
//!   - otherwise                 → `1111` + 64 raw bits of `dod`
//! * **Values** XOR the IEEE-754 bits against the previous value, so the
//!   encoding is bit-exact for every `f64` including NaN payloads and
//!   signed zeros:
//!   - `xor == 0`                → `0`
//!   - previous window fits      → `10`   + the meaningful bits inside the
//!     previously emitted (leading, length) window
//!   - otherwise                 → `11`   + 6 bits leading-zero count +
//!     6 bits (significant length − 1) + the significant bits
//!
//! Unlike the original Gorilla paper we spend 6 bits (not 5) on each
//! window field so a fully significant 64-bit XOR is representable without
//! a special case.
//!
//! Every block additionally carries a [`BlockSummary`] computed while the
//! block is built — point count, first/last timestamp, min/max/sum/sum-of-
//! squares over the finite values (accumulated in append order, so the
//! floating-point results are bit-stable against a full decode), non-finite
//! count, and the extreme consecutive-timestamp gaps. Readers use the
//! summary to answer coverage and moment queries without touching the bit
//! stream; the bytes it occupies are charged to the store's resident-byte
//! accounting ([`SUMMARY_BYTES`]).
//!
//! Blocks are built in memory and never deserialized from untrusted
//! input — the on-disk snapshot format remains the text format in
//! [`crate::snapshot`], which re-encodes on load. The decoders are
//! panic-free: a short or corrupt buffer terminates the iterator instead
//! of panicking.
//!
//! Two decoders share the format: [`BlockIter`], the production decoder
//! built on a buffered 64-bit word cursor ([`WordReader`]: one unaligned
//! big-endian load refills up to seven bytes at a time, and the tag
//! dispatch peeks several class bits in one shot), and
//! [`ReferenceBlockIter`], the original bit-at-a-time decoder retained as
//! the bit-exactness oracle for tests and proptests.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::{BufMut, Bytes, BytesMut};

use crate::types::{DataPoint, Timestamp};

/// Monotonic process-wide block id source. Every sealed block gets a
/// fresh id, so an id can never be reused for different bytes — the
/// property the shard decode cache relies on for ABA-safe keying
/// (payload pointers are not stable identity: `Bytes` clones copy).
static BLOCK_SEQ: AtomicU64 = AtomicU64::new(1);

/// Append-only bit sink over a growable byte buffer, MSB-first.
#[derive(Debug)]
struct BitWriter {
    buf: BytesMut,
    /// Byte currently being filled.
    cur: u8,
    /// Number of bits of `cur` already used (0..8).
    used: u8,
}

impl BitWriter {
    fn with_capacity(bytes: usize) -> Self {
        Self { buf: BytesMut::with_capacity(bytes), cur: 0, used: 0 }
    }

    fn push_bit(&mut self, bit: bool) {
        self.cur |= u8::from(bit) << (7 - self.used);
        self.used += 1;
        if self.used == 8 {
            self.buf.put_u8(self.cur);
            self.cur = 0;
            self.used = 0;
        }
    }

    /// Append the low `n` bits of `value`, most significant first.
    /// Supports the full `1..=64` range (a 64-bit XOR window is legal).
    fn push_bits(&mut self, value: u64, n: u32) {
        debug_assert!((1..=64).contains(&n), "bit run length out of range");
        let mut remaining = n;
        while remaining > 0 {
            remaining -= 1;
            self.push_bit((value >> remaining) & 1 == 1);
        }
    }

    /// Bytes written once the trailing partial byte is flushed.
    fn byte_len(&self) -> usize {
        self.buf.len() + usize::from(self.used > 0)
    }

    fn finish(mut self) -> Bytes {
        if self.used > 0 {
            self.buf.put_u8(self.cur);
        }
        self.buf.freeze()
    }
}

/// Bit-level cursor over an immutable byte slice: the legacy reader, one
/// bit per branch. Retained as the oracle the word-buffered decoder is
/// checked against; every read returns `None` on overrun instead of
/// panicking.
#[derive(Debug)]
struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit position from the start of `buf`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.buf.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, n: u32) -> Option<u64> {
        debug_assert!((1..=64).contains(&n), "bit run length out of range");
        // Bounds-check once so a short buffer cannot leave the cursor
        // half-advanced.
        let end = self.pos.checked_add(n as usize)?;
        if end > self.buf.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..n {
            let byte = self.buf[self.pos / 8];
            let bit = u64::from((byte >> (7 - (self.pos % 8))) & 1);
            out = (out << 1) | bit;
            self.pos += 1;
        }
        Some(out)
    }
}

/// Buffered 64-bit word cursor over an immutable byte slice, MSB-first.
///
/// The unconsumed stream prefix lives left-aligned in `bits`; a refill
/// tops the window back up to ≥56 valid bits with a single unaligned
/// big-endian load when eight source bytes remain (the branch-reduced
/// fast path), falling back to byte-at-a-time near the end of the buffer.
/// Absorbing whole bytes only means a reload may re-OR bits already
/// present — they come from the same source bytes, so the OR is a no-op.
///
/// `remaining` counts stream bits not yet consumed (whether or not they
/// are loaded), which is what makes overrun detection exact on corrupt or
/// truncated payloads: a read past `remaining` returns `None` and the
/// cursor refuses all further reads, mirroring the legacy reader's
/// termination behavior.
#[derive(Debug)]
struct WordReader<'a> {
    buf: &'a [u8],
    /// Next byte of `buf` not yet absorbed into `bits`.
    byte_pos: usize,
    /// Unconsumed bits, left-aligned (bit 63 is the next stream bit).
    bits: u64,
    /// Number of valid bits in `bits` (0..=64).
    avail: u32,
    /// Stream bits not yet consumed, loaded or not.
    remaining: usize,
}

impl<'a> WordReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, byte_pos: 0, bits: 0, avail: 0, remaining: buf.len() * 8 }
    }

    /// Tops `bits` up to ≥56 valid bits while source bytes remain.
    #[inline]
    fn refill(&mut self) {
        if self.avail >= 56 {
            return;
        }
        if let Some(window) = self.buf.get(self.byte_pos..self.byte_pos + 8) {
            // Branch-reduced fast path: one unaligned big-endian load.
            let w = u64::from_be_bytes(window.try_into().unwrap_or([0; 8]));
            self.bits |= w >> self.avail;
            let absorbed = (63 - self.avail) >> 3;
            self.byte_pos += absorbed as usize;
            self.avail += absorbed * 8;
        } else {
            while self.avail <= 56 {
                let Some(&b) = self.buf.get(self.byte_pos) else { return };
                self.bits |= u64::from(b) << (56 - self.avail);
                self.avail += 8;
                self.byte_pos += 1;
            }
        }
    }

    /// The next (up to) `n` unconsumed bits, left-padded with zeros when
    /// fewer are loaded. Does not consume; callers must bound every
    /// subsequent `read` so zero padding can never be mistaken for data.
    #[inline]
    fn peek(&mut self, n: u32) -> u64 {
        debug_assert!((1..=56).contains(&n));
        if self.avail < n {
            self.refill();
        }
        self.bits >> (64 - n)
    }

    /// Consumes `n` already-peeked bits (`n` ≤ loaded and ≤ remaining).
    #[inline]
    fn consume(&mut self, n: u32) {
        debug_assert!(n as usize <= self.remaining && n <= self.avail);
        self.bits <<= n;
        self.avail -= n;
        self.remaining -= n as usize;
    }

    /// Reads `n ∈ 1..=56` bits, or `None` when the stream is exhausted.
    #[inline]
    fn read(&mut self, n: u32) -> Option<u64> {
        debug_assert!((1..=56).contains(&n));
        if self.remaining < n as usize {
            self.remaining = 0;
            return None;
        }
        if self.avail < n {
            self.refill();
        }
        let out = self.bits >> (64 - n);
        self.bits <<= n;
        self.avail -= n;
        self.remaining -= n as usize;
        Some(out)
    }

    /// Reads `n ∈ 1..=64` bits (the 64-bit raw escapes split in two).
    #[inline]
    fn read_long(&mut self, n: u32) -> Option<u64> {
        debug_assert!((1..=64).contains(&n));
        if n <= 56 {
            return self.read(n);
        }
        let hi = self.read(n - 32)?;
        let lo = self.read(32)?;
        Some((hi << 32) | lo)
    }
}

/// Per-block statistics computed while the block is built, stored beside
/// the compressed payload. Moment fields are accumulated in append order
/// over the **finite** values, so they are bit-identical to what a full
/// decode followed by the same left-to-right accumulation produces — the
/// property the seal-time-summary proptests pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSummary {
    /// Number of points in the block.
    pub count: u32,
    /// Number of non-finite values (NaN and ±∞).
    pub nan_count: u32,
    /// Timestamp of the first point (0 for an empty block).
    pub first_ts: Timestamp,
    /// Timestamp of the last point (0 for an empty block).
    pub last_ts: Timestamp,
    /// Smallest positive consecutive-timestamp delta (0 when fewer than
    /// two distinct timestamps): the block's cadence lower bound.
    pub min_gap: u64,
    /// Largest consecutive-timestamp delta (wrapping; 0 for < 2 points).
    pub max_gap: u64,
    /// Smallest finite value (+∞ when none).
    pub min: f64,
    /// Largest finite value (−∞ when none).
    pub max: f64,
    /// Sum of the finite values, accumulated in append order.
    pub sum: f64,
    /// Sum of squares of the finite values, accumulated in append order.
    pub sum_sq: f64,
}

/// Resident bytes one [`BlockSummary`] occupies beside its block; charged
/// into `resident_bytes` by the series/shard accounting.
pub const SUMMARY_BYTES: usize = std::mem::size_of::<BlockSummary>();

impl Default for BlockSummary {
    fn default() -> Self {
        Self::empty()
    }
}

impl BlockSummary {
    /// The summary of a block with no points.
    pub const fn empty() -> Self {
        BlockSummary {
            count: 0,
            nan_count: 0,
            first_ts: 0,
            last_ts: 0,
            min_gap: 0,
            max_gap: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Number of finite values in the block.
    pub fn finite_count(&self) -> u32 {
        self.count - self.nan_count
    }

    /// Folds one point into the summary; `record` must be called in
    /// append order for the moment fields to stay decode-stable.
    fn record(&mut self, point: DataPoint) {
        if self.count == 0 {
            self.first_ts = point.timestamp;
        } else {
            let gap = point.timestamp.wrapping_sub(self.last_ts);
            self.max_gap = self.max_gap.max(gap);
            if gap > 0 && (self.min_gap == 0 || gap < self.min_gap) {
                self.min_gap = gap;
            }
        }
        self.last_ts = point.timestamp;
        if point.value.is_finite() {
            self.min = self.min.min(point.value);
            self.max = self.max.max(point.value);
            self.sum += point.value;
            self.sum_sq += point.value * point.value;
        } else {
            self.nan_count += 1;
        }
        self.count += 1;
    }
}

/// Incremental encoder producing one [`SealedBlock`].
#[derive(Debug)]
pub struct BlockBuilder {
    bits: BitWriter,
    summary: BlockSummary,
    prev_delta: u64,
    prev_value_bits: u64,
    prev_leading: u32,
    prev_sig_len: u32,
    window_set: bool,
}

impl Default for BlockBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockBuilder {
    /// A builder with no points encoded yet.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A builder pre-sized for roughly `points` samples.
    pub fn with_capacity(points: usize) -> Self {
        // ~2 bytes/point is the steady-state for minute-cadence metrics;
        // the buffer grows if the data is noisier.
        Self {
            bits: BitWriter::with_capacity(16 + points * 2),
            summary: BlockSummary::empty(),
            prev_delta: 0,
            prev_value_bits: 0,
            prev_leading: 0,
            prev_sig_len: 0,
            window_set: false,
        }
    }

    /// Number of points encoded so far.
    pub fn count(&self) -> u32 {
        self.summary.count
    }

    /// True when no point has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.summary.count == 0
    }

    /// Compressed size in bytes if the block were sealed now.
    pub fn byte_len(&self) -> usize {
        self.bits.byte_len()
    }

    /// Append one point. Timestamps may be arbitrary (the codec uses
    /// wrapping arithmetic); [`crate::series::TimeSeries`] enforces
    /// monotonicity before points ever reach a builder.
    pub fn push(&mut self, point: DataPoint) {
        let value_bits = point.value.to_bits();
        if self.summary.count == 0 {
            self.bits.push_bits(point.timestamp, 64);
            self.bits.push_bits(value_bits, 64);
        } else {
            self.push_timestamp(point.timestamp);
            self.push_value(value_bits);
        }
        self.prev_value_bits = value_bits;
        self.summary.record(point);
    }

    fn push_timestamp(&mut self, ts: Timestamp) {
        let delta = ts.wrapping_sub(self.summary.last_ts);
        let dod = delta.wrapping_sub(self.prev_delta) as i64;
        self.prev_delta = delta;
        if dod == 0 {
            self.bits.push_bit(false);
        } else if (-63..=64).contains(&dod) {
            self.bits.push_bits(0b10, 2);
            self.bits.push_bits((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            self.bits.push_bits(0b110, 3);
            self.bits.push_bits((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            self.bits.push_bits(0b1110, 4);
            self.bits.push_bits((dod + 2047) as u64, 12);
        } else {
            self.bits.push_bits(0b1111, 4);
            self.bits.push_bits(dod as u64, 64);
        }
    }

    fn push_value(&mut self, value_bits: u64) {
        let xor = value_bits ^ self.prev_value_bits;
        if xor == 0 {
            self.bits.push_bit(false);
            return;
        }
        self.bits.push_bit(true);
        let leading = xor.leading_zeros();
        let trailing = xor.trailing_zeros();
        let prev_trailing = 64 - self.prev_leading - self.prev_sig_len;
        if self.window_set && leading >= self.prev_leading && trailing >= prev_trailing {
            // Meaningful bits fit inside the previously emitted window:
            // reuse it and pay only the window-sized payload.
            self.bits.push_bit(false);
            self.bits.push_bits(xor >> prev_trailing, self.prev_sig_len);
        } else {
            let sig_len = 64 - leading - trailing;
            self.bits.push_bit(true);
            self.bits.push_bits(u64::from(leading), 6);
            self.bits.push_bits(u64::from(sig_len - 1), 6);
            self.bits.push_bits(xor >> trailing, sig_len);
            self.prev_leading = leading;
            self.prev_sig_len = sig_len;
            self.window_set = true;
        }
    }

    /// Freeze the builder into an immutable block.
    pub fn seal(self) -> SealedBlock {
        SealedBlock {
            bytes: self.bits.finish(),
            summary: self.summary,
            seq: BLOCK_SEQ.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// An immutable, compressed run of data points.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    bytes: Bytes,
    summary: BlockSummary,
    /// Process-unique id stamped at seal time; clones share it (same
    /// bytes, same identity). Used as the decode-cache key.
    seq: u64,
}

impl SealedBlock {
    /// Compress a slice of points into one sealed block.
    pub fn from_points(points: &[DataPoint]) -> Self {
        let mut builder = BlockBuilder::with_capacity(points.len());
        for p in points {
            builder.push(*p);
        }
        builder.seal()
    }

    /// Number of points in the block.
    pub fn count(&self) -> u32 {
        self.summary.count
    }

    /// True when the block holds no points.
    pub fn is_empty(&self) -> bool {
        self.summary.count == 0
    }

    /// Timestamp of the first point (0 for an empty block).
    pub fn first_timestamp(&self) -> Timestamp {
        self.summary.first_ts
    }

    /// Timestamp of the last point (0 for an empty block).
    pub fn last_timestamp(&self) -> Timestamp {
        self.summary.last_ts
    }

    /// The seal-time statistics stored beside the payload.
    pub fn summary(&self) -> &BlockSummary {
        &self.summary
    }

    /// Process-unique identity of this block's payload. Never reused for
    /// different bytes within a process, which makes it safe as a decode
    /// cache key even across series replacement and eviction.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Compressed payload size in bytes (excluding [`SUMMARY_BYTES`]).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The compressed payload bytes. Exposed for snapshotting and for the
    /// corrupt-tail decoder proptests, which truncate and bit-flip real
    /// payloads; mutating a copy never affects the sealed block.
    pub fn payload(&self) -> &[u8] {
        &self.bytes
    }

    /// Streaming decoder over the block's points (word-buffered).
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter {
            reader: WordReader::new(&self.bytes),
            remaining: self.summary.count,
            started: false,
            last_ts: 0,
            prev_delta: 0,
            prev_value_bits: 0,
            prev_leading: 0,
            prev_sig_len: 0,
        }
    }

    /// The original bit-at-a-time decoder, kept as the bit-exactness
    /// oracle: tests and proptests compare [`SealedBlock::iter`] against
    /// it point for point (including termination on corrupt tails).
    pub fn reference_iter(&self) -> ReferenceBlockIter<'_> {
        ReferenceBlockIter {
            reader: BitReader::new(&self.bytes),
            remaining: self.summary.count,
            started: false,
            last_ts: 0,
            prev_delta: 0,
            prev_value_bits: 0,
            prev_leading: 0,
            prev_sig_len: 0,
        }
    }

    /// A block claiming `count` points over an arbitrary payload. Test
    /// hook for the corrupt-tail decoder contracts: production blocks are
    /// only ever built by [`BlockBuilder`].
    #[doc(hidden)]
    pub fn from_raw_parts(bytes: Vec<u8>, count: u32) -> Self {
        SealedBlock {
            bytes: Bytes::from(bytes),
            summary: BlockSummary { count, ..BlockSummary::empty() },
            seq: BLOCK_SEQ.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Decode every point, appending to `out`.
    pub fn decode_into(&self, out: &mut Vec<DataPoint>) {
        out.reserve(self.summary.count as usize);
        out.extend(self.iter());
    }

    /// Decode every point into a fresh vector.
    pub fn to_points(&self) -> Vec<DataPoint> {
        let mut out = Vec::with_capacity(self.summary.count as usize);
        out.extend(self.iter());
        out
    }
}

impl<'a> IntoIterator for &'a SealedBlock {
    type Item = DataPoint;
    type IntoIter = BlockIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Streaming decoder; see [`SealedBlock::iter`].
///
/// Yields exactly [`SealedBlock::count`] points for a well-formed block.
/// A corrupt or truncated payload ends iteration early, never panics —
/// the contract the corrupt-tail proptests pin against the reference
/// decoder.
///
/// Decoding runs on the [`WordReader`]: tag dispatch peeks the four
/// possible delta-of-delta class bits (or the two value class bits) in a
/// single masked compare instead of one branch per bit, and payloads are
/// extracted with at most one refill per record.
#[derive(Debug)]
pub struct BlockIter<'a> {
    reader: WordReader<'a>,
    remaining: u32,
    started: bool,
    last_ts: Timestamp,
    prev_delta: u64,
    prev_value_bits: u64,
    prev_leading: u32,
    prev_sig_len: u32,
}

impl BlockIter<'_> {
    fn step(&mut self) -> Option<DataPoint> {
        if !self.started {
            self.started = true;
            self.last_ts = self.reader.read_long(64)?;
            self.prev_value_bits = self.reader.read_long(64)?;
        } else {
            self.last_ts = self.next_timestamp()?;
            self.prev_value_bits = self.next_value_bits()?;
        }
        Some(DataPoint { timestamp: self.last_ts, value: f64::from_bits(self.prev_value_bits) })
    }

    /// Unrolled delta-of-delta dispatch: one 4-bit peek classifies the
    /// record; zero padding past the end of the stream is harmless because
    /// every consuming read below re-validates the remaining bit budget.
    fn next_timestamp(&mut self) -> Option<Timestamp> {
        let tag = self.reader.peek(4);
        let dod: i64 = if tag & 0b1000 == 0 {
            if self.reader.remaining < 1 {
                return None;
            }
            self.reader.consume(1);
            0
        } else if tag & 0b0100 == 0 {
            if self.reader.remaining < 2 {
                return None;
            }
            self.reader.consume(2);
            self.reader.read(7)? as i64 - 63
        } else if tag & 0b0010 == 0 {
            if self.reader.remaining < 3 {
                return None;
            }
            self.reader.consume(3);
            self.reader.read(9)? as i64 - 255
        } else if tag & 0b0001 == 0 {
            if self.reader.remaining < 4 {
                return None;
            }
            self.reader.consume(4);
            self.reader.read(12)? as i64 - 2047
        } else {
            if self.reader.remaining < 4 {
                return None;
            }
            self.reader.consume(4);
            self.reader.read_long(64)? as i64
        };
        self.prev_delta = self.prev_delta.wrapping_add(dod as u64);
        Some(self.last_ts.wrapping_add(self.prev_delta))
    }

    fn next_value_bits(&mut self) -> Option<u64> {
        let tag = self.reader.peek(2);
        if tag & 0b10 == 0 {
            if self.reader.remaining < 1 {
                return None;
            }
            self.reader.consume(1);
            return Some(self.prev_value_bits);
        }
        if self.reader.remaining < 2 {
            return None;
        }
        self.reader.consume(2);
        if tag & 0b01 == 1 {
            // Fresh window: leading count + (length - 1) + payload, read
            // as one 12-bit burst.
            let header = self.reader.read(12)?;
            self.prev_leading = (header >> 6) as u32;
            self.prev_sig_len = (header & 0x3f) as u32 + 1;
            if self.prev_leading + self.prev_sig_len > 64 {
                return None; // corrupt window descriptor
            }
        }
        let trailing = 64 - self.prev_leading - self.prev_sig_len;
        let payload = self.reader.read_long(self.prev_sig_len)?;
        Some(self.prev_value_bits ^ (payload << trailing))
    }
}

impl Iterator for BlockIter<'_> {
    type Item = DataPoint;

    fn next(&mut self) -> Option<DataPoint> {
        if self.remaining == 0 {
            return None;
        }
        match self.step() {
            Some(point) => {
                self.remaining -= 1;
                Some(point)
            }
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for BlockIter<'_> {}

/// The retained legacy decoder; see [`SealedBlock::reference_iter`].
/// Semantics are identical to [`BlockIter`] — same points, same
/// termination on corrupt input — just one branch per bit.
#[derive(Debug)]
pub struct ReferenceBlockIter<'a> {
    reader: BitReader<'a>,
    remaining: u32,
    started: bool,
    last_ts: Timestamp,
    prev_delta: u64,
    prev_value_bits: u64,
    prev_leading: u32,
    prev_sig_len: u32,
}

impl ReferenceBlockIter<'_> {
    fn step(&mut self) -> Option<DataPoint> {
        if !self.started {
            self.started = true;
            self.last_ts = self.reader.read_bits(64)?;
            self.prev_value_bits = self.reader.read_bits(64)?;
        } else {
            self.last_ts = self.next_timestamp()?;
            self.prev_value_bits = self.next_value_bits()?;
        }
        Some(DataPoint { timestamp: self.last_ts, value: f64::from_bits(self.prev_value_bits) })
    }

    fn next_timestamp(&mut self) -> Option<Timestamp> {
        let dod: i64 = if !self.reader.read_bit()? {
            0
        } else if !self.reader.read_bit()? {
            self.reader.read_bits(7)? as i64 - 63
        } else if !self.reader.read_bit()? {
            self.reader.read_bits(9)? as i64 - 255
        } else if !self.reader.read_bit()? {
            self.reader.read_bits(12)? as i64 - 2047
        } else {
            self.reader.read_bits(64)? as i64
        };
        self.prev_delta = self.prev_delta.wrapping_add(dod as u64);
        Some(self.last_ts.wrapping_add(self.prev_delta))
    }

    fn next_value_bits(&mut self) -> Option<u64> {
        if !self.reader.read_bit()? {
            return Some(self.prev_value_bits);
        }
        if self.reader.read_bit()? {
            // Fresh window: leading count + (length - 1) + payload.
            self.prev_leading = self.reader.read_bits(6)? as u32;
            self.prev_sig_len = self.reader.read_bits(6)? as u32 + 1;
            if self.prev_leading + self.prev_sig_len > 64 {
                return None; // corrupt window descriptor
            }
        }
        let trailing = 64 - self.prev_leading - self.prev_sig_len;
        let payload = self.reader.read_bits(self.prev_sig_len)?;
        Some(self.prev_value_bits ^ (payload << trailing))
    }
}

impl Iterator for ReferenceBlockIter<'_> {
    type Item = DataPoint;

    fn next(&mut self) -> Option<DataPoint> {
        if self.remaining == 0 {
            return None;
        }
        match self.step() {
            Some(point) => {
                self.remaining -= 1;
                Some(point)
            }
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for ReferenceBlockIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(points: &[DataPoint]) {
        let block = SealedBlock::from_points(points);
        assert_eq!(block.count() as usize, points.len());
        let decoded = block.to_points();
        assert_eq!(decoded.len(), points.len());
        for (got, want) in decoded.iter().zip(points) {
            assert_eq!(got.timestamp, want.timestamp);
            assert_eq!(
                got.value.to_bits(),
                want.value.to_bits(),
                "value bits diverged at ts {}",
                want.timestamp
            );
        }
        // The reference decoder must agree with the word-buffered one.
        let reference: Vec<DataPoint> = block.reference_iter().collect();
        assert_eq!(reference.len(), decoded.len());
        for (fast, slow) in decoded.iter().zip(&reference) {
            assert_eq!(fast.timestamp, slow.timestamp);
            assert_eq!(fast.value.to_bits(), slow.value.to_bits());
        }
        if let (Some(first), Some(last)) = (points.first(), points.last()) {
            assert_eq!(block.first_timestamp(), first.timestamp);
            assert_eq!(block.last_timestamp(), last.timestamp);
        }
    }

    fn dp(timestamp: Timestamp, value: f64) -> DataPoint {
        DataPoint { timestamp, value }
    }

    #[test]
    fn empty_block_yields_nothing() {
        let block = BlockBuilder::new().seal();
        assert!(block.is_empty());
        assert_eq!(block.iter().count(), 0);
        assert_eq!(block.byte_len(), 0);
        assert_eq!(*block.summary(), BlockSummary::empty());
    }

    #[test]
    fn single_point_roundtrip() {
        roundtrip(&[dp(1234, 42.5)]);
        roundtrip(&[dp(0, f64::NAN)]);
        roundtrip(&[dp(u64::MAX, -0.0)]);
    }

    #[test]
    fn regular_cadence_roundtrip() {
        let points: Vec<DataPoint> =
            (0..900).map(|i| dp(1000 + i * 60, 1.0 + (i as f64) * 0.001)).collect();
        roundtrip(&points);
    }

    #[test]
    fn irregular_cadence_roundtrip() {
        // Gaps exercising every delta-of-delta class, including the raw
        // 64-bit escape and duplicate timestamps (delta 0).
        let gaps: [u64; 12] =
            [60, 60, 1, 0, 4000, 63, 64, 257, 2049, 1 << 40, 0, 7];
        let mut ts = 5u64;
        let mut points = Vec::new();
        for (i, g) in gaps.iter().enumerate() {
            ts = ts.wrapping_add(*g);
            points.push(dp(ts, (i as f64).sin()));
        }
        roundtrip(&points);
    }

    #[test]
    fn special_float_values_bit_exact() {
        let specials = [
            0.0,
            -0.0,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::EPSILON,
            1.0,
            -1.0,
        ];
        let points: Vec<DataPoint> =
            specials.iter().enumerate().map(|(i, v)| dp(i as u64 * 60, *v)).collect();
        roundtrip(&points);
    }

    #[test]
    fn constant_series_compresses_hard() {
        let points: Vec<DataPoint> = (0..900).map(|i| dp(i * 60, 3.25)).collect();
        let block = SealedBlock::from_points(&points);
        roundtrip(&points);
        // First sample costs 16 bytes; every other point is 2 bits.
        assert!(
            block.byte_len() < 300,
            "constant series should be ~2 bits/point, got {} bytes",
            block.byte_len()
        );
    }

    #[test]
    fn noisy_series_still_beats_raw() {
        // Deterministic pseudo-noise (SplitMix64) over a realistic base.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let points: Vec<DataPoint> = (0..900)
            .map(|i| {
                let noise = (next() as f64 / u64::MAX as f64 - 0.5) * 0.004;
                dp(i * 60, 1.0 + noise)
            })
            .collect();
        let block = SealedBlock::from_points(&points);
        roundtrip(&points);
        let raw = points.len() * std::mem::size_of::<DataPoint>();
        assert!(
            block.byte_len() < raw,
            "compressed {} bytes vs raw {raw}",
            block.byte_len()
        );
    }

    #[test]
    fn full_width_xor_window_roundtrips() {
        // Alternating sign + magnitude extremes force 64-significant-bit
        // XOR windows (leading 0, trailing 0) — the case the 6+6 bit
        // header exists for.
        let points = [
            dp(0, f64::MAX),
            dp(60, -f64::MIN_POSITIVE),
            dp(120, f64::MAX),
            dp(180, -0.0),
        ];
        roundtrip(&points);
    }

    #[test]
    fn decode_into_appends() {
        let points: Vec<DataPoint> = (0..10).map(|i| dp(i * 60, i as f64)).collect();
        let block = SealedBlock::from_points(&points);
        let mut out = vec![dp(999, 9.9)];
        block.decode_into(&mut out);
        assert_eq!(out.len(), 11);
        assert_eq!(out[0].timestamp, 999);
        assert_eq!(out[1].timestamp, 0);
    }

    #[test]
    fn iterator_len_tracks_remaining() {
        let points: Vec<DataPoint> = (0..5).map(|i| dp(i * 60, i as f64)).collect();
        let block = SealedBlock::from_points(&points);
        let mut it = block.iter();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn builder_reports_incremental_size() {
        let mut b = BlockBuilder::new();
        assert!(b.is_empty());
        b.push(dp(0, 1.0));
        let after_one = b.byte_len();
        assert!(after_one >= 16);
        b.push(dp(60, 1.0));
        assert!(b.byte_len() >= after_one);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn summary_matches_full_decode() {
        let values = [1.5, f64::NAN, -2.0, 7.25, f64::INFINITY, 0.5, 0.5];
        let gaps = [0u64, 60, 60, 1, 4000, 60, 0];
        let mut ts = 100u64;
        let mut points = Vec::new();
        for (v, g) in values.iter().zip(gaps) {
            ts += g;
            points.push(dp(ts, *v));
        }
        let block = SealedBlock::from_points(&points);
        let s = block.summary();
        // Recompute the summary from a full decode, in decode order.
        let mut oracle = BlockSummary::empty();
        for p in block.iter() {
            oracle.record(p);
        }
        assert_eq!(*s, oracle);
        assert_eq!(s.count, 7);
        assert_eq!(s.nan_count, 2);
        assert_eq!(s.finite_count(), 5);
        assert_eq!(s.first_ts, 100);
        assert_eq!(s.last_ts, 100 + 60 + 60 + 1 + 4000 + 60);
        assert_eq!(s.min_gap, 1);
        assert_eq!(s.max_gap, 4000);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 7.25);
        let direct_sum: f64 = 1.5 + -2.0 + 7.25 + 0.5 + 0.5;
        assert_eq!(s.sum.to_bits(), direct_sum.to_bits());
    }

    #[test]
    fn summary_of_all_nan_block_keeps_sentinels() {
        let points: Vec<DataPoint> = (0..4).map(|i| dp(i * 60, f64::NAN)).collect();
        let block = SealedBlock::from_points(&points);
        let s = block.summary();
        assert_eq!(s.nan_count, 4);
        assert_eq!(s.finite_count(), 0);
        assert!(s.min.is_infinite() && s.min > 0.0);
        assert!(s.max.is_infinite() && s.max < 0.0);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn truncated_payload_terminates_both_decoders_identically() {
        let points: Vec<DataPoint> =
            (0..64).map(|i| dp(i * 60 + (i % 7), (i as f64).sin())).collect();
        let block = SealedBlock::from_points(&points);
        let full = block.byte_len();
        for cut in [0usize, 1, 7, 15, 16, 17, full / 2, full.saturating_sub(1)] {
            let truncated = SealedBlock::from_raw_parts(
                block.bytes[..cut.min(full)].to_vec(),
                block.count(),
            );
            let fast: Vec<DataPoint> = truncated.iter().collect();
            let slow: Vec<DataPoint> = truncated.reference_iter().collect();
            assert_eq!(fast.len(), slow.len(), "cut at {cut}");
            for (a, b) in fast.iter().zip(&slow) {
                assert_eq!(a.timestamp, b.timestamp, "cut at {cut}");
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn summary_bytes_is_nonzero_and_stable() {
        assert!(SUMMARY_BYTES >= 56);
        assert_eq!(SUMMARY_BYTES, std::mem::size_of::<BlockSummary>());
    }
}
