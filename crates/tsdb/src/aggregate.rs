//! Fleet-wide aggregation of many per-server series.
//!
//! The paper's §2 simulations average the per-server time series of `m`
//! servers to demonstrate the Law of Large Numbers (Figures 2 and 3). These
//! helpers perform that pointwise averaging and related cross-series
//! reductions.

use crate::series::TimeSeries;
use crate::{Result, TsdbError};

/// Pointwise mean of equal-length value vectors.
///
/// All inputs must be the same length; returns an error otherwise or when
/// the input is empty.
pub fn mean_of_series(series: &[Vec<f64>]) -> Result<Vec<f64>> {
    let Some(first) = series.first() else {
        return Err(TsdbError::EmptyWindow("aggregate input"));
    };
    let n = first.len();
    if n == 0 {
        return Err(TsdbError::EmptyWindow("aggregate input"));
    }
    if series.iter().any(|s| s.len() != n) {
        return Err(TsdbError::InvalidRange);
    }
    let mut out = vec![0.0; n];
    for s in series {
        for (o, v) in out.iter_mut().zip(s) {
            *o += v;
        }
    }
    let m = series.len() as f64;
    for o in out.iter_mut() {
        *o /= m;
    }
    Ok(out)
}

/// Pointwise sum of equal-length value vectors.
pub fn sum_of_series(series: &[Vec<f64>]) -> Result<Vec<f64>> {
    let mean = mean_of_series(series)?;
    let m = series.len() as f64;
    Ok(mean.into_iter().map(|v| v * m).collect())
}

/// Aligns several [`TimeSeries`] onto a common bucketed grid and averages
/// them: each series is downsampled to `bucket`-second resolution, then the
/// bucket values present in *all* series are averaged.
pub fn aligned_mean(series: &[TimeSeries], bucket: u64) -> Result<TimeSeries> {
    if series.is_empty() {
        return Err(TsdbError::EmptyWindow("aggregate input"));
    }
    use std::collections::BTreeMap;
    let mut sums: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    for s in series {
        let d = s.downsample(bucket)?;
        for p in d.iter() {
            // Snap to the global grid so different start offsets align.
            let key = p.timestamp / bucket * bucket;
            let e = sums.entry(key).or_insert((0.0, 0));
            e.0 += p.value;
            e.1 += 1;
        }
    }
    let full = series.len();
    let mut out = TimeSeries::new();
    for (t, (sum, count)) in sums {
        if count == full {
            // BTreeMap iterates in timestamp order, so append cannot see an
            // out-of-order point; propagate rather than panic regardless.
            out.append(t, sum / count as f64)?;
        }
    }
    if out.is_empty() {
        return Err(TsdbError::EmptyWindow("aligned mean"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_two_series() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![3.0, 4.0, 5.0];
        assert_eq!(mean_of_series(&[a, b]).unwrap(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn sum_of_series_works() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        assert_eq!(sum_of_series(&[a, b]).unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn mean_rejects_mismatched_lengths() {
        assert!(mean_of_series(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(mean_of_series(&[]).is_err());
        assert!(mean_of_series(&[vec![]]).is_err());
    }

    #[test]
    fn averaging_reduces_noise() {
        // m deterministic noisy series; the averaged variance should shrink
        // roughly like 1/m (Law of Large Numbers, Appendix A.1).
        let make = |seed: u64| -> Vec<f64> {
            (0..500u64)
                .map(|i| {
                    let mut z = (i ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add(0x9E37_79B9_7F4A_7C15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((z >> 33) % 1000) as f64 / 1000.0
                })
                .collect()
        };
        let one = make(1);
        let many: Vec<Vec<f64>> = (0..64).map(make).collect();
        let avg = mean_of_series(&many).unwrap();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&avg) < var(&one) / 16.0);
    }

    #[test]
    fn aligned_mean_over_common_buckets() {
        let a = TimeSeries::from_values(0, 1, &[1.0, 1.0, 3.0, 3.0]);
        let b = TimeSeries::from_values(0, 1, &[3.0, 3.0, 5.0, 5.0]);
        let m = aligned_mean(&[a, b], 2).unwrap();
        assert_eq!(m.values(), vec![2.0, 4.0]);
    }

    #[test]
    fn aligned_mean_skips_partial_buckets() {
        let a = TimeSeries::from_values(0, 1, &[1.0, 1.0]);
        let b = TimeSeries::from_values(0, 1, &[3.0, 3.0, 5.0, 5.0]);
        let m = aligned_mean(&[a, b], 2).unwrap();
        // Only the first bucket is present in both series.
        assert_eq!(m.len(), 1);
        assert_eq!(m.values(), vec![2.0]);
    }
}
