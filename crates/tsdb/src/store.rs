//! Concurrent store mapping series ids to time series.

use crate::series::TimeSeries;
use crate::types::{DataPoint, SeriesId, Timestamp};
use crate::window::{
    extract_windows, snapshot_bounds, windows_from_points, WindowConfig, WindowedData,
};
use crate::{Result, TsdbError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A point-in-time observation of a series' mutation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesVersion {
    /// Counter advanced by every mutation.
    pub version: u64,
    /// Counter advanced only by appends.
    pub appended: u64,
}

/// What changed in one series since a previously observed [`SeriesVersion`],
/// as captured by [`TsdbStore::snapshot_deltas`] under one short shard lock.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesDelta {
    /// The series does not exist (or no longer exists).
    Missing,
    /// No mutation since the known version: nothing was copied.
    Unchanged {
        /// The (unchanged) counters at snapshot time.
        version: SeriesVersion,
    },
    /// Only appends happened since the known version; `tail` holds exactly
    /// the newly appended points, oldest first.
    Appended {
        /// Counters at snapshot time.
        version: SeriesVersion,
        /// The points appended since the known version.
        tail: Vec<DataPoint>,
    },
    /// Anything else (expiry, replacement, first observation): `points`
    /// holds everything from the scan range start onward — including points
    /// timestamped at or after `now` (ingestion running ahead of the scan
    /// watermark) — so a consumer that extends the copy with later
    /// [`SeriesDelta::Appended`] tails never develops a gap.
    Reset {
        /// Counters at snapshot time.
        version: SeriesVersion,
        /// All points from `snapshot_bounds(config, now).0` onward.
        points: Vec<DataPoint>,
    },
}

/// What happened to each point of a [`TsdbStore::append_batch`] call.
#[derive(Debug, Default)]
pub struct BatchAppendOutcome {
    /// Points successfully appended.
    pub appended: usize,
    /// Points the store refused, as `(index into the input batch, error)`.
    pub rejected: Vec<(usize, TsdbError)>,
}

/// A thread-safe in-memory time-series store.
///
/// Writers (the fleet simulator's collectors) append samples concurrently
/// with readers (the detection pipeline scanning windows). The store is
/// sharded by series id hash to keep lock contention low.
#[derive(Debug, Default)]
pub struct TsdbStore {
    shards: Vec<RwLock<BTreeMap<SeriesId, TimeSeries>>>,
}

const SHARD_COUNT: usize = 16;

impl TsdbStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TsdbStore {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
        }
    }

    /// Creates a store wrapped in an [`Arc`] for sharing across threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn shard_index(id: &SeriesId) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    /// Number of shards the store partitions series across.
    pub const fn shard_count() -> usize {
        SHARD_COUNT
    }

    /// The shard a series id routes to. Stable across processes
    /// (`DefaultHasher` with fixed keys), so external writers — the
    /// ingestion pipeline's shard-append workers — can partition work to
    /// match the store's own locking granularity.
    pub fn shard_of(id: &SeriesId) -> usize {
        Self::shard_index(id)
    }

    fn shard(&self, id: &SeriesId) -> &RwLock<BTreeMap<SeriesId, TimeSeries>> {
        &self.shards[Self::shard_index(id)]
    }

    /// Appends a sample, creating the series on first write.
    pub fn append(&self, id: &SeriesId, timestamp: Timestamp, value: f64) -> Result<()> {
        let mut shard = self.shard(id).write();
        shard
            .entry(id.clone())
            .or_default()
            .append(timestamp, value)
    }

    /// Appends a batch of samples, acquiring each touched shard's write
    /// lock once instead of once per point. Points are grouped by shard
    /// in input order, and within a shard each point goes through the
    /// ordinary per-point [`TimeSeries::append`] — so the series' version
    /// and appended counters keep their lockstep stride and delta
    /// snapshots still classify the mutation as append-only.
    ///
    /// Per-point failures (out-of-order timestamps) do not abort the
    /// batch: the point is skipped and reported in
    /// [`BatchAppendOutcome::rejected`] with its index into `points`.
    pub fn append_batch(&self, points: &[(SeriesId, Timestamp, f64)]) -> BatchAppendOutcome {
        let mut outcome = BatchAppendOutcome::default();
        let mut by_shard: Vec<Vec<usize>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (i, (id, _, _)) in points.iter().enumerate() {
            by_shard[Self::shard_index(id)].push(i);
        }
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            let mut shard = shard.write();
            for &i in indices {
                let (id, timestamp, value) = &points[i];
                match shard
                    .entry(id.clone())
                    .or_default()
                    .append(*timestamp, *value)
                {
                    Ok(()) => outcome.appended += 1,
                    Err(e) => outcome.rejected.push((i, e)),
                }
            }
        }
        outcome
    }

    /// Inserts (or replaces) a whole series. Replacement advances the new
    /// series' version past the old lineage so delta snapshots observe it as
    /// a reset, never as an append-only change.
    pub fn insert_series(&self, id: SeriesId, mut series: TimeSeries) {
        let mut shard = self.shard(&id).write();
        if let Some(old) = shard.get(&id) {
            series.mark_replacement_of(old.version());
        }
        shard.insert(id, series);
    }

    /// Returns a clone of the series, or an error if absent.
    pub fn get(&self, id: &SeriesId) -> Result<TimeSeries> {
        self.shard(id)
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))
    }

    /// Runs a closure against a borrowed series under the shard read lock,
    /// avoiding the whole-series clone [`TsdbStore::get`] pays. This is the
    /// read path scans should use: the closure sees `&TimeSeries` in place.
    pub fn with_series<R>(&self, id: &SeriesId, f: impl FnOnce(&TimeSeries) -> R) -> Result<R> {
        let shard = self.shard(id).read();
        let series = shard
            .get(id)
            .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))?;
        Ok(f(series))
    }

    /// Timestamp of the series' newest sample without cloning the series.
    pub fn last_timestamp(&self, id: &SeriesId) -> Result<Option<Timestamp>> {
        self.with_series(id, |s| s.last_timestamp())
    }

    /// Whether a series exists.
    pub fn contains(&self, id: &SeriesId) -> bool {
        self.shard(id).read().contains_key(id)
    }

    /// All series ids, sorted.
    pub fn series_ids(&self) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Series ids belonging to one service, sorted.
    pub fn series_ids_for_service(&self, service: &str) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .keys()
                    .filter(|id| id.service == service)
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }

    /// Number of stored series.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Extracts detection windows for one series at scan time `now`.
    pub fn windows(
        &self,
        id: &SeriesId,
        config: &WindowConfig,
        now: Timestamp,
    ) -> Result<WindowedData> {
        let shard = self.shard(id).read();
        let series = shard
            .get(id)
            .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))?;
        extract_windows(series, config, now)
    }

    /// Extracts detection windows for a whole batch of series, holding each
    /// shard's read lock once and only long enough to copy the raw scan
    /// ranges out. All windowing work (boundary partitioning, cadence and
    /// coverage estimation, buffer assembly) happens after the locks are
    /// released, so detection workers consuming the result never contend
    /// with writers. Per-entry results mirror [`TsdbStore::windows`] exactly,
    /// including `SeriesNotFound` and `EmptyWindow` errors.
    pub fn snapshot_windows(
        &self,
        ids: &[&SeriesId],
        config: &WindowConfig,
        now: Timestamp,
    ) -> Vec<Result<WindowedData>> {
        let (start, end) = snapshot_bounds(config, now);
        let mut copies: Vec<Option<Vec<DataPoint>>> = ids.iter().map(|_| None).collect();
        let mut by_shard: Vec<Vec<usize>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (i, id) in ids.iter().enumerate() {
            by_shard[Self::shard_index(id)].push(i);
        }
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            let shard = shard.read();
            for &i in indices {
                copies[i] = shard
                    .get(ids[i])
                    .map(|series| series.range(start, end).unwrap_or(&[]).to_vec());
            }
        }
        ids.iter()
            .zip(copies)
            .map(|(id, copy)| match copy {
                None => Err(TsdbError::SeriesNotFound(id.metric_id())),
                Some(points) => windows_from_points(&points, config, now),
            })
            .collect()
    }

    /// Captures what changed in a batch of series since previously observed
    /// versions, copying only appended tails for append-only mutations. Like
    /// [`TsdbStore::snapshot_windows`], each shard's read lock is held once,
    /// for the duration of the raw point copies only.
    ///
    /// `known[i]` is the version of `ids[i]` from the caller's last
    /// observation (`None` for a first observation). Entries beyond
    /// `known.len()` are treated as first observations.
    pub fn snapshot_deltas(
        &self,
        ids: &[&SeriesId],
        known: &[Option<SeriesVersion>],
        config: &WindowConfig,
        now: Timestamp,
    ) -> Vec<SeriesDelta> {
        let (start, _) = snapshot_bounds(config, now);
        let mut deltas: Vec<SeriesDelta> = ids.iter().map(|_| SeriesDelta::Missing).collect();
        let mut by_shard: Vec<Vec<usize>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (i, id) in ids.iter().enumerate() {
            by_shard[Self::shard_index(id)].push(i);
        }
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            let shard = shard.read();
            for &i in indices {
                let Some(series) = shard.get(ids[i]) else {
                    continue; // Stays `Missing`.
                };
                let current = SeriesVersion {
                    version: series.version(),
                    appended: series.appended(),
                };
                deltas[i] = match known.get(i).copied().flatten() {
                    Some(k) if k.version == current.version => {
                        SeriesDelta::Unchanged { version: current }
                    }
                    // Append-only since `k`: every mutation bumped both
                    // counters by one, so the deltas agree and equal the
                    // number of new tail points.
                    Some(k)
                        if current.version.wrapping_sub(k.version)
                            == current.appended.wrapping_sub(k.appended)
                            && current.appended.wrapping_sub(k.appended)
                                <= series.len() as u64 =>
                    {
                        let new = current.appended.wrapping_sub(k.appended) as usize;
                        SeriesDelta::Appended {
                            version: current,
                            tail: series.points()[series.len() - new..].to_vec(),
                        }
                    }
                    _ => SeriesDelta::Reset {
                        version: current,
                        points: series.range(start, Timestamp::MAX).unwrap_or(&[]).to_vec(),
                    },
                };
            }
        }
        deltas
    }

    /// Applies a retention policy: drops points older than `cutoff` in all
    /// series and removes series that become empty. Returns the number of
    /// points removed.
    pub fn expire_before(&self, cutoff: Timestamp) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|_, series| {
                removed += series.expire_before(cutoff);
                !series.is_empty()
            });
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MetricKind;

    fn id(target: &str) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, target)
    }

    #[test]
    fn append_get_roundtrip() {
        let store = TsdbStore::new();
        store.append(&id("a"), 1, 0.5).unwrap();
        store.append(&id("a"), 2, 0.6).unwrap();
        let s = store.get(&id("a")).unwrap();
        assert_eq!(s.values(), vec![0.5, 0.6]);
    }

    #[test]
    fn missing_series_errors() {
        let store = TsdbStore::new();
        assert!(matches!(
            store.get(&id("nope")),
            Err(TsdbError::SeriesNotFound(_))
        ));
    }

    #[test]
    fn series_listing_by_service() {
        let store = TsdbStore::new();
        store
            .append(&SeriesId::new("a", MetricKind::Cpu, ""), 0, 1.0)
            .unwrap();
        store
            .append(&SeriesId::new("b", MetricKind::Cpu, ""), 0, 1.0)
            .unwrap();
        store
            .append(&SeriesId::new("a", MetricKind::Memory, ""), 0, 1.0)
            .unwrap();
        assert_eq!(store.series_count(), 3);
        assert_eq!(store.series_ids_for_service("a").len(), 2);
        assert_eq!(store.series_ids().len(), 3);
    }

    #[test]
    fn windows_through_store() {
        let store = TsdbStore::new();
        for t in 0..200u64 {
            store.append(&id("w"), t, t as f64).unwrap();
        }
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let w = store.windows(&id("w"), &cfg, 150).unwrap();
        assert_eq!(w.historic_len(), 100);
        assert_eq!(w.analysis_len(), 50);
    }

    #[test]
    fn with_series_borrows_without_cloning() {
        let store = TsdbStore::new();
        for t in 0..10u64 {
            store.append(&id("b"), t, t as f64).unwrap();
        }
        let len = store.with_series(&id("b"), |s| s.len()).unwrap();
        assert_eq!(len, 10);
        assert_eq!(store.last_timestamp(&id("b")).unwrap(), Some(9));
        assert!(store.last_timestamp(&id("missing")).is_err());
    }

    #[test]
    fn retention_drops_points_and_empty_series() {
        let store = TsdbStore::new();
        store.append(&id("old"), 10, 1.0).unwrap();
        store.append(&id("new"), 100, 1.0).unwrap();
        let removed = store.expire_before(50);
        assert_eq!(removed, 1);
        assert!(!store.contains(&id("old")));
        assert!(store.contains(&id("new")));
    }

    #[test]
    fn snapshot_windows_matches_per_series_windows() {
        let store = TsdbStore::new();
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 10,
        };
        let mut ids = Vec::new();
        for s in 0..20 {
            let sid = id(&format!("s{s}"));
            for t in 0..200u64 {
                store.append(&sid, t, (t + s) as f64).unwrap();
            }
            ids.push(sid);
        }
        // One id that holds too little data, one that is missing entirely.
        let sparse = id("sparse");
        store.append(&sparse, 190, 1.0).unwrap();
        ids.push(sparse);
        ids.push(id("missing"));
        let now = 200;
        let refs: Vec<&SeriesId> = ids.iter().collect();
        let batch = store.snapshot_windows(&refs, &cfg, now);
        assert_eq!(batch.len(), ids.len());
        for (sid, got) in ids.iter().zip(&batch) {
            let individually = store.windows(sid, &cfg, now);
            assert_eq!(got, &individually, "series {sid:?}");
        }
        assert!(matches!(
            batch[ids.len() - 2],
            Err(TsdbError::EmptyWindow("historic"))
        ));
        assert!(matches!(
            batch[ids.len() - 1],
            Err(TsdbError::SeriesNotFound(_))
        ));
    }

    #[test]
    fn snapshot_deltas_classify_mutations() {
        let store = TsdbStore::new();
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let a = id("a");
        let b = id("b");
        let c = id("c");
        for t in 0..100u64 {
            store.append(&a, t, 1.0).unwrap();
            store.append(&b, t, 2.0).unwrap();
            store.append(&c, t, 3.0).unwrap();
        }
        // First observation: everything is a Reset carrying the scan range.
        let first = store.snapshot_deltas(&[&a, &b, &c], &[], &cfg, 100);
        let mut known = Vec::new();
        for d in &first {
            match d {
                SeriesDelta::Reset { version, points } => {
                    assert!(!points.is_empty());
                    known.push(Some(*version));
                }
                other => panic!("expected Reset, got {other:?}"),
            }
        }
        // a: untouched; b: two appends; c: replaced wholesale with a series
        // of the same length (the counter-collision case replacement must
        // not alias as Unchanged or Appended).
        store.append(&b, 100, 9.0).unwrap();
        store.append(&b, 101, 9.5).unwrap();
        store.insert_series(c.clone(), TimeSeries::from_values(0, 1, &[7.0; 100]));
        let missing = id("missing");
        let ids = [&a, &b, &c, &missing];
        known.push(None);
        let second = store.snapshot_deltas(&ids, &known, &cfg, 102);
        assert!(matches!(second[0], SeriesDelta::Unchanged { .. }));
        match &second[1] {
            SeriesDelta::Appended { tail, .. } => {
                assert_eq!(tail.len(), 2);
                assert_eq!(tail[0].timestamp, 100);
                assert_eq!(tail[1].value, 9.5);
            }
            other => panic!("expected Appended, got {other:?}"),
        }
        assert!(matches!(second[2], SeriesDelta::Reset { .. }));
        assert!(matches!(second[3], SeriesDelta::Missing));

        // Store-wide expiry is a non-append mutation on every touched
        // series: the next delta for `a` must be a Reset.
        let known_a = match second[0] {
            SeriesDelta::Unchanged { version } => Some(version),
            _ => None,
        };
        store.expire_before(5);
        let third = store.snapshot_deltas(&[&a], &[known_a], &cfg, 102);
        assert!(matches!(third[0], SeriesDelta::Reset { .. }));
    }

    #[test]
    fn append_batch_matches_per_point_appends_and_keeps_stride() {
        let per_point = TsdbStore::new();
        let batched = TsdbStore::new();
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let ids: Vec<SeriesId> = (0..5).map(|s| id(&format!("s{s}"))).collect();
        let mut batch = Vec::new();
        for t in 0..50u64 {
            for (s, sid) in ids.iter().enumerate() {
                per_point.append(sid, t, (t + s as u64) as f64).unwrap();
                batch.push((sid.clone(), t, (t + s as u64) as f64));
            }
        }
        let out = batched.append_batch(&batch);
        assert_eq!(out.appended, batch.len());
        assert!(out.rejected.is_empty());
        let refs: Vec<&SeriesId> = ids.iter().collect();
        let first = batched.snapshot_deltas(&refs, &[], &cfg, 50);
        let known: Vec<Option<SeriesVersion>> = first
            .iter()
            .map(|d| match d {
                SeriesDelta::Reset { version, .. } => Some(*version),
                other => panic!("expected Reset, got {other:?}"),
            })
            .collect();
        for (sid, got) in ids.iter().zip(&known) {
            let series = per_point.get(sid).unwrap();
            assert_eq!(batched.get(sid).unwrap().points(), series.points());
            // Same counters as the per-point path: the batch kept the
            // append-only stride.
            assert_eq!(got.unwrap().version, series.version());
            assert_eq!(got.unwrap().appended, series.appended());
        }
        // A follow-up batch is observed as Appended, not Reset.
        let tail: Vec<(SeriesId, u64, f64)> =
            ids.iter().map(|sid| (sid.clone(), 50, 9.0)).collect();
        let out = batched.append_batch(&tail);
        assert_eq!(out.appended, ids.len());
        for (i, d) in batched
            .snapshot_deltas(&refs, &known, &cfg, 51)
            .into_iter()
            .enumerate()
        {
            match d {
                SeriesDelta::Appended { tail, .. } => assert_eq!(tail.len(), 1, "series {i}"),
                other => panic!("series {i}: expected Appended, got {other:?}"),
            }
        }
    }

    #[test]
    fn append_batch_reports_out_of_order_rejects() {
        let store = TsdbStore::new();
        let a = id("a");
        let batch = vec![
            (a.clone(), 10, 1.0),
            (a.clone(), 5, 2.0), // out of order: rejected
            (a.clone(), 10, 3.0), // equal timestamp: allowed
            (a.clone(), 11, 4.0),
        ];
        let out = store.append_batch(&batch);
        assert_eq!(out.appended, 3);
        assert_eq!(out.rejected.len(), 1);
        assert_eq!(out.rejected[0].0, 1);
        assert!(matches!(
            out.rejected[0].1,
            TsdbError::OutOfOrderAppend { last: 10, attempted: 5 }
        ));
        assert_eq!(store.get(&a).unwrap().len(), 3);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let a = id("route");
        assert_eq!(TsdbStore::shard_of(&a), TsdbStore::shard_of(&a.clone()));
        assert!(TsdbStore::shard_of(&a) < TsdbStore::shard_count());
    }

    #[test]
    fn concurrent_appends() {
        let store = TsdbStore::shared();
        let mut handles = Vec::new();
        for worker in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let sid = id(&format!("t{worker}"));
                for t in 0..1000u64 {
                    store.append(&sid, t, t as f64).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.series_count(), 8);
        for worker in 0..8 {
            assert_eq!(store.get(&id(&format!("t{worker}"))).unwrap().len(), 1000);
        }
    }
}
