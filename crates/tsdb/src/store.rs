//! Concurrent store mapping series ids to time series.

use crate::series::TimeSeries;
use crate::types::{SeriesId, Timestamp};
use crate::window::{extract_windows, WindowConfig, WindowedData};
use crate::{Result, TsdbError};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe in-memory time-series store.
///
/// Writers (the fleet simulator's collectors) append samples concurrently
/// with readers (the detection pipeline scanning windows). The store is
/// sharded by series id hash to keep lock contention low.
#[derive(Debug, Default)]
pub struct TsdbStore {
    shards: Vec<RwLock<BTreeMap<SeriesId, TimeSeries>>>,
}

const SHARD_COUNT: usize = 16;

impl TsdbStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TsdbStore {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
        }
    }

    /// Creates a store wrapped in an [`Arc`] for sharing across threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn shard(&self, id: &SeriesId) -> &RwLock<BTreeMap<SeriesId, TimeSeries>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARD_COUNT]
    }

    /// Appends a sample, creating the series on first write.
    pub fn append(&self, id: &SeriesId, timestamp: Timestamp, value: f64) -> Result<()> {
        let mut shard = self.shard(id).write();
        shard
            .entry(id.clone())
            .or_default()
            .append(timestamp, value)
    }

    /// Inserts (or replaces) a whole series.
    pub fn insert_series(&self, id: SeriesId, series: TimeSeries) {
        self.shard(&id).write().insert(id, series);
    }

    /// Returns a clone of the series, or an error if absent.
    pub fn get(&self, id: &SeriesId) -> Result<TimeSeries> {
        self.shard(id)
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))
    }

    /// Runs a closure against a borrowed series under the shard read lock,
    /// avoiding the whole-series clone [`TsdbStore::get`] pays. This is the
    /// read path scans should use: the closure sees `&TimeSeries` in place.
    pub fn with_series<R>(&self, id: &SeriesId, f: impl FnOnce(&TimeSeries) -> R) -> Result<R> {
        let shard = self.shard(id).read();
        let series = shard
            .get(id)
            .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))?;
        Ok(f(series))
    }

    /// Timestamp of the series' newest sample without cloning the series.
    pub fn last_timestamp(&self, id: &SeriesId) -> Result<Option<Timestamp>> {
        self.with_series(id, |s| s.last_timestamp())
    }

    /// Whether a series exists.
    pub fn contains(&self, id: &SeriesId) -> bool {
        self.shard(id).read().contains_key(id)
    }

    /// All series ids, sorted.
    pub fn series_ids(&self) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Series ids belonging to one service, sorted.
    pub fn series_ids_for_service(&self, service: &str) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .keys()
                    .filter(|id| id.service == service)
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }

    /// Number of stored series.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Extracts detection windows for one series at scan time `now`.
    pub fn windows(
        &self,
        id: &SeriesId,
        config: &WindowConfig,
        now: Timestamp,
    ) -> Result<WindowedData> {
        let shard = self.shard(id).read();
        let series = shard
            .get(id)
            .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))?;
        extract_windows(series, config, now)
    }

    /// Applies a retention policy: drops points older than `cutoff` in all
    /// series and removes series that become empty. Returns the number of
    /// points removed.
    pub fn expire_before(&self, cutoff: Timestamp) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|_, series| {
                removed += series.expire_before(cutoff);
                !series.is_empty()
            });
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MetricKind;

    fn id(target: &str) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, target)
    }

    #[test]
    fn append_get_roundtrip() {
        let store = TsdbStore::new();
        store.append(&id("a"), 1, 0.5).unwrap();
        store.append(&id("a"), 2, 0.6).unwrap();
        let s = store.get(&id("a")).unwrap();
        assert_eq!(s.values(), vec![0.5, 0.6]);
    }

    #[test]
    fn missing_series_errors() {
        let store = TsdbStore::new();
        assert!(matches!(
            store.get(&id("nope")),
            Err(TsdbError::SeriesNotFound(_))
        ));
    }

    #[test]
    fn series_listing_by_service() {
        let store = TsdbStore::new();
        store
            .append(&SeriesId::new("a", MetricKind::Cpu, ""), 0, 1.0)
            .unwrap();
        store
            .append(&SeriesId::new("b", MetricKind::Cpu, ""), 0, 1.0)
            .unwrap();
        store
            .append(&SeriesId::new("a", MetricKind::Memory, ""), 0, 1.0)
            .unwrap();
        assert_eq!(store.series_count(), 3);
        assert_eq!(store.series_ids_for_service("a").len(), 2);
        assert_eq!(store.series_ids().len(), 3);
    }

    #[test]
    fn windows_through_store() {
        let store = TsdbStore::new();
        for t in 0..200u64 {
            store.append(&id("w"), t, t as f64).unwrap();
        }
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let w = store.windows(&id("w"), &cfg, 150).unwrap();
        assert_eq!(w.historic_len(), 100);
        assert_eq!(w.analysis_len(), 50);
    }

    #[test]
    fn with_series_borrows_without_cloning() {
        let store = TsdbStore::new();
        for t in 0..10u64 {
            store.append(&id("b"), t, t as f64).unwrap();
        }
        let len = store.with_series(&id("b"), |s| s.len()).unwrap();
        assert_eq!(len, 10);
        assert_eq!(store.last_timestamp(&id("b")).unwrap(), Some(9));
        assert!(store.last_timestamp(&id("missing")).is_err());
    }

    #[test]
    fn retention_drops_points_and_empty_series() {
        let store = TsdbStore::new();
        store.append(&id("old"), 10, 1.0).unwrap();
        store.append(&id("new"), 100, 1.0).unwrap();
        let removed = store.expire_before(50);
        assert_eq!(removed, 1);
        assert!(!store.contains(&id("old")));
        assert!(store.contains(&id("new")));
    }

    #[test]
    fn concurrent_appends() {
        let store = TsdbStore::shared();
        let mut handles = Vec::new();
        for worker in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let sid = id(&format!("t{worker}"));
                for t in 0..1000u64 {
                    store.append(&sid, t, t as f64).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.series_count(), 8);
        for worker in 0..8 {
            assert_eq!(store.get(&id(&format!("t{worker}"))).unwrap().len(), 1000);
        }
    }
}
