//! Concurrent store mapping series ids to time series.

use crate::block::SealedBlock;
use crate::scratch::ScratchPoints;
use crate::series::{SummaryBounds, TimeSeries};
use crate::types::{DataPoint, SeriesId, Timestamp};
use crate::window::{
    extract_windows, snapshot_bounds, windows_from_points, WindowConfig, WindowedData,
};
use crate::{Result, TsdbError};
use fbd_sync::{LockDomain, OrderedRwLock};
// fbd-lint::allow(hash-order): HashMap backs the decode cache, which is only
// probed by key; iteration never happens, so order cannot reach any output.
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time observation of a series' mutation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesVersion {
    /// Counter advanced by every mutation.
    pub version: u64,
    /// Counter advanced only by appends.
    pub appended: u64,
}

/// What changed in one series since a previously observed [`SeriesVersion`],
/// as captured by [`TsdbStore::snapshot_deltas`] under one short shard lock.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesDelta {
    /// The series does not exist (or no longer exists).
    Missing,
    /// No mutation since the known version: nothing was copied.
    Unchanged {
        /// The (unchanged) counters at snapshot time.
        version: SeriesVersion,
    },
    /// Only appends happened since the known version; `tail` holds exactly
    /// the newly appended points, oldest first.
    Appended {
        /// Counters at snapshot time.
        version: SeriesVersion,
        /// The points appended since the known version, in a recycled
        /// [`ScratchPoints`] buffer (dropping it returns the capacity to
        /// the per-thread pool).
        tail: ScratchPoints,
    },
    /// Anything else (expiry, replacement, first observation): `points`
    /// holds everything from the scan range start onward — including points
    /// timestamped at or after `now` (ingestion running ahead of the scan
    /// watermark) — so a consumer that extends the copy with later
    /// [`SeriesDelta::Appended`] tails never develops a gap.
    Reset {
        /// Counters at snapshot time.
        version: SeriesVersion,
        /// All points from `snapshot_bounds(config, now).0` onward, in a
        /// recycled [`ScratchPoints`] buffer.
        points: ScratchPoints,
    },
}

/// What happened to each point of a [`TsdbStore::append_batch`] call.
#[derive(Debug, Default)]
pub struct BatchAppendOutcome {
    /// Points successfully appended.
    pub appended: usize,
    /// Points the store refused, as `(index into the input batch, error)`.
    pub rejected: Vec<(usize, TsdbError)>,
}

/// Storage policy for a [`TsdbStore`]: how aggressively series compress
/// their history and how much memory each shard may hold.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Head size (points) at which each series seals a compressed block.
    /// 0 keeps every series as a plain uncompressed vector — the default,
    /// matching the pre-compression representation exactly.
    pub seal_limit: u32,
    /// Optional per-shard resident-byte budget. When a shard exceeds it,
    /// the store evicts whole sealed blocks — oldest block first (by the
    /// block's first timestamp, ties broken by series id) — until the
    /// shard fits. Mutable heads are never evicted, so recent data always
    /// survives. `None` disables enforcement.
    pub shard_budget_bytes: Option<usize>,
    /// Per-shard byte budget for the decoded-block cache (16 bytes per
    /// cached point); 0 disables caching entirely. The cache serves repeat
    /// decodes on the read paths that revisit the same sealed blocks —
    /// per-series window extraction and delta-snapshot tail/reset copies —
    /// and is accounted separately from `shard_budget_bytes`
    /// (`ShardStats::decode_cache_bytes`): it is a read accelerator, not
    /// stored data, and evicting it never loses points.
    pub decode_cache_bytes: usize,
}

impl StoreConfig {
    /// Seal limit used by [`StoreConfig::compressed`]: small enough that a
    /// paper-shaped 900-point series packs into several blocks (so expiry
    /// and eviction have useful granularity), large enough that Gorilla's
    /// delta-of-delta and XOR windows amortize the 16-byte first sample.
    pub const DEFAULT_SEAL_LIMIT: u32 = 128;

    /// Decoded-block cache budget [`StoreConfig::compressed`] enables per
    /// shard: 2 MiB holds ~1,000 decoded 128-point blocks, enough that a
    /// paper-shaped 2,000-series suite's scan range stays fully decoded
    /// across one store's 16 shards.
    pub const DEFAULT_DECODE_CACHE_BYTES: usize = 2 * 1024 * 1024;

    /// Gorilla compression on, no memory budget, decode cache enabled.
    pub fn compressed() -> Self {
        StoreConfig {
            seal_limit: Self::DEFAULT_SEAL_LIMIT,
            shard_budget_bytes: None,
            decode_cache_bytes: Self::DEFAULT_DECODE_CACHE_BYTES,
        }
    }

    /// This config with a per-shard resident-byte budget.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.shard_budget_bytes = Some(bytes);
        self
    }
}

/// Memory and eviction accounting for one shard, captured by
/// [`TsdbStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Series stored in the shard.
    pub series: usize,
    /// Total points across those series.
    pub points: usize,
    /// Resident bytes under the accounting model of
    /// [`TimeSeries::resident_bytes`]: 16 bytes per head point plus
    /// compressed payload bytes.
    pub resident_bytes: usize,
    /// Compressed payload bytes (subset of `resident_bytes`).
    pub sealed_bytes: usize,
    /// Sealed blocks across the shard.
    pub sealed_blocks: usize,
    /// Uncompressed head points across the shard.
    pub head_points: usize,
    /// Blocks dropped by budget enforcement since the store was created.
    pub evicted_blocks: u64,
    /// Points dropped by budget enforcement since the store was created.
    pub evicted_points: u64,
    /// Bytes of decoded points currently held by the shard's decode cache
    /// (16 per point; accounted separately from `resident_bytes`).
    pub decode_cache_bytes: usize,
    /// Cached-path block reads served without decoding.
    pub decode_cache_hits: u64,
    /// Cached-path block reads that had to decode (and then cached).
    pub decode_cache_misses: u64,
    /// Cache entries dropped to fit the decode-cache budget.
    pub decode_cache_evictions: u64,
}

/// Store-wide storage statistics: one [`ShardStats`] per shard plus
/// aggregate accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Per-shard breakdown, indexed by shard number.
    pub shards: Vec<ShardStats>,
    /// Sealed blocks decoded on read paths that bypass the decode cache
    /// (batch snapshots, and all reads when the cache is disabled),
    /// counted from summaries without touching the payloads.
    pub direct_blocks_decoded: u64,
}

impl StoreStats {
    /// Total series stored.
    pub fn series(&self) -> usize {
        self.shards.iter().map(|s| s.series).sum()
    }

    /// Total points stored.
    pub fn points(&self) -> usize {
        self.shards.iter().map(|s| s.points).sum()
    }

    /// Total resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.resident_bytes).sum()
    }

    /// Total compressed payload bytes.
    pub fn sealed_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.sealed_bytes).sum()
    }

    /// Total sealed blocks.
    pub fn sealed_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.sealed_blocks).sum()
    }

    /// Total uncompressed head points.
    pub fn head_points(&self) -> usize {
        self.shards.iter().map(|s| s.head_points).sum()
    }

    /// Total blocks dropped by budget enforcement.
    pub fn evicted_blocks(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted_blocks).sum()
    }

    /// Total points dropped by budget enforcement.
    pub fn evicted_points(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted_points).sum()
    }

    /// Total sealed blocks decoded anywhere in the store: cache misses
    /// plus direct (uncached-path) decodes.
    pub fn blocks_decoded(&self) -> u64 {
        self.direct_blocks_decoded + self.shards.iter().map(|s| s.decode_cache_misses).sum::<u64>()
    }

    /// Total decoded-block cache hits.
    pub fn decode_cache_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.decode_cache_hits).sum()
    }

    /// Total decoded-block cache entries evicted to fit the cache budget.
    pub fn decode_cache_evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.decode_cache_evictions).sum()
    }

    /// Total bytes currently held by the decode caches (outside
    /// [`StoreStats::resident_bytes`]).
    pub fn decode_cache_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.decode_cache_bytes).sum()
    }

    /// Resident bytes per stored point (0 when empty) — the headline
    /// compression number (16.0 for a fully uncompressed store).
    pub fn bytes_per_point(&self) -> f64 {
        let points = self.points();
        if points == 0 {
            0.0
        } else {
            self.resident_bytes() as f64 / points as f64
        }
    }

    /// Largest single-shard resident footprint — what a per-shard budget
    /// is checked against.
    pub fn max_shard_resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.resident_bytes).max().unwrap_or(0)
    }
}

/// Shard-local cache of fully decoded sealed blocks, keyed by the block's
/// process-unique seal sequence number ([`SealedBlock::seq`]) — never by
/// payload identity, so a re-encoded or replaced block can never alias a
/// stale entry. Overlapping window reads and consecutive rounds' tail
/// reads of one series decode each block once; later reads memcpy.
///
/// Eviction is FIFO in insertion order with exact byte accounting (16 per
/// cached point): entries are popped until the incoming block fits. One
/// lone entry larger than the whole budget is admitted anyway (it will be
/// the first popped on the next insert) — refusing it would make a small
/// budget silently disable caching. Invalidation is precise where cheap
/// (budget eviction removes the victim's entry) and wholesale where not
/// (`expire_before` clears the shard's cache); stale entries for dropped
/// blocks are otherwise harmless — their seq is never reissued — and the
/// FIFO cycles them out.
#[derive(Debug, Default)]
struct DecodeCache {
    /// Decoded points by block seq. Probed by key only — eviction order
    /// comes from `queue`, never from map iteration.
    // fbd-lint::allow(hash-order): keyed lookups only; never iterated
    entries: HashMap<u64, Vec<DataPoint>>,
    /// Insertion-ordered seqs; may lag `entries` after precise removals
    /// (missing seqs are skipped at pop time).
    queue: VecDeque<u64>,
    resident_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DecodeCache {
    /// The decoded points of `block`, decoding and caching on miss.
    fn block_points(&mut self, block: &SealedBlock, budget: usize) -> &[DataPoint] {
        let seq = block.seq();
        if self.entries.contains_key(&seq) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let decoded = block.to_points();
            let incoming = decoded.len() * std::mem::size_of::<DataPoint>();
            while !self.entries.is_empty() && self.resident_bytes + incoming > budget {
                let Some(old) = self.queue.pop_front() else {
                    break;
                };
                if let Some(points) = self.entries.remove(&old) {
                    self.resident_bytes -= points.len() * std::mem::size_of::<DataPoint>();
                    self.evictions += 1;
                }
            }
            self.resident_bytes += incoming;
            self.queue.push_back(seq);
            self.entries.insert(seq, decoded);
        }
        self.entries.get(&seq).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Drops one block's entry (budget eviction invalidation). Its queue
    /// slot stays and is skipped when popped.
    fn remove(&mut self, seq: u64) {
        if let Some(points) = self.entries.remove(&seq) {
            self.resident_bytes -= points.len() * std::mem::size_of::<DataPoint>();
        }
    }

    /// Drops every entry (wholesale invalidation after expiry re-encoded
    /// an unknown set of blocks). Counters are kept — they are lifetime
    /// totals.
    fn clear(&mut self) {
        self.entries.clear();
        self.queue.clear();
        self.resident_bytes = 0;
    }
}

/// Appends the last `n` points of `series` to a fresh scratch buffer via
/// the decode cache — bit-identical to [`TimeSeries::tail_scratch`], which
/// decodes the same walk-back block run directly.
fn tail_via_cache(
    series: &TimeSeries,
    decode: &mut DecodeCache,
    budget: usize,
    n: usize,
) -> ScratchPoints {
    let n = n.min(series.len());
    let head = series.head();
    let mut out = ScratchPoints::with_capacity(n);
    if n <= head.len() {
        out.extend_from_slice(&head[head.len() - n..]);
        return out;
    }
    let needed = n - head.len();
    let sealed = series.sealed_blocks();
    let mut start_block = sealed.len();
    let mut covered = 0usize;
    while start_block > 0 && covered < needed {
        start_block -= 1;
        covered += sealed[start_block].count() as usize;
    }
    // The first `covered - needed` decoded points precede the tail.
    let mut skip = covered - needed;
    for block in &sealed[start_block..] {
        let decoded = decode.block_points(block, budget);
        if skip >= decoded.len() {
            skip -= decoded.len();
            continue;
        }
        out.extend_from_slice(&decoded[skip..]);
        skip = 0;
    }
    out.extend_from_slice(head);
    out
}

/// Appends the points of `series` in `[start, end)` to a fresh scratch
/// buffer via the decode cache — bit-identical to
/// [`TimeSeries::range_into`]: same block skip/break rules, and slicing a
/// sorted decoded block by `partition_point` selects exactly the points
/// its `skip_while`/`take_while` straddler walk would.
fn range_via_cache(
    series: &TimeSeries,
    decode: &mut DecodeCache,
    budget: usize,
    start: Timestamp,
    end: Timestamp,
) -> ScratchPoints {
    let mut out = ScratchPoints::with_capacity(0);
    if start >= end {
        return out;
    }
    for block in series.sealed_blocks() {
        if block.last_timestamp() < start || block.is_empty() {
            continue;
        }
        if block.first_timestamp() >= end {
            break;
        }
        let decoded = decode.block_points(block, budget);
        let lo = decoded.partition_point(|p| p.timestamp < start);
        let hi = decoded.partition_point(|p| p.timestamp < end);
        out.extend_from_slice(&decoded[lo..hi]);
    }
    let head = series.head();
    let lo = head.partition_point(|p| p.timestamp < start);
    let hi = head.partition_point(|p| p.timestamp < end);
    out.extend_from_slice(&head[lo..hi]);
    out
}

/// Classifies one series against a previously observed version and copies
/// the minimal point set — the per-series body of
/// [`TsdbStore::snapshot_deltas`]. Sealed-block decodes route through the
/// shard's cache when one is passed; otherwise they are counted (from
/// summaries, without decoding anything extra) into `direct`.
fn classify_delta(
    series: &TimeSeries,
    known: Option<SeriesVersion>,
    start: Timestamp,
    mut cache: Option<(&mut DecodeCache, usize)>,
    direct: &mut u64,
) -> SeriesDelta {
    let current = SeriesVersion {
        version: series.version(),
        appended: series.appended(),
    };
    match known {
        Some(k) if k.version == current.version => SeriesDelta::Unchanged { version: current },
        // Append-only since `k`: every mutation bumped both counters by
        // one, so the deltas agree and equal the number of new tail points.
        Some(k)
            if current.version.wrapping_sub(k.version)
                == current.appended.wrapping_sub(k.appended)
                && current.appended.wrapping_sub(k.appended) <= series.len() as u64 =>
        {
            let new = current.appended.wrapping_sub(k.appended) as usize;
            let tail = match cache.as_mut() {
                Some((decode, budget)) => tail_via_cache(series, decode, *budget, new),
                None => {
                    *direct += series.tail_block_count(new);
                    series.tail_scratch(new)
                }
            };
            SeriesDelta::Appended { version: current, tail }
        }
        _ => {
            let points = match cache.as_mut() {
                Some((decode, budget)) => {
                    range_via_cache(series, decode, *budget, start, Timestamp::MAX)
                }
                None => {
                    *direct += series.overlapping_block_count(start, Timestamp::MAX);
                    series.range_scratch(start, Timestamp::MAX)
                }
            };
            SeriesDelta::Reset {
                version: current,
                points,
            }
        }
    }
}

/// One lock domain: the series map plus its memory accounting. The
/// resident counter is maintained incrementally (signed before/after delta
/// around every mutation — sealing can *shrink* a series mid-append) so
/// budget checks are O(1), not a walk of the map.
#[derive(Debug, Default)]
struct Shard {
    map: BTreeMap<SeriesId, TimeSeries>,
    resident_bytes: usize,
    evicted_blocks: u64,
    evicted_points: u64,
    decode: DecodeCache,
}

impl Shard {
    /// Folds a series' resident-byte change into the shard counter.
    fn track(&mut self, before: usize, after: usize) {
        self.resident_bytes = (self.resident_bytes + after).saturating_sub(before);
    }
}

/// A thread-safe in-memory time-series store.
///
/// Writers (the fleet simulator's collectors) append samples concurrently
/// with readers (the detection pipeline scanning windows). The store is
/// sharded by series id hash to keep lock contention low; each shard also
/// tracks its resident bytes so an optional [`StoreConfig`] budget can be
/// enforced without scanning.
#[derive(Debug)]
pub struct TsdbStore {
    /// Ranked `store-shard` in `LOCK_ORDER.manifest`: acquired under an
    /// engine-shard guard by the streaming round driver, never the other
    /// way around.
    shards: Vec<OrderedRwLock<Shard>>,
    config: StoreConfig,
    /// Sealed blocks decoded by read paths that bypass the decode cache —
    /// counted from summaries ([`TimeSeries::overlapping_block_count`] /
    /// [`TimeSeries::tail_block_count`]) so the tally itself never decodes.
    direct_blocks_decoded: AtomicU64,
}

const SHARD_COUNT: usize = 16;

impl Default for TsdbStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TsdbStore {
    /// Creates an empty store with the default (uncompressed) config.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// Creates an empty store with an explicit storage policy.
    pub fn with_config(config: StoreConfig) -> Self {
        TsdbStore {
            shards: (0..SHARD_COUNT)
                .map(|_| OrderedRwLock::new(LockDomain::StoreShard, Shard::default()))
                .collect(),
            config,
            direct_blocks_decoded: AtomicU64::new(0),
        }
    }

    /// Creates an empty store with Gorilla compression enabled.
    pub fn compressed() -> Self {
        Self::with_config(StoreConfig::compressed())
    }

    /// Creates a store wrapped in an [`Arc`] for sharing across threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Creates a shared store with an explicit storage policy.
    pub fn shared_with_config(config: StoreConfig) -> Arc<Self> {
        Arc::new(Self::with_config(config))
    }

    /// The storage policy this store was created with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    fn shard_index(id: &SeriesId) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    /// Number of shards the store partitions series across.
    pub const fn shard_count() -> usize {
        SHARD_COUNT
    }

    /// The shard a series id routes to. Stable across processes
    /// (`DefaultHasher` with fixed keys), so external writers — the
    /// ingestion pipeline's shard-append workers and the shard-per-core
    /// round driver — can partition work to match the store's own locking
    /// granularity.
    pub fn shard_of(id: &SeriesId) -> usize {
        Self::shard_index(id)
    }

    fn shard(&self, id: &SeriesId) -> &OrderedRwLock<Shard> {
        &self.shards[Self::shard_index(id)]
    }

    fn new_series(&self) -> TimeSeries {
        TimeSeries::with_seal_limit(self.config.seal_limit)
    }

    /// Evicts whole sealed blocks — oldest first — until the shard fits
    /// its budget. Deterministic: the victim is the minimum (front-block
    /// first timestamp, series id) pair, independent of map iteration
    /// incidentals (BTreeMap order is already id order). Heads are never
    /// touched; if nothing sealed remains the shard is allowed to exceed
    /// the budget rather than lose unsealed recent data.
    fn enforce_budget(&self, shard: &mut Shard) {
        let Some(budget) = self.config.shard_budget_bytes else {
            return;
        };
        while shard.resident_bytes > budget {
            let victim = shard
                .map
                .iter()
                .filter_map(|(id, s)| s.front_sealed_first_timestamp().map(|ts| (ts, id.clone())))
                .min();
            let Some((_, id)) = victim else {
                break;
            };
            let Some(series) = shard.map.get_mut(&id) else {
                break;
            };
            // Invalidate the victim's cache entry before the block is gone.
            let front_seq = series.sealed_blocks().first().map(SealedBlock::seq);
            let Some((points, bytes)) = series.evict_front_block() else {
                break;
            };
            if let Some(seq) = front_seq {
                shard.decode.remove(seq);
            }
            shard.resident_bytes = shard.resident_bytes.saturating_sub(bytes);
            shard.evicted_blocks += 1;
            shard.evicted_points += points as u64;
        }
    }

    /// Appends a sample, creating the series on first write.
    pub fn append(&self, id: &SeriesId, timestamp: Timestamp, value: f64) -> Result<()> {
        let mut guard = self.shard(id).write();
        let shard = &mut *guard;
        let series = shard.map.entry(id.clone()).or_insert_with(|| self.new_series());
        let before = series.resident_bytes();
        let result = series.append(timestamp, value);
        let after = series.resident_bytes();
        shard.track(before, after);
        self.enforce_budget(shard);
        result
    }

    /// Appends a batch of samples, acquiring each touched shard's write
    /// lock once instead of once per point. Points are grouped by shard
    /// in input order, and within a shard each point goes through the
    /// ordinary per-point [`TimeSeries::append`] — so the series' version
    /// and appended counters keep their lockstep stride and delta
    /// snapshots still classify the mutation as append-only.
    ///
    /// Per-point failures (out-of-order timestamps) do not abort the
    /// batch: the point is skipped and reported in
    /// [`BatchAppendOutcome::rejected`] with its index into `points`.
    pub fn append_batch(&self, points: &[(SeriesId, Timestamp, f64)]) -> BatchAppendOutcome {
        let mut outcome = BatchAppendOutcome::default();
        let mut by_shard: Vec<Vec<usize>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (i, (id, _, _)) in points.iter().enumerate() {
            by_shard[Self::shard_index(id)].push(i);
        }
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            let mut guard = shard.write();
            let shard = &mut *guard;
            for &i in indices {
                let (id, timestamp, value) = &points[i];
                let series = shard.map.entry(id.clone()).or_insert_with(|| self.new_series());
                let before = series.resident_bytes();
                let result = series.append(*timestamp, *value);
                let after = series.resident_bytes();
                shard.track(before, after);
                match result {
                    Ok(()) => outcome.appended += 1,
                    Err(e) => outcome.rejected.push((i, e)),
                }
            }
            self.enforce_budget(shard);
        }
        outcome
    }

    /// Inserts (or replaces) a whole series, re-packing it to this store's
    /// seal limit. Replacement advances the new series' version past the
    /// old lineage so delta snapshots observe it as a reset, never as an
    /// append-only change.
    pub fn insert_series(&self, id: SeriesId, mut series: TimeSeries) {
        series.set_seal_limit(self.config.seal_limit);
        let mut guard = self.shard(&id).write();
        let shard = &mut *guard;
        if let Some(old) = shard.map.get(&id) {
            series.mark_replacement_of(old.version());
            shard.resident_bytes = shard.resident_bytes.saturating_sub(old.resident_bytes());
        }
        shard.resident_bytes += series.resident_bytes();
        shard.map.insert(id, series);
        self.enforce_budget(shard);
    }

    /// Returns a clone of the series, or an error if absent.
    pub fn get(&self, id: &SeriesId) -> Result<TimeSeries> {
        let shard = self.shard(id).read();
        shard.map.get(id).cloned().ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))
    }

    /// Runs a closure against a borrowed series under the shard read lock,
    /// avoiding the whole-series clone [`TsdbStore::get`] pays. This is the
    /// read path scans should use: the closure sees `&TimeSeries` in place.
    pub fn with_series<R>(&self, id: &SeriesId, f: impl FnOnce(&TimeSeries) -> R) -> Result<R> {
        let shard = self.shard(id).read();
        let series = shard
            .map
            .get(id)
            .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))?;
        Ok(f(series))
    }

    /// Timestamp of the series' newest sample without cloning the series.
    pub fn last_timestamp(&self, id: &SeriesId) -> Result<Option<Timestamp>> {
        self.with_series(id, |s| s.last_timestamp())
    }

    /// Zero-decode probe of one series' scan range: conservative count,
    /// value, NaN, and cadence bounds assembled from seal-time block
    /// summaries plus the uncompressed head, under the shard read lock —
    /// no payload is touched. The bounds enclose what a decode of
    /// `snapshot_bounds(config, now)` would observe, so prefilters (flat
    /// series, coverage floors, Level C's `sliding_mean_bounds` inputs)
    /// can clear a series without waking the decoder.
    pub fn summary_probe(
        &self,
        id: &SeriesId,
        config: &WindowConfig,
        now: Timestamp,
    ) -> Result<SummaryBounds> {
        let (start, end) = snapshot_bounds(config, now);
        self.with_series(id, |s| s.summary_bounds(start, end))
    }

    /// Whether a series exists.
    pub fn contains(&self, id: &SeriesId) -> bool {
        self.shard(id).read().map.contains_key(id)
    }

    /// All series ids, sorted.
    pub fn series_ids(&self) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().map.keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Series ids belonging to one service, sorted.
    pub fn series_ids_for_service(&self, service: &str) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let shard = shard.read();
                shard
                    .map
                    .keys()
                    .filter(|id| id.service == service)
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort();
        ids
    }

    /// Number of stored series.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().map.len()).sum()
    }

    /// Storage statistics, one entry per shard. The walk recomputes the
    /// point/block tallies under each shard's read lock; `resident_bytes`
    /// comes from the incrementally maintained counter the budget checks
    /// use, so tests can cross-check the two models agree.
    pub fn stats(&self) -> StoreStats {
        let shards = self
            .shards
            .iter()
            .map(|shard| {
                let shard = shard.read();
                let mut out = ShardStats {
                    series: shard.map.len(),
                    resident_bytes: shard.resident_bytes,
                    evicted_blocks: shard.evicted_blocks,
                    evicted_points: shard.evicted_points,
                    decode_cache_bytes: shard.decode.resident_bytes,
                    decode_cache_hits: shard.decode.hits,
                    decode_cache_misses: shard.decode.misses,
                    decode_cache_evictions: shard.decode.evictions,
                    ..ShardStats::default()
                };
                for series in shard.map.values() {
                    out.points += series.len();
                    out.sealed_bytes += series.sealed_bytes();
                    out.sealed_blocks += series.sealed_block_count();
                    out.head_points += series.head_len();
                }
                out
            })
            .collect();
        StoreStats {
            shards,
            direct_blocks_decoded: self.direct_blocks_decoded.load(Ordering::Relaxed),
        }
    }

    /// Extracts detection windows for one series at scan time `now`.
    ///
    /// With a decode cache configured, the scan range's sealed blocks are
    /// served from (and retained in) the shard's cache under a short write
    /// lock, so the overlapping windows of successive scans of one series
    /// decode each block once; the result is bit-identical to the uncached
    /// path. Batch scans should prefer [`TsdbStore::snapshot_windows`],
    /// which stays on read locks.
    pub fn windows(
        &self,
        id: &SeriesId,
        config: &WindowConfig,
        now: Timestamp,
    ) -> Result<WindowedData> {
        let budget = self.config.decode_cache_bytes;
        if budget > 0 {
            let (start, end) = snapshot_bounds(config, now);
            let mut guard = self.shard(id).write();
            let Shard { map, decode, .. } = &mut *guard;
            let series = map
                .get(id)
                .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))?;
            if series.sealed_block_count() == 0 {
                return extract_windows(series, config, now);
            }
            let points = range_via_cache(series, decode, budget, start, end);
            drop(guard);
            return windows_from_points(&points, config, now);
        }
        let shard = self.shard(id).read();
        let series = shard
            .map
            .get(id)
            .ok_or_else(|| TsdbError::SeriesNotFound(id.metric_id()))?;
        let (start, end) = snapshot_bounds(config, now);
        let decoded = series.overlapping_block_count(start, end);
        if decoded > 0 {
            self.direct_blocks_decoded.fetch_add(decoded, Ordering::Relaxed);
        }
        extract_windows(series, config, now)
    }

    /// Extracts detection windows for a whole batch of series, holding each
    /// shard's lock once and only long enough to copy the raw scan ranges
    /// out — in read mode normally, in write mode when a decode cache is
    /// configured, so a round's batch scan decodes each sealed block once
    /// and serves repeat reads (later rounds, overlapping windows) from the
    /// cache. All windowing work (boundary partitioning, cadence and
    /// coverage estimation, buffer assembly) happens after the locks are
    /// released, so detection workers consuming the result never contend
    /// with writers. Per-entry results mirror [`TsdbStore::windows`] exactly,
    /// including `SeriesNotFound` and `EmptyWindow` errors.
    pub fn snapshot_windows(
        &self,
        ids: &[&SeriesId],
        config: &WindowConfig,
        now: Timestamp,
    ) -> Vec<Result<WindowedData>> {
        let (start, end) = snapshot_bounds(config, now);
        let budget = self.config.decode_cache_bytes;
        let mut copies: Vec<Option<Vec<DataPoint>>> = ids.iter().map(|_| None).collect();
        let mut by_shard: Vec<Vec<usize>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (i, id) in ids.iter().enumerate() {
            by_shard[Self::shard_index(id)].push(i);
        }
        let mut decoded = 0u64;
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            if budget > 0 {
                let mut guard = shard.write();
                let Shard { map, decode, .. } = &mut *guard;
                for &i in indices {
                    copies[i] = map
                        .get(ids[i])
                        .map(|series| range_via_cache(series, decode, budget, start, end).to_vec());
                }
            } else {
                let shard = shard.read();
                for &i in indices {
                    copies[i] = shard.map.get(ids[i]).map(|series| {
                        decoded += series.overlapping_block_count(start, end);
                        series.range_to_vec(start, end)
                    });
                }
            }
        }
        if decoded > 0 {
            self.direct_blocks_decoded.fetch_add(decoded, Ordering::Relaxed);
        }
        ids.iter()
            .zip(copies)
            .map(|(id, copy)| match copy {
                None => Err(TsdbError::SeriesNotFound(id.metric_id())),
                Some(points) => windows_from_points(&points, config, now),
            })
            .collect()
    }

    /// Captures what changed in a batch of series since previously observed
    /// versions, copying only appended tails for append-only mutations. Each
    /// shard's lock is held once, for the duration of the raw point copies
    /// only — in read mode normally, in write mode when a decode cache is
    /// configured (tail copies that cross a fresh seal, and reset copies,
    /// then serve repeat decodes of the same blocks from the cache; the
    /// copied points are bit-identical either way).
    ///
    /// `known[i]` is the version of `ids[i]` from the caller's last
    /// observation (`None` for a first observation). Entries beyond
    /// `known.len()` are treated as first observations.
    pub fn snapshot_deltas(
        &self,
        ids: &[&SeriesId],
        known: &[Option<SeriesVersion>],
        config: &WindowConfig,
        now: Timestamp,
    ) -> Vec<SeriesDelta> {
        let (start, _) = snapshot_bounds(config, now);
        let budget = self.config.decode_cache_bytes;
        let mut deltas: Vec<SeriesDelta> = ids.iter().map(|_| SeriesDelta::Missing).collect();
        let mut by_shard: Vec<Vec<usize>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        for (i, id) in ids.iter().enumerate() {
            by_shard[Self::shard_index(id)].push(i);
        }
        let mut direct = 0u64;
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            if budget > 0 {
                let mut guard = shard.write();
                let Shard { map, decode, .. } = &mut *guard;
                for &i in indices {
                    let Some(series) = map.get(ids[i]) else {
                        continue; // Stays `Missing`.
                    };
                    deltas[i] = classify_delta(
                        series,
                        known.get(i).copied().flatten(),
                        start,
                        Some((&mut *decode, budget)),
                        &mut direct,
                    );
                }
            } else {
                let shard = shard.read();
                for &i in indices {
                    let Some(series) = shard.map.get(ids[i]) else {
                        continue; // Stays `Missing`.
                    };
                    deltas[i] = classify_delta(
                        series,
                        known.get(i).copied().flatten(),
                        start,
                        None,
                        &mut direct,
                    );
                }
            }
        }
        if direct > 0 {
            self.direct_blocks_decoded.fetch_add(direct, Ordering::Relaxed);
        }
        deltas
    }

    /// Applies a retention policy: drops points older than `cutoff` in all
    /// series and removes series that become empty. Returns the number of
    /// points removed.
    pub fn expire_before(&self, cutoff: Timestamp) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut guard = shard.write();
            let Shard { map, resident_bytes, decode, .. } = &mut *guard;
            let before_retain = map.len();
            let mut expired = 0usize;
            map.retain(|_, series| {
                let before = series.resident_bytes();
                let dropped = series.expire_before(cutoff);
                expired += dropped;
                removed += dropped;
                *resident_bytes =
                    (*resident_bytes + series.resident_bytes()).saturating_sub(before);
                !series.is_empty()
            });
            // Expiry drops and re-encodes an unknown set of blocks;
            // wholesale invalidation is the cheap correct answer (stale
            // seqs could never alias, but they would squat on cache budget).
            if expired > 0 || map.len() != before_retain {
                decode.clear();
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MetricKind;

    fn id(target: &str) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, target)
    }

    #[test]
    fn append_get_roundtrip() {
        let store = TsdbStore::new();
        store.append(&id("a"), 1, 0.5).unwrap();
        store.append(&id("a"), 2, 0.6).unwrap();
        let s = store.get(&id("a")).unwrap();
        assert_eq!(s.values(), vec![0.5, 0.6]);
    }

    #[test]
    fn missing_series_errors() {
        let store = TsdbStore::new();
        assert!(matches!(
            store.get(&id("nope")),
            Err(TsdbError::SeriesNotFound(_))
        ));
    }

    #[test]
    fn series_listing_by_service() {
        let store = TsdbStore::new();
        store
            .append(&SeriesId::new("a", MetricKind::Cpu, ""), 0, 1.0)
            .unwrap();
        store
            .append(&SeriesId::new("b", MetricKind::Cpu, ""), 0, 1.0)
            .unwrap();
        store
            .append(&SeriesId::new("a", MetricKind::Memory, ""), 0, 1.0)
            .unwrap();
        assert_eq!(store.series_count(), 3);
        assert_eq!(store.series_ids_for_service("a").len(), 2);
        assert_eq!(store.series_ids().len(), 3);
    }

    #[test]
    fn windows_through_store() {
        let store = TsdbStore::new();
        for t in 0..200u64 {
            store.append(&id("w"), t, t as f64).unwrap();
        }
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let w = store.windows(&id("w"), &cfg, 150).unwrap();
        assert_eq!(w.historic_len(), 100);
        assert_eq!(w.analysis_len(), 50);
    }

    #[test]
    fn with_series_borrows_without_cloning() {
        let store = TsdbStore::new();
        for t in 0..10u64 {
            store.append(&id("b"), t, t as f64).unwrap();
        }
        let len = store.with_series(&id("b"), |s| s.len()).unwrap();
        assert_eq!(len, 10);
        assert_eq!(store.last_timestamp(&id("b")).unwrap(), Some(9));
        assert!(store.last_timestamp(&id("missing")).is_err());
    }

    #[test]
    fn retention_drops_points_and_empty_series() {
        let store = TsdbStore::new();
        store.append(&id("old"), 10, 1.0).unwrap();
        store.append(&id("new"), 100, 1.0).unwrap();
        let removed = store.expire_before(50);
        assert_eq!(removed, 1);
        assert!(!store.contains(&id("old")));
        assert!(store.contains(&id("new")));
    }

    #[test]
    fn snapshot_windows_matches_per_series_windows() {
        let store = TsdbStore::new();
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 10,
        };
        let mut ids = Vec::new();
        for s in 0..20 {
            let sid = id(&format!("s{s}"));
            for t in 0..200u64 {
                store.append(&sid, t, (t + s) as f64).unwrap();
            }
            ids.push(sid);
        }
        // One id that holds too little data, one that is missing entirely.
        let sparse = id("sparse");
        store.append(&sparse, 190, 1.0).unwrap();
        ids.push(sparse);
        ids.push(id("missing"));
        let now = 200;
        let refs: Vec<&SeriesId> = ids.iter().collect();
        let batch = store.snapshot_windows(&refs, &cfg, now);
        assert_eq!(batch.len(), ids.len());
        for (sid, got) in ids.iter().zip(&batch) {
            let individually = store.windows(sid, &cfg, now);
            assert_eq!(got, &individually, "series {sid:?}");
        }
        assert!(matches!(
            batch[ids.len() - 2],
            Err(TsdbError::EmptyWindow("historic"))
        ));
        assert!(matches!(
            batch[ids.len() - 1],
            Err(TsdbError::SeriesNotFound(_))
        ));
    }

    #[test]
    fn snapshot_deltas_classify_mutations() {
        let store = TsdbStore::new();
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let a = id("a");
        let b = id("b");
        let c = id("c");
        for t in 0..100u64 {
            store.append(&a, t, 1.0).unwrap();
            store.append(&b, t, 2.0).unwrap();
            store.append(&c, t, 3.0).unwrap();
        }
        // First observation: everything is a Reset carrying the scan range.
        let first = store.snapshot_deltas(&[&a, &b, &c], &[], &cfg, 100);
        let mut known = Vec::new();
        for d in &first {
            match d {
                SeriesDelta::Reset { version, points } => {
                    assert!(!points.is_empty());
                    known.push(Some(*version));
                }
                other => panic!("expected Reset, got {other:?}"),
            }
        }
        // a: untouched; b: two appends; c: replaced wholesale with a series
        // of the same length (the counter-collision case replacement must
        // not alias as Unchanged or Appended).
        store.append(&b, 100, 9.0).unwrap();
        store.append(&b, 101, 9.5).unwrap();
        store.insert_series(c.clone(), TimeSeries::from_values(0, 1, &[7.0; 100]));
        let missing = id("missing");
        let ids = [&a, &b, &c, &missing];
        known.push(None);
        let second = store.snapshot_deltas(&ids, &known, &cfg, 102);
        assert!(matches!(second[0], SeriesDelta::Unchanged { .. }));
        match &second[1] {
            SeriesDelta::Appended { tail, .. } => {
                assert_eq!(tail.len(), 2);
                assert_eq!(tail[0].timestamp, 100);
                assert_eq!(tail[1].value, 9.5);
            }
            other => panic!("expected Appended, got {other:?}"),
        }
        assert!(matches!(second[2], SeriesDelta::Reset { .. }));
        assert!(matches!(second[3], SeriesDelta::Missing));

        // Store-wide expiry is a non-append mutation on every touched
        // series: the next delta for `a` must be a Reset.
        let known_a = match second[0] {
            SeriesDelta::Unchanged { version } => Some(version),
            _ => None,
        };
        store.expire_before(5);
        let third = store.snapshot_deltas(&[&a], &[known_a], &cfg, 102);
        assert!(matches!(third[0], SeriesDelta::Reset { .. }));
    }

    #[test]
    fn append_batch_matches_per_point_appends_and_keeps_stride() {
        let per_point = TsdbStore::new();
        let batched = TsdbStore::new();
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let ids: Vec<SeriesId> = (0..5).map(|s| id(&format!("s{s}"))).collect();
        let mut batch = Vec::new();
        for t in 0..50u64 {
            for (s, sid) in ids.iter().enumerate() {
                per_point.append(sid, t, (t + s as u64) as f64).unwrap();
                batch.push((sid.clone(), t, (t + s as u64) as f64));
            }
        }
        let out = batched.append_batch(&batch);
        assert_eq!(out.appended, batch.len());
        assert!(out.rejected.is_empty());
        let refs: Vec<&SeriesId> = ids.iter().collect();
        let first = batched.snapshot_deltas(&refs, &[], &cfg, 50);
        let known: Vec<Option<SeriesVersion>> = first
            .iter()
            .map(|d| match d {
                SeriesDelta::Reset { version, .. } => Some(*version),
                other => panic!("expected Reset, got {other:?}"),
            })
            .collect();
        for (sid, got) in ids.iter().zip(&known) {
            let series = per_point.get(sid).unwrap();
            assert_eq!(batched.get(sid).unwrap().points(), series.points());
            // Same counters as the per-point path: the batch kept the
            // append-only stride.
            assert_eq!(got.unwrap().version, series.version());
            assert_eq!(got.unwrap().appended, series.appended());
        }
        // A follow-up batch is observed as Appended, not Reset.
        let tail: Vec<(SeriesId, u64, f64)> =
            ids.iter().map(|sid| (sid.clone(), 50, 9.0)).collect();
        let out = batched.append_batch(&tail);
        assert_eq!(out.appended, ids.len());
        for (i, d) in batched
            .snapshot_deltas(&refs, &known, &cfg, 51)
            .into_iter()
            .enumerate()
        {
            match d {
                SeriesDelta::Appended { tail, .. } => assert_eq!(tail.len(), 1, "series {i}"),
                other => panic!("series {i}: expected Appended, got {other:?}"),
            }
        }
    }

    #[test]
    fn append_batch_reports_out_of_order_rejects() {
        let store = TsdbStore::new();
        let a = id("a");
        let batch = vec![
            (a.clone(), 10, 1.0),
            (a.clone(), 5, 2.0), // out of order: rejected
            (a.clone(), 10, 3.0), // equal timestamp: allowed
            (a.clone(), 11, 4.0),
        ];
        let out = store.append_batch(&batch);
        assert_eq!(out.appended, 3);
        assert_eq!(out.rejected.len(), 1);
        assert_eq!(out.rejected[0].0, 1);
        assert!(matches!(
            out.rejected[0].1,
            TsdbError::OutOfOrderAppend { last: 10, attempted: 5 }
        ));
        assert_eq!(store.get(&a).unwrap().len(), 3);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let a = id("route");
        assert_eq!(TsdbStore::shard_of(&a), TsdbStore::shard_of(&a.clone()));
        assert!(TsdbStore::shard_of(&a) < TsdbStore::shard_count());
    }

    #[test]
    fn concurrent_appends() {
        let store = TsdbStore::shared();
        let mut handles = Vec::new();
        for worker in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let sid = id(&format!("t{worker}"));
                for t in 0..1000u64 {
                    store.append(&sid, t, t as f64).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.series_count(), 8);
        for worker in 0..8 {
            assert_eq!(store.get(&id(&format!("t{worker}"))).unwrap().len(), 1000);
        }
    }

    // --- compression + budget tests ---

    /// Builds the same workload into an uncompressed and a compressed
    /// store; every read path must agree.
    fn twin_stores(n_series: usize, n_points: u64) -> (TsdbStore, TsdbStore, Vec<SeriesId>) {
        let plain = TsdbStore::new();
        let packed = TsdbStore::compressed();
        let mut ids = Vec::new();
        for s in 0..n_series {
            let sid = id(&format!("s{s}"));
            for t in 0..n_points {
                let v = ((t + s as u64) as f64 * 0.01).sin();
                plain.append(&sid, t * 60, v).unwrap();
                packed.append(&sid, t * 60, v).unwrap();
            }
            ids.push(sid);
        }
        (plain, packed, ids)
    }

    #[test]
    fn compressed_store_matches_uncompressed_reads() {
        let cfg = WindowConfig {
            historic: 100 * 60,
            analysis: 50 * 60,
            extended: 25 * 60,
            rerun_interval: 600,
        };
        let (plain, packed, ids) = twin_stores(6, 300);
        let now = 290 * 60;
        let refs: Vec<&SeriesId> = ids.iter().collect();
        assert_eq!(
            plain.snapshot_windows(&refs, &cfg, now),
            packed.snapshot_windows(&refs, &cfg, now)
        );
        for sid in &ids {
            assert_eq!(plain.windows(sid, &cfg, now), packed.windows(sid, &cfg, now));
            assert_eq!(plain.get(sid).unwrap(), packed.get(sid).unwrap());
            assert_eq!(
                plain.last_timestamp(sid).unwrap(),
                packed.last_timestamp(sid).unwrap()
            );
        }
        assert_eq!(
            plain.snapshot_deltas(&refs, &[], &cfg, now),
            packed.snapshot_deltas(&refs, &[], &cfg, now)
        );
    }

    #[test]
    fn snapshot_windows_served_from_decode_cache() {
        let cfg = WindowConfig {
            historic: 100 * 60,
            analysis: 50 * 60,
            extended: 25 * 60,
            rerun_interval: 600,
        };
        let cached = TsdbStore::compressed();
        let uncached = TsdbStore::with_config(StoreConfig {
            seal_limit: StoreConfig::compressed().seal_limit,
            shard_budget_bytes: None,
            decode_cache_bytes: 0,
        });
        let mut ids = Vec::new();
        for s in 0..8 {
            let sid = id(&format!("s{s}"));
            for t in 0..300u64 {
                let v = ((t + s) as f64 * 0.01).sin();
                cached.append(&sid, t * 60, v).unwrap();
                uncached.append(&sid, t * 60, v).unwrap();
            }
            ids.push(sid);
        }
        let now = 290 * 60;
        let refs: Vec<&SeriesId> = ids.iter().collect();
        // First batch scan: every overlapping sealed block is a miss
        // (counted into blocks_decoded); no hits yet, no re-decode either.
        let first = cached.snapshot_windows(&refs, &cfg, now);
        let stats = cached.stats();
        assert!(stats.blocks_decoded() > 0, "seals must have been decoded");
        assert_eq!(stats.decode_cache_hits(), 0);
        let decoded_once = stats.blocks_decoded();
        // Second identical scan: served entirely from the cache — the
        // results stay byte-identical and the miss counter does not move.
        let second = cached.snapshot_windows(&refs, &cfg, now);
        assert_eq!(first, second);
        let stats = cached.stats();
        assert_eq!(stats.blocks_decoded(), decoded_once);
        assert!(stats.decode_cache_hits() > 0, "repeat scan must hit the cache");
        assert!(stats.decode_cache_bytes() > 0);
        // The cache is a pure representation detail: the cache-off store
        // (which decodes directly under a read lock) returns the same
        // windows, and its direct decodes also land in blocks_decoded.
        assert_eq!(first, uncached.snapshot_windows(&refs, &cfg, now));
        let direct = uncached.stats();
        assert!(direct.blocks_decoded() > 0);
        assert_eq!(direct.decode_cache_hits(), 0);
        assert_eq!(direct.decode_cache_bytes(), 0);
    }

    #[test]
    fn compressed_store_keeps_append_stride_across_seals() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        // A small decode cache so the cross-seal tail copies exercise the
        // cached write-lock path.
        let store = TsdbStore::with_config(StoreConfig {
            seal_limit: 8,
            shard_budget_bytes: None,
            decode_cache_bytes: 4_096,
        });
        let a = id("a");
        for t in 0..20u64 {
            store.append(&a, t, t as f64).unwrap();
        }
        let first = store.snapshot_deltas(&[&a], &[], &cfg, 20);
        let known = match &first[0] {
            SeriesDelta::Reset { version, .. } => Some(*version),
            other => panic!("expected Reset, got {other:?}"),
        };
        // 12 appends crossing a seal boundary (head 4 -> seal at 8 twice).
        for t in 20..32u64 {
            store.append(&a, t, t as f64).unwrap();
        }
        match &store.snapshot_deltas(&[&a], &[known], &cfg, 32)[0] {
            SeriesDelta::Appended { tail, .. } => {
                let ts: Vec<u64> = tail.iter().map(|p| p.timestamp).collect();
                assert_eq!(ts, (20..32).collect::<Vec<u64>>());
            }
            other => panic!("expected Appended across seals, got {other:?}"),
        }
    }

    #[test]
    fn stats_track_compression_and_agree_with_recount() {
        let (plain, packed, _) = twin_stores(4, 300);
        let ps = plain.stats();
        let cs = packed.stats();
        assert_eq!(ps.points(), cs.points());
        assert_eq!(ps.series(), cs.series());
        assert!((ps.bytes_per_point() - 16.0).abs() < 1e-9);
        assert!(
            cs.bytes_per_point() < 12.0,
            "expected compression below 12 B/pt, got {}",
            cs.bytes_per_point()
        );
        assert!(cs.sealed_blocks() > 0);
        // The incrementally maintained shard counter must equal a direct
        // recount of every series' resident bytes.
        for store in [&plain, &packed] {
            let stats = store.stats();
            for (i, shard_stats) in stats.shards.iter().enumerate() {
                let recount: usize = store
                    .series_ids()
                    .iter()
                    .filter(|sid| TsdbStore::shard_of(sid) == i)
                    .map(|sid| store.with_series(sid, |s| s.resident_bytes()).unwrap())
                    .sum();
                assert_eq!(shard_stats.resident_bytes, recount, "shard {i}");
            }
        }
    }

    #[test]
    fn budget_evicts_oldest_blocks_deterministically() {
        let config = StoreConfig {
            seal_limit: 16,
            shard_budget_bytes: Some(2_000),
            decode_cache_bytes: 2_048,
        };
        let store = TsdbStore::with_config(config);
        // Everything lands in one series -> one shard; enough noisy data
        // that compressed blocks overflow 2 KB.
        let a = id("a");
        let mut state = 1u64;
        for t in 0..2_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (state >> 11) as f64 / (1u64 << 53) as f64;
            store.append(&a, t * 60, v).unwrap();
        }
        let stats = store.stats();
        assert!(stats.evicted_blocks() > 0, "budget should have evicted");
        assert_eq!(stats.evicted_points() % 16, 0, "whole blocks only");
        assert!(
            stats.max_shard_resident_bytes() <= 2_000,
            "shard still over budget: {} bytes",
            stats.max_shard_resident_bytes()
        );
        // Eviction drops the *oldest* data: the series now starts later.
        let series = store.get(&a).unwrap();
        assert!(series.first_timestamp().unwrap() > 0);
        assert_eq!(series.last_timestamp().unwrap(), 1_999 * 60);
        // Determinism: a second identical run evicts identically.
        let twin = TsdbStore::with_config(config);
        let mut state = 1u64;
        for t in 0..2_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (state >> 11) as f64 / (1u64 << 53) as f64;
            twin.append(&a, t * 60, v).unwrap();
        }
        assert_eq!(store.get(&a).unwrap(), twin.get(&a).unwrap());
        assert_eq!(store.stats(), twin.stats());
    }

    #[test]
    fn eviction_is_observed_as_reset_by_delta_snapshots() {
        let cfg = WindowConfig {
            historic: 100_000,
            analysis: 50_000,
            extended: 0,
            rerun_interval: 600,
        };
        let config = StoreConfig {
            seal_limit: 16,
            shard_budget_bytes: Some(1_000),
            decode_cache_bytes: 0,
        };
        let store = TsdbStore::with_config(config);
        let a = id("a");
        for t in 0..64u64 {
            store.append(&a, t * 60, (t as f64).sin()).unwrap();
        }
        let first = store.snapshot_deltas(&[&a], &[], &cfg, 64 * 60);
        let known = match &first[0] {
            SeriesDelta::Reset { version, .. } => Some(*version),
            other => panic!("expected Reset, got {other:?}"),
        };
        // Force evictions with noisy data that cannot compress under 1 KB.
        let mut state = 7u64;
        for t in 64..512u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            store.append(&a, t * 60, f64::from_bits(0x3FF0_0000_0000_0000 | (state >> 12))).unwrap();
        }
        assert!(store.stats().evicted_blocks() > 0);
        // The eviction bumped version without appended: never Appended.
        match &store.snapshot_deltas(&[&a], &[known], &cfg, 512 * 60)[0] {
            SeriesDelta::Reset { .. } => {}
            other => panic!("eviction must surface as Reset, got {other:?}"),
        }
    }

    #[test]
    fn insert_series_repacks_to_store_policy() {
        let store = TsdbStore::compressed();
        let a = id("a");
        store.insert_series(a.clone(), TimeSeries::from_values(0, 60, &vec![1.5; 400]));
        let series = store.get(&a).unwrap();
        assert!(series.sealed_block_count() > 0, "insert should compress");
        assert_eq!(series.len(), 400);
        let stats = store.stats();
        assert_eq!(stats.points(), 400);
        assert!(stats.resident_bytes() < 400 * 16);
    }

    #[test]
    fn default_store_stays_uncompressed() {
        let store = TsdbStore::new();
        for t in 0..300u64 {
            store.append(&id("a"), t, 1.0).unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.sealed_blocks(), 0);
        assert_eq!(stats.resident_bytes(), 300 * 16);
        assert!((stats.bytes_per_point() - 16.0).abs() < 1e-9);
        assert_eq!(stats.max_shard_resident_bytes(), 300 * 16);
    }
}
