//! A single append-only time series.
//!
//! Storage is a run of sealed Gorilla-compressed blocks
//! ([`crate::block::SealedBlock`]) followed by a small mutable head of
//! uncompressed points. Appends always land in the head; when the head
//! reaches `seal_limit` points it is compressed into one immutable block.
//! A `seal_limit` of 0 disables compression entirely — the series is then
//! a plain `Vec<DataPoint>`, which is the default so existing callers and
//! tests see the exact pre-compression representation.
//!
//! Sealing is a *representation* change, not a data change: it bumps
//! neither counter, so the streaming engine's append-stride proofs hold
//! across seals. Evicting or expiring sealed data bumps `version` only,
//! which snapshot readers observe as a reset.

use std::borrow::Cow;

use crate::scratch::ScratchPoints;
use fbd_stats::scratch::ScratchVec;

use crate::block::{BlockSummary, SealedBlock, SUMMARY_BYTES};
use crate::types::{DataPoint, Timestamp};
use crate::{Result, TsdbError};

/// Zero-decode bounds over a `[start, end)` range of a series, computed by
/// [`TimeSeries::summary_bounds`] from seal-time block summaries plus the
/// uncompressed head. Block-derived figures cover every *overlapping* block
/// whole, so they are conservative: value bounds are outer bounds and
/// counts are upper bounds for the requested range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryBounds {
    /// Upper bound on the number of stored points in the range (exact for
    /// the head portion and for blocks fully inside the range).
    pub count_max: usize,
    /// Lower bound on the minimum finite value (`+∞` when none covered).
    pub min: f64,
    /// Upper bound on the maximum finite value (`−∞` when none covered).
    pub max: f64,
    /// Upper bound on the number of non-finite samples in the range.
    pub nan_count_max: usize,
    /// Smallest positive consecutive-timestamp gap observed within any
    /// overlapping block or the head slice (0 when unknown). Gaps that
    /// straddle block boundaries are not represented, so this is an upper
    /// bound on the series' true minimum gap — still a valid cadence
    /// estimate for coverage math, which only widens under a larger gap.
    pub min_gap: Timestamp,
    /// Number of sealed blocks a decode of the same range would touch.
    pub blocks: usize,
}

/// An append-only, timestamp-ordered series of samples.
///
/// Two monotonic counters let readers detect *how* a series changed since a
/// prior observation without diffing points: `version` advances on every
/// data mutation, `appended` only on appends. When both counters advanced
/// by the same amount, the change was append-only and exactly that many
/// points were pushed onto the tail — the basis of the streaming scan
/// engine's O(k) delta snapshots. Sealing head points into a compressed
/// block advances neither counter.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    sealed: Vec<SealedBlock>,
    /// Total points across `sealed` (cached so `len` is O(1)).
    sealed_points: usize,
    /// Total compressed payload bytes across `sealed`.
    sealed_bytes: usize,
    head: Vec<DataPoint>,
    /// Head size that triggers sealing; 0 = never seal (uncompressed).
    seal_limit: u32,
    version: u64,
    appended: u64,
}

/// Equality compares the stored points only: two series with identical data
/// are equal even if they arrived by different append/expire histories or
/// sit in different sealed/head representations.
impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl TimeSeries {
    /// Creates an empty, uncompressed series (`seal_limit` 0).
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Creates an empty series that seals its head into a compressed block
    /// every `seal_limit` points. 0 disables sealing.
    pub fn with_seal_limit(seal_limit: u32) -> Self {
        TimeSeries { seal_limit, ..TimeSeries::default() }
    }

    /// Builds a series from `(timestamp, value)` pairs; the pairs must be in
    /// non-decreasing timestamp order.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Timestamp, f64)>) -> Result<Self> {
        let mut s = TimeSeries::new();
        for (t, v) in pairs {
            s.append(t, v)?;
        }
        Ok(s)
    }

    /// Builds a series from values sampled at a fixed interval starting at
    /// `start`.
    pub fn from_values(start: Timestamp, interval: Timestamp, values: &[f64]) -> Self {
        let points: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| DataPoint::new(start + i as Timestamp * interval, v))
            .collect();
        let n = points.len() as u64;
        TimeSeries {
            sealed: Vec::new(),
            sealed_points: 0,
            sealed_bytes: 0,
            head: points,
            seal_limit: 0,
            version: n,
            appended: n,
        }
    }

    /// Appends a sample; timestamps must be non-decreasing.
    pub fn append(&mut self, timestamp: Timestamp, value: f64) -> Result<()> {
        if let Some(last) = self.last_timestamp() {
            if timestamp < last {
                return Err(TsdbError::OutOfOrderAppend {
                    last,
                    attempted: timestamp,
                });
            }
        }
        self.head.push(DataPoint::new(timestamp, value));
        self.version = self.version.wrapping_add(1);
        self.appended = self.appended.wrapping_add(1);
        self.seal_ready();
        Ok(())
    }

    /// Compresses every full `seal_limit`-sized run of head points into a
    /// sealed block. Representation-only: counters are untouched.
    fn seal_ready(&mut self) {
        if self.seal_limit == 0 {
            return;
        }
        let limit = self.seal_limit as usize;
        while self.head.len() >= limit {
            let block = SealedBlock::from_points(&self.head[..limit]);
            self.sealed_points += block.count() as usize;
            self.sealed_bytes += block.byte_len();
            self.sealed.push(block);
            // On the append path the head is exactly `limit` long, so this
            // clears it while keeping its capacity for the next fill.
            self.head.drain(..limit);
        }
    }

    /// Changes the seal limit, re-packing existing points to match: with a
    /// non-zero limit all full runs are compressed, with 0 everything is
    /// decoded back into the uncompressed head. Representation-only — the
    /// stored points and both counters are unchanged.
    pub fn set_seal_limit(&mut self, seal_limit: u32) {
        if seal_limit == self.seal_limit && (seal_limit != 0 || self.sealed.is_empty()) {
            return;
        }
        if !self.sealed.is_empty() {
            let mut points = Vec::with_capacity(self.len());
            for block in &self.sealed {
                block.decode_into(&mut points);
            }
            points.extend_from_slice(&self.head);
            self.sealed.clear();
            self.sealed_points = 0;
            self.sealed_bytes = 0;
            self.head = points;
        }
        self.seal_limit = seal_limit;
        self.seal_ready();
    }

    /// The configured seal limit (0 = uncompressed).
    pub fn seal_limit(&self) -> u32 {
        self.seal_limit
    }

    /// Monotonic mutation counter: advances on every append or expiry.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Marks this series as the replacement of one whose mutation counter
    /// had reached `old_version`, jumping `version` far enough past it that
    /// no observation of the old lineage can alias as `Unchanged` (version
    /// equal) or `Appended` (version delta equal to append delta): the new
    /// version delta exceeds any possible append delta.
    pub(crate) fn mark_replacement_of(&mut self, old_version: u64) {
        self.version = old_version
            .wrapping_add(self.appended)
            .wrapping_add(2)
            .max(self.version);
    }

    /// Monotonic append counter: advances only when a point is appended.
    ///
    /// `version - appended` (as observed deltas between two reads) tells a
    /// snapshotting reader whether anything other than appends happened.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.sealed_points + self.head.len()
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.sealed_points == 0 && self.head.is_empty()
    }

    /// All points in timestamp order. Borrows the head directly when no
    /// sealed blocks exist (the uncompressed fast path); otherwise decodes
    /// into an owned vector — prefer [`TimeSeries::iter`],
    /// [`TimeSeries::range_into`], or [`TimeSeries::tail_to_vec`] on hot
    /// paths.
    pub fn points(&self) -> Cow<'_, [DataPoint]> {
        match self.as_uncompressed() {
            Some(head) => Cow::Borrowed(head),
            None => {
                let mut out = Vec::with_capacity(self.len());
                for block in &self.sealed {
                    block.decode_into(&mut out);
                }
                out.extend_from_slice(&self.head);
                Cow::Owned(out)
            }
        }
    }

    /// The full point slice, available without decoding only while the
    /// series holds no sealed blocks.
    pub fn as_uncompressed(&self) -> Option<&[DataPoint]> {
        if self.sealed.is_empty() {
            Some(&self.head)
        } else {
            None
        }
    }

    /// Iterates every point in timestamp order, decoding sealed blocks on
    /// the fly without materializing them.
    pub fn iter(&self) -> impl Iterator<Item = DataPoint> + '_ {
        self.sealed
            .iter()
            .flat_map(SealedBlock::iter)
            .chain(self.head.iter().copied())
    }

    /// All values, in timestamp order, as a fresh allocation. Hot readers
    /// should prefer [`TimeSeries::iter`] or
    /// [`TimeSeries::values_scratch`].
    pub fn values(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len());
        self.values_into(&mut out);
        out
    }

    /// Appends every value in timestamp order to `out`.
    pub fn values_into(&self, out: &mut Vec<f64>) {
        out.reserve(self.len());
        out.extend(self.iter().map(|p| p.value));
    }

    /// All values decoded into a recycled thread-local
    /// [`ScratchVec`] arena — the allocation-free
    /// variant of [`TimeSeries::values`] for per-round hot readers.
    pub fn values_scratch(&self) -> ScratchVec {
        let mut out = ScratchVec::with_capacity(self.len());
        out.extend(self.iter().map(|p| p.value));
        out
    }

    /// Timestamp of the first point.
    pub fn first_timestamp(&self) -> Option<Timestamp> {
        self.sealed
            .first()
            .map(SealedBlock::first_timestamp)
            .or_else(|| self.head.first().map(|p| p.timestamp))
    }

    /// Timestamp of the last point.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.head
            .last()
            .map(|p| p.timestamp)
            .or_else(|| self.sealed.last().map(SealedBlock::last_timestamp))
    }

    /// Points with timestamps in `[start, end)`. Errors when `start >= end`
    /// (see [`TimeSeries::range_to_vec`] for the non-failing variant).
    pub fn range(&self, start: Timestamp, end: Timestamp) -> Result<Vec<DataPoint>> {
        if start >= end {
            return Err(TsdbError::InvalidRange);
        }
        Ok(self.range_to_vec(start, end))
    }

    /// Points with timestamps in `[start, end)`; an inverted or empty range
    /// yields an empty vector.
    pub fn range_to_vec(&self, start: Timestamp, end: Timestamp) -> Vec<DataPoint> {
        let mut out = Vec::new();
        self.range_into(start, end, &mut out);
        out
    }

    /// Appends the points with timestamps in `[start, end)` to `out`,
    /// decoding only the sealed blocks that overlap the range.
    pub fn range_into(&self, start: Timestamp, end: Timestamp, out: &mut Vec<DataPoint>) {
        if start >= end {
            return;
        }
        for block in &self.sealed {
            if block.last_timestamp() < start || block.is_empty() {
                continue;
            }
            if block.first_timestamp() >= end {
                break;
            }
            if block.first_timestamp() >= start && block.last_timestamp() < end {
                // Fully inside the range: bulk-decode.
                block.decode_into(out);
            } else {
                out.extend(
                    block
                        .iter()
                        .skip_while(|p| p.timestamp < start)
                        .take_while(|p| p.timestamp < end),
                );
            }
        }
        let lo = self.head.partition_point(|p| p.timestamp < start);
        let hi = self.head.partition_point(|p| p.timestamp < end);
        out.extend_from_slice(&self.head[lo..hi]);
    }

    /// The last `n` points (all points when `n >= len`), decoding only the
    /// sealed blocks that overlap the tail — the head fast path is
    /// allocation-exact for append-stride snapshot deltas.
    pub fn tail_to_vec(&self, n: usize) -> Vec<DataPoint> {
        let n = n.min(self.len());
        if n <= self.head.len() {
            return self.head[self.head.len() - n..].to_vec();
        }
        let needed = n - self.head.len();
        let mut start_block = self.sealed.len();
        let mut covered = 0usize;
        while start_block > 0 && covered < needed {
            start_block -= 1;
            covered += self.sealed[start_block].count() as usize;
        }
        let mut decoded = Vec::with_capacity(covered);
        for block in &self.sealed[start_block..] {
            block.decode_into(&mut decoded);
        }
        let mut out = Vec::with_capacity(n);
        out.extend_from_slice(&decoded[decoded.len() - needed..]);
        out.extend_from_slice(&self.head);
        out
    }

    /// [`TimeSeries::tail_to_vec`] into a recycled [`ScratchPoints`]
    /// buffer — the allocation-free variant for the per-round
    /// snapshot-delta path, where a fresh tail copy per series per round
    /// would put the global allocator on the scan loop.
    // fbd-lint::hot
    pub fn tail_scratch(&self, n: usize) -> ScratchPoints {
        let n = n.min(self.len());
        let mut out = ScratchPoints::with_capacity(n);
        if n <= self.head.len() {
            out.extend_from_slice(&self.head[self.head.len() - n..]);
            return out;
        }
        let needed = n - self.head.len();
        let mut start_block = self.sealed.len();
        let mut covered = 0usize;
        while start_block > 0 && covered < needed {
            start_block -= 1;
            covered += self.sealed[start_block].count() as usize;
        }
        let mut decoded = ScratchPoints::with_capacity(covered);
        for block in &self.sealed[start_block..] {
            block.decode_into(&mut decoded);
        }
        out.extend_from_slice(&decoded[decoded.len() - needed..]);
        out.extend_from_slice(&self.head);
        out
    }

    /// [`TimeSeries::range_to_vec`] into a recycled [`ScratchPoints`]
    /// buffer — the allocation-free variant for reset copies on the
    /// snapshot-delta path.
    // fbd-lint::hot
    pub fn range_scratch(&self, start: Timestamp, end: Timestamp) -> ScratchPoints {
        let mut out = ScratchPoints::with_capacity(0);
        self.range_into(start, end, &mut out);
        out
    }

    /// Values with timestamps in `[start, end)`.
    pub fn values_in(&self, start: Timestamp, end: Timestamp) -> Result<Vec<f64>> {
        Ok(self.range(start, end)?.iter().map(|p| p.value).collect())
    }

    /// Bytes resident for this series under the accounting model used by
    /// shard budgets: 16 bytes per uncompressed head point, the compressed
    /// payload of every sealed block, plus [`SUMMARY_BYTES`] for the
    /// seal-time summary stored beside each block. Container slack (vector
    /// capacity beyond length, block bookkeeping) is deliberately excluded
    /// so the number is stable across reallocation strategies.
    pub fn resident_bytes(&self) -> usize {
        self.head.len() * std::mem::size_of::<DataPoint>()
            + self.sealed_bytes
            + self.sealed.len() * SUMMARY_BYTES
    }

    /// Number of sealed (compressed) blocks.
    pub fn sealed_block_count(&self) -> usize {
        self.sealed.len()
    }

    /// The sealed blocks, oldest first. Read-only: callers may decode or
    /// inspect summaries but never mutate sealed history.
    pub fn sealed_blocks(&self) -> &[SealedBlock] {
        &self.sealed
    }

    /// Seal-time summaries of the sealed blocks, oldest first — the
    /// zero-decode view of compressed history.
    pub fn summaries(&self) -> impl ExactSizeIterator<Item = &BlockSummary> {
        self.sealed.iter().map(SealedBlock::summary)
    }

    /// The uncompressed head points (newest data, not yet sealed).
    pub fn head(&self) -> &[DataPoint] {
        &self.head
    }

    /// Number of sealed blocks a `[start, end)` range read decodes —
    /// answered from summaries alone, mirroring [`TimeSeries::range_into`]'s
    /// skip/break rules exactly.
    pub fn overlapping_block_count(&self, start: Timestamp, end: Timestamp) -> u64 {
        if start >= end {
            return 0;
        }
        let mut n = 0;
        for block in &self.sealed {
            if block.last_timestamp() < start || block.is_empty() {
                continue;
            }
            if block.first_timestamp() >= end {
                break;
            }
            n += 1;
        }
        n
    }

    /// Number of sealed blocks a tail-`n` read decodes — zero while the
    /// head still covers the tail, mirroring [`TimeSeries::tail_scratch`]'s
    /// walk-back exactly.
    pub fn tail_block_count(&self, n: usize) -> u64 {
        let n = n.min(self.len());
        if n <= self.head.len() {
            return 0;
        }
        let needed = n - self.head.len();
        let mut start_block = self.sealed.len();
        let mut covered = 0usize;
        while start_block > 0 && covered < needed {
            start_block -= 1;
            covered += self.sealed[start_block].count() as usize;
        }
        (self.sealed.len() - start_block) as u64
    }

    /// Zero-decode bounds over `[start, end)`: seal-time summaries answer
    /// for every overlapping sealed block (a superset of the range, so the
    /// value bounds are outer bounds and the counts are upper bounds) and
    /// an exact pass over the tiny uncompressed head tightens the rest.
    /// This is what window-coverage estimates, the flat-series prefilter,
    /// and Level C's `sliding_mean_bounds` inputs consume when the online
    /// refuters clear a series without decoding it.
    pub fn summary_bounds(&self, start: Timestamp, end: Timestamp) -> SummaryBounds {
        let mut b = SummaryBounds {
            count_max: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nan_count_max: 0,
            min_gap: 0,
            blocks: 0,
        };
        if start >= end {
            return b;
        }
        fn fold_gap(min_gap: &mut Timestamp, gap: Timestamp) {
            if gap > 0 && (*min_gap == 0 || gap < *min_gap) {
                *min_gap = gap;
            }
        }
        for block in &self.sealed {
            if block.last_timestamp() < start || block.is_empty() {
                continue;
            }
            if block.first_timestamp() >= end {
                break;
            }
            let s = block.summary();
            b.blocks += 1;
            b.count_max += s.count as usize;
            b.min = b.min.min(s.min);
            b.max = b.max.max(s.max);
            b.nan_count_max += s.nan_count as usize;
            fold_gap(&mut b.min_gap, s.min_gap);
        }
        let lo = self.head.partition_point(|p| p.timestamp < start);
        let hi = self.head.partition_point(|p| p.timestamp < end);
        for w in self.head[lo..hi].windows(2) {
            fold_gap(&mut b.min_gap, w[1].timestamp - w[0].timestamp);
        }
        for p in &self.head[lo..hi] {
            b.count_max += 1;
            if p.value.is_finite() {
                b.min = b.min.min(p.value);
                b.max = b.max.max(p.value);
            } else {
                b.nan_count_max += 1;
            }
        }
        b
    }

    /// Total compressed payload bytes across sealed blocks.
    pub fn sealed_bytes(&self) -> usize {
        self.sealed_bytes
    }

    /// Number of points currently in the uncompressed head.
    pub fn head_len(&self) -> usize {
        self.head.len()
    }

    /// First timestamp of the oldest sealed block, if any — the eviction
    /// candidate key used by store budget enforcement.
    pub(crate) fn front_sealed_first_timestamp(&self) -> Option<Timestamp> {
        self.sealed.first().map(SealedBlock::first_timestamp)
    }

    /// Drops the oldest sealed block, returning `(points, bytes)` freed.
    /// `bytes` is the resident-byte delta — compressed payload plus the
    /// block's [`SUMMARY_BYTES`] — so shard counters stay consistent with
    /// [`TimeSeries::resident_bytes`]. A non-append mutation: bumps
    /// `version` so snapshot readers observe a reset. Never touches the
    /// head.
    pub(crate) fn evict_front_block(&mut self) -> Option<(usize, usize)> {
        if self.sealed.is_empty() {
            return None;
        }
        let block = self.sealed.remove(0);
        let points = block.count() as usize;
        let payload = block.byte_len();
        self.sealed_points -= points;
        self.sealed_bytes -= payload;
        self.version = self.version.wrapping_add(1);
        Some((points, payload + SUMMARY_BYTES))
    }

    /// Drops all points older than `cutoff` (exclusive). Returns how many
    /// points were removed. Whole sealed blocks are dropped without
    /// decoding; at most one straddling block is re-encoded.
    pub fn expire_before(&mut self, cutoff: Timestamp) -> usize {
        let mut removed = 0usize;
        while let Some(front) = self.sealed.first() {
            if front.last_timestamp() >= cutoff {
                break;
            }
            removed += front.count() as usize;
            self.sealed_points -= front.count() as usize;
            self.sealed_bytes -= front.byte_len();
            self.sealed.remove(0);
        }
        if let Some(front) = self.sealed.first() {
            if front.first_timestamp() < cutoff {
                // Straddling block: keep the suffix at or past the cutoff.
                let decoded = front.to_points();
                let keep_from = decoded.partition_point(|p| p.timestamp < cutoff);
                let replacement = SealedBlock::from_points(&decoded[keep_from..]);
                removed += keep_from;
                self.sealed_points -= front.count() as usize;
                self.sealed_bytes -= front.byte_len();
                self.sealed_points += replacement.count() as usize;
                self.sealed_bytes += replacement.byte_len();
                self.sealed[0] = replacement;
            }
        }
        let keep_from = self.head.partition_point(|p| p.timestamp < cutoff);
        removed += self.head.drain(..keep_from).count();
        if removed > 0 {
            // A non-append mutation: bump `version` but not `appended`, so
            // version-delta != append-delta flags the change to snapshots.
            self.version = self.version.wrapping_add(1);
        }
        removed
    }

    /// Downsamples by averaging points into buckets of `bucket` seconds
    /// aligned to the first timestamp. Returns a new series with one point
    /// per non-empty bucket, timestamped at the bucket start.
    pub fn downsample(&self, bucket: Timestamp) -> Result<TimeSeries> {
        if bucket == 0 {
            return Err(TsdbError::InvalidRange);
        }
        let Some(start) = self.first_timestamp() else {
            return Ok(TimeSeries::new());
        };
        let mut out = TimeSeries::new();
        let mut bucket_start = start;
        let mut sum = 0.0;
        let mut count = 0usize;
        for p in self.iter() {
            while p.timestamp >= bucket_start + bucket {
                if count > 0 {
                    out.append(bucket_start, sum / count as f64)?;
                    sum = 0.0;
                    count = 0;
                }
                bucket_start += bucket;
            }
            sum += p.value;
            count += 1;
        }
        if count > 0 {
            out.append(bucket_start, sum / count as f64)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_query() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.append(i * 10, i as f64).unwrap();
        }
        assert_eq!(s.len(), 10);
        let r = s.range(20, 50).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].value, 2.0);
        assert_eq!(s.values_in(0, 1000).unwrap().len(), 10);
    }

    #[test]
    fn rejects_out_of_order() {
        let mut s = TimeSeries::new();
        s.append(100, 1.0).unwrap();
        assert!(matches!(
            s.append(50, 2.0),
            Err(TsdbError::OutOfOrderAppend { .. })
        ));
        // Equal timestamps are allowed (multiple servers reporting at once).
        assert!(s.append(100, 3.0).is_ok());
    }

    #[test]
    fn range_validation() {
        let s = TimeSeries::from_values(0, 1, &[1.0, 2.0]);
        assert!(matches!(s.range(5, 5), Err(TsdbError::InvalidRange)));
        assert!(matches!(s.range(6, 5), Err(TsdbError::InvalidRange)));
    }

    #[test]
    fn range_is_half_open() {
        let s = TimeSeries::from_values(0, 10, &[1.0, 2.0, 3.0]);
        let r = s.range(0, 20).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn expire_removes_old_points() {
        let mut s = TimeSeries::from_values(0, 1, &[1.0, 2.0, 3.0, 4.0]);
        let removed = s.expire_before(2);
        assert_eq!(removed, 2);
        assert_eq!(s.first_timestamp(), Some(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn downsample_averages_buckets() {
        let s = TimeSeries::from_values(0, 1, &[1.0, 3.0, 5.0, 7.0]);
        let d = s.downsample(2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.points()[0].value, 2.0);
        assert_eq!(d.points()[1].value, 6.0);
    }

    #[test]
    fn downsample_skips_empty_buckets() {
        let s = TimeSeries::from_pairs([(0, 1.0), (1, 1.0), (10, 5.0)]).unwrap();
        let d = s.downsample(2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.points()[1].timestamp, 10);
    }

    #[test]
    fn downsample_zero_bucket_errors() {
        let s = TimeSeries::from_values(0, 1, &[1.0]);
        assert!(s.downsample(0).is_err());
    }

    #[test]
    fn version_counters_track_mutations() {
        let mut s = TimeSeries::new();
        assert_eq!((s.version(), s.appended()), (0, 0));
        s.append(1, 1.0).unwrap();
        s.append(2, 2.0).unwrap();
        assert_eq!((s.version(), s.appended()), (2, 2));
        // Expiry that removes nothing does not bump the version.
        assert_eq!(s.expire_before(0), 0);
        assert_eq!((s.version(), s.appended()), (2, 2));
        // Expiry that removes points bumps version but not appended.
        assert_eq!(s.expire_before(2), 1);
        assert_eq!((s.version(), s.appended()), (3, 2));
        // A rejected append leaves both counters untouched.
        assert!(s.append(0, 9.0).is_err());
        assert_eq!((s.version(), s.appended()), (3, 2));
    }

    #[test]
    fn from_values_counts_as_appends() {
        let s = TimeSeries::from_values(0, 1, &[1.0, 2.0, 3.0]);
        assert_eq!((s.version(), s.appended()), (3, 3));
    }

    #[test]
    fn equality_ignores_counters() {
        let a = TimeSeries::from_pairs([(1, 1.0), (2, 2.0)]).unwrap();
        let mut c = TimeSeries::from_values(0, 1, &[0.0, 1.0, 2.0]);
        c.expire_before(1);
        // Same points, different append/expire histories (and counters).
        assert_ne!((a.version(), a.appended()), (c.version(), c.appended()));
        assert_eq!(a, c);
    }

    #[test]
    fn from_pairs_roundtrip() {
        let s = TimeSeries::from_pairs([(5, 1.5), (6, 2.5)]).unwrap();
        assert_eq!(s.values(), vec![1.5, 2.5]);
        assert_eq!(s.first_timestamp(), Some(5));
        assert_eq!(s.last_timestamp(), Some(6));
    }

    // --- compressed-representation tests ---

    /// Builds the same data twice — uncompressed and with the given seal
    /// limit — and asserts every read path agrees bit-for-bit.
    fn assert_repr_parity(n: u64, seal_limit: u32) {
        let mut plain = TimeSeries::new();
        let mut packed = TimeSeries::with_seal_limit(seal_limit);
        for i in 0..n {
            let v = (i as f64 * 0.1).sin() + 1.0;
            plain.append(i * 60, v).unwrap();
            packed.append(i * 60, v).unwrap();
        }
        assert_eq!(plain, packed);
        assert_eq!(plain.len(), packed.len());
        assert_eq!(
            (plain.version(), plain.appended()),
            (packed.version(), packed.appended()),
            "sealing must not touch the counters"
        );
        assert_eq!(plain.first_timestamp(), packed.first_timestamp());
        assert_eq!(plain.last_timestamp(), packed.last_timestamp());
        assert_eq!(plain.points(), packed.points());
        assert_eq!(plain.values(), packed.values());
        let (lo, hi) = (n * 60 / 4, n * 60 * 3 / 4);
        if lo < hi {
            assert_eq!(plain.range_to_vec(lo, hi), packed.range_to_vec(lo, hi));
        }
        for k in [0, 1, n as usize / 2, n as usize, n as usize + 7] {
            assert_eq!(plain.tail_to_vec(k), packed.tail_to_vec(k), "tail {k}");
        }
    }

    #[test]
    fn compressed_matches_uncompressed_across_limits() {
        for limit in [1, 2, 3, 16, 100, 1000] {
            assert_repr_parity(50, limit);
        }
        assert_repr_parity(0, 16);
        assert_repr_parity(1, 16);
    }

    #[test]
    fn sealing_happens_at_the_limit() {
        let mut s = TimeSeries::with_seal_limit(10);
        for i in 0..25 {
            s.append(i * 60, 1.0).unwrap();
        }
        assert_eq!(s.sealed_block_count(), 2);
        assert_eq!(s.head_len(), 5);
        assert_eq!(s.len(), 25);
        assert!(s.as_uncompressed().is_none());
        assert!(s.sealed_bytes() > 0);
    }

    #[test]
    fn uncompressed_points_borrows() {
        let s = TimeSeries::from_values(0, 60, &[1.0, 2.0]);
        assert!(matches!(s.points(), Cow::Borrowed(_)));
        assert!(s.as_uncompressed().is_some());
    }

    #[test]
    fn set_seal_limit_repacks_without_touching_counters() {
        let mut s = TimeSeries::from_values(0, 60, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        let before = (s.version(), s.appended());
        s.set_seal_limit(2);
        assert_eq!(s.sealed_block_count(), 2);
        assert_eq!(s.head_len(), 1);
        assert_eq!((s.version(), s.appended()), before);
        assert_eq!(s.values(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        s.set_seal_limit(0);
        assert_eq!(s.sealed_block_count(), 0);
        assert_eq!(s.head_len(), 5);
        assert_eq!((s.version(), s.appended()), before);
        assert_eq!(s.values(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn expire_drops_whole_blocks_and_splits_straddlers() {
        let mut s = TimeSeries::with_seal_limit(4);
        for i in 0..12 {
            s.append(i * 10, i as f64).unwrap();
        }
        // Blocks: [0..40), [40..80), [80..120); head empty.
        let removed = s.expire_before(50);
        assert_eq!(removed, 5);
        assert_eq!(s.first_timestamp(), Some(50));
        assert_eq!(s.len(), 7);
        assert_eq!(
            s.values(),
            vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0]
        );
    }

    #[test]
    fn expire_bumps_version_once_for_compressed() {
        let mut s = TimeSeries::with_seal_limit(4);
        for i in 0..8 {
            s.append(i, 0.0).unwrap();
        }
        let v = s.version();
        assert_eq!(s.expire_before(3), 3);
        assert_eq!(s.version(), v.wrapping_add(1));
        assert_eq!(s.appended(), 8);
    }

    #[test]
    fn evict_front_block_frees_and_resets() {
        let mut s = TimeSeries::with_seal_limit(4);
        for i in 0..10 {
            s.append(i * 10, i as f64).unwrap();
        }
        let before_bytes = s.resident_bytes();
        let v = s.version();
        let (points, bytes) = s.evict_front_block().unwrap();
        assert_eq!(points, 4);
        assert!(bytes > 0);
        assert_eq!(s.len(), 6);
        assert_eq!(s.resident_bytes(), before_bytes - bytes);
        assert_eq!(s.version(), v.wrapping_add(1), "eviction is a reset");
        assert_eq!(s.first_timestamp(), Some(40));
        // Head untouched.
        assert_eq!(s.head_len(), 2);
    }

    #[test]
    fn evict_on_pure_head_is_none() {
        let mut s = TimeSeries::from_values(0, 1, &[1.0, 2.0]);
        assert!(s.evict_front_block().is_none());
    }

    #[test]
    fn resident_bytes_shrinks_when_sealing() {
        let mut plain = TimeSeries::new();
        let mut packed = TimeSeries::with_seal_limit(64);
        for i in 0..640 {
            plain.append(i * 60, 2.5).unwrap();
            packed.append(i * 60, 2.5).unwrap();
        }
        assert_eq!(plain.resident_bytes(), 640 * 16);
        assert!(
            packed.resident_bytes() < plain.resident_bytes() / 4,
            "constant data should compress >4x: {} vs {}",
            packed.resident_bytes(),
            plain.resident_bytes()
        );
    }

    #[test]
    fn resident_bytes_pins_the_accounting_formula() {
        // The formula every consumer (shard counters, budget eviction,
        // both benches' bytes_per_point) must agree on:
        //   head_points * 16 + sealed payload + sealed_blocks * SUMMARY_BYTES
        let mut s = TimeSeries::with_seal_limit(16);
        for i in 0..70u64 {
            s.append(i * 60, (i as f64).sin()).unwrap();
        }
        assert_eq!(s.sealed_block_count(), 4);
        assert_eq!(s.head_len(), 6);
        assert_eq!(
            s.resident_bytes(),
            s.head_len() * std::mem::size_of::<DataPoint>()
                + s.sealed_bytes()
                + s.sealed_block_count() * SUMMARY_BYTES
        );
        // Evicting a block frees exactly its payload plus its summary.
        let front_payload = s.sealed_blocks()[0].byte_len();
        let before = s.resident_bytes();
        let (_, freed) = s.evict_front_block().unwrap();
        assert_eq!(freed, front_payload + SUMMARY_BYTES);
        assert_eq!(s.resident_bytes(), before - freed);
    }

    #[test]
    fn summaries_expose_sealed_blocks_without_decode() {
        let mut s = TimeSeries::with_seal_limit(8);
        for i in 0..20u64 {
            s.append(i * 60, i as f64).unwrap();
        }
        let sums: Vec<_> = s.summaries().collect();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].count, 8);
        assert_eq!(sums[0].first_ts, 0);
        assert_eq!(sums[0].last_ts, 7 * 60);
        assert_eq!(sums[1].first_ts, 8 * 60);
        assert_eq!(sums[0].min_gap, 60);
        assert_eq!(sums[0].max_gap, 60);
        assert_eq!(s.head().len(), 4);
        assert_eq!(s.head()[0].timestamp, 16 * 60);
    }

    #[test]
    fn tail_to_vec_spans_blocks() {
        let mut s = TimeSeries::with_seal_limit(3);
        for i in 0..10 {
            s.append(i, i as f64).unwrap();
        }
        // head has 1 point; asking for 5 spans two sealed blocks.
        let tail = s.tail_to_vec(5);
        assert_eq!(
            tail.iter().map(|p| p.timestamp).collect::<Vec<_>>(),
            vec![5, 6, 7, 8, 9]
        );
    }

    #[test]
    fn values_scratch_matches_values() {
        let mut s = TimeSeries::with_seal_limit(4);
        for i in 0..11 {
            s.append(i, (i as f64).cos()).unwrap();
        }
        let scratch = s.values_scratch();
        assert_eq!(&*scratch, s.values().as_slice());
    }

    #[test]
    fn block_count_helpers_mirror_decode_paths() {
        let mut s = TimeSeries::with_seal_limit(4);
        for i in 0..18u64 {
            s.append(i * 10, i as f64).unwrap();
        }
        // Blocks: [0..30], [40..70], [80..110], [120..150]; head [160, 170].
        assert_eq!(s.sealed_block_count(), 4);
        assert_eq!(s.head_len(), 2);
        // Range counts mirror range_into's skip/break rules.
        assert_eq!(s.overlapping_block_count(0, 180), 4);
        assert_eq!(s.overlapping_block_count(45, 85), 2);
        assert_eq!(s.overlapping_block_count(160, 180), 0);
        assert_eq!(s.overlapping_block_count(50, 50), 0);
        // Tail counts mirror tail_scratch's walk-back: 0 while the head
        // covers the tail, then whole blocks.
        assert_eq!(s.tail_block_count(2), 0);
        assert_eq!(s.tail_block_count(3), 1);
        assert_eq!(s.tail_block_count(7), 2);
        assert_eq!(s.tail_block_count(100), 4);
    }

    #[test]
    fn summary_bounds_are_conservative_outer_bounds() {
        let mut s = TimeSeries::with_seal_limit(4);
        let values = [1.0, 5.0, f64::NAN, -2.0, 3.0, 4.0, 0.5, 9.0, 7.0, 6.0];
        for (i, v) in values.iter().enumerate() {
            s.append(i as u64 * 60, *v).unwrap();
        }
        // Blocks [0..180] and [240..420]; head [480, 540].
        let full = s.summary_bounds(0, 1_000);
        assert_eq!(full.blocks, 2);
        assert_eq!(full.count_max, 10);
        assert_eq!(full.nan_count_max, 1);
        assert_eq!(full.min, -2.0);
        assert_eq!(full.max, 9.0);
        assert_eq!(full.min_gap, 60);
        // A sub-range still charges every overlapping block whole: the
        // bounds enclose the true decode of the same range.
        let partial = s.summary_bounds(120, 300);
        assert_eq!(partial.blocks, 2);
        assert_eq!(partial.count_max, 8);
        let decoded = s.range_to_vec(120, 300);
        assert!(decoded.len() <= partial.count_max);
        for p in &decoded {
            if p.value.is_finite() {
                assert!(p.value >= partial.min && p.value <= partial.max);
            }
        }
        // Head-only range is exact.
        let head = s.summary_bounds(480, 1_000);
        assert_eq!(head.blocks, 0);
        assert_eq!((head.count_max, head.nan_count_max), (2, 0));
        assert_eq!((head.min, head.max), (6.0, 7.0));
        assert_eq!(head.min_gap, 60);
        // Inverted range is empty with sentinels intact.
        let empty = s.summary_bounds(500, 100);
        assert_eq!(empty.count_max, 0);
        assert!(empty.min.is_infinite() && empty.max.is_infinite());
    }

    #[test]
    fn nan_survives_seal_roundtrip() {
        let mut s = TimeSeries::with_seal_limit(2);
        s.append(0, f64::NAN).unwrap();
        s.append(1, -0.0).unwrap();
        s.append(2, 0.0).unwrap();
        let vals = s.values();
        assert!(vals[0].is_nan());
        assert_eq!(vals[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(vals[2].to_bits(), 0.0f64.to_bits());
    }
}
