//! A single append-only time series.

use crate::types::{DataPoint, Timestamp};
use crate::{Result, TsdbError};

/// An append-only, timestamp-ordered series of samples.
///
/// Two monotonic counters let readers detect *how* a series changed since a
/// prior observation without diffing points: `version` advances on every
/// mutation, `appended` only on appends. When both counters advanced by the
/// same amount, the change was append-only and exactly that many points were
/// pushed onto the tail — the basis of the streaming scan engine's O(k)
/// delta snapshots.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<DataPoint>,
    version: u64,
    appended: u64,
}

/// Equality compares the stored points only: two series with identical data
/// are equal even if they arrived by different append/expire histories.
impl PartialEq for TimeSeries {
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
    }
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Builds a series from `(timestamp, value)` pairs; the pairs must be in
    /// non-decreasing timestamp order.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Timestamp, f64)>) -> Result<Self> {
        let mut s = TimeSeries::new();
        for (t, v) in pairs {
            s.append(t, v)?;
        }
        Ok(s)
    }

    /// Builds a series from values sampled at a fixed interval starting at
    /// `start`.
    pub fn from_values(start: Timestamp, interval: Timestamp, values: &[f64]) -> Self {
        let points: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| DataPoint::new(start + i as Timestamp * interval, v))
            .collect();
        let n = points.len() as u64;
        TimeSeries {
            points,
            version: n,
            appended: n,
        }
    }

    /// Appends a sample; timestamps must be non-decreasing.
    pub fn append(&mut self, timestamp: Timestamp, value: f64) -> Result<()> {
        if let Some(last) = self.points.last() {
            if timestamp < last.timestamp {
                return Err(TsdbError::OutOfOrderAppend {
                    last: last.timestamp,
                    attempted: timestamp,
                });
            }
        }
        self.points.push(DataPoint::new(timestamp, value));
        self.version = self.version.wrapping_add(1);
        self.appended = self.appended.wrapping_add(1);
        Ok(())
    }

    /// Monotonic mutation counter: advances on every append or expiry.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Marks this series as the replacement of one whose mutation counter
    /// had reached `old_version`, jumping `version` far enough past it that
    /// no observation of the old lineage can alias as `Unchanged` (version
    /// equal) or `Appended` (version delta equal to append delta): the new
    /// version delta exceeds any possible append delta.
    pub(crate) fn mark_replacement_of(&mut self, old_version: u64) {
        self.version = old_version
            .wrapping_add(self.appended)
            .wrapping_add(2)
            .max(self.version);
    }

    /// Monotonic append counter: advances only when a point is appended.
    ///
    /// `version - appended` (as observed deltas between two reads) tells a
    /// snapshotting reader whether anything other than appends happened.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points, in timestamp order.
    pub fn points(&self) -> &[DataPoint] {
        &self.points
    }

    /// All values, in timestamp order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Timestamp of the first point.
    pub fn first_timestamp(&self) -> Option<Timestamp> {
        self.points.first().map(|p| p.timestamp)
    }

    /// Timestamp of the last point.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.points.last().map(|p| p.timestamp)
    }

    /// Points with timestamps in `[start, end)`.
    pub fn range(&self, start: Timestamp, end: Timestamp) -> Result<&[DataPoint]> {
        if start >= end {
            return Err(TsdbError::InvalidRange);
        }
        let lo = self.points.partition_point(|p| p.timestamp < start);
        let hi = self.points.partition_point(|p| p.timestamp < end);
        Ok(&self.points[lo..hi])
    }

    /// Values with timestamps in `[start, end)`.
    pub fn values_in(&self, start: Timestamp, end: Timestamp) -> Result<Vec<f64>> {
        Ok(self.range(start, end)?.iter().map(|p| p.value).collect())
    }

    /// Drops all points older than `cutoff` (exclusive). Returns how many
    /// points were removed.
    pub fn expire_before(&mut self, cutoff: Timestamp) -> usize {
        let keep_from = self.points.partition_point(|p| p.timestamp < cutoff);
        let removed = self.points.drain(..keep_from).count();
        if removed > 0 {
            // A non-append mutation: bump `version` but not `appended`, so
            // version-delta != append-delta flags the change to snapshots.
            self.version = self.version.wrapping_add(1);
        }
        removed
    }

    /// Downsamples by averaging points into buckets of `bucket` seconds
    /// aligned to the first timestamp. Returns a new series with one point
    /// per non-empty bucket, timestamped at the bucket start.
    pub fn downsample(&self, bucket: Timestamp) -> Result<TimeSeries> {
        if bucket == 0 {
            return Err(TsdbError::InvalidRange);
        }
        let Some(start) = self.first_timestamp() else {
            return Ok(TimeSeries::new());
        };
        let mut out = TimeSeries::new();
        let mut bucket_start = start;
        let mut sum = 0.0;
        let mut count = 0usize;
        for p in &self.points {
            while p.timestamp >= bucket_start + bucket {
                if count > 0 {
                    out.append(bucket_start, sum / count as f64)?;
                    sum = 0.0;
                    count = 0;
                }
                bucket_start += bucket;
            }
            sum += p.value;
            count += 1;
        }
        if count > 0 {
            out.append(bucket_start, sum / count as f64)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_query() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.append(i * 10, i as f64).unwrap();
        }
        assert_eq!(s.len(), 10);
        let r = s.range(20, 50).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].value, 2.0);
        assert_eq!(s.values_in(0, 1000).unwrap().len(), 10);
    }

    #[test]
    fn rejects_out_of_order() {
        let mut s = TimeSeries::new();
        s.append(100, 1.0).unwrap();
        assert!(matches!(
            s.append(50, 2.0),
            Err(TsdbError::OutOfOrderAppend { .. })
        ));
        // Equal timestamps are allowed (multiple servers reporting at once).
        assert!(s.append(100, 3.0).is_ok());
    }

    #[test]
    fn range_validation() {
        let s = TimeSeries::from_values(0, 1, &[1.0, 2.0]);
        assert!(matches!(s.range(5, 5), Err(TsdbError::InvalidRange)));
        assert!(matches!(s.range(6, 5), Err(TsdbError::InvalidRange)));
    }

    #[test]
    fn range_is_half_open() {
        let s = TimeSeries::from_values(0, 10, &[1.0, 2.0, 3.0]);
        let r = s.range(0, 20).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn expire_removes_old_points() {
        let mut s = TimeSeries::from_values(0, 1, &[1.0, 2.0, 3.0, 4.0]);
        let removed = s.expire_before(2);
        assert_eq!(removed, 2);
        assert_eq!(s.first_timestamp(), Some(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn downsample_averages_buckets() {
        let s = TimeSeries::from_values(0, 1, &[1.0, 3.0, 5.0, 7.0]);
        let d = s.downsample(2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.points()[0].value, 2.0);
        assert_eq!(d.points()[1].value, 6.0);
    }

    #[test]
    fn downsample_skips_empty_buckets() {
        let s = TimeSeries::from_pairs([(0, 1.0), (1, 1.0), (10, 5.0)]).unwrap();
        let d = s.downsample(2).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.points()[1].timestamp, 10);
    }

    #[test]
    fn downsample_zero_bucket_errors() {
        let s = TimeSeries::from_values(0, 1, &[1.0]);
        assert!(s.downsample(0).is_err());
    }

    #[test]
    fn version_counters_track_mutations() {
        let mut s = TimeSeries::new();
        assert_eq!((s.version(), s.appended()), (0, 0));
        s.append(1, 1.0).unwrap();
        s.append(2, 2.0).unwrap();
        assert_eq!((s.version(), s.appended()), (2, 2));
        // Expiry that removes nothing does not bump the version.
        assert_eq!(s.expire_before(0), 0);
        assert_eq!((s.version(), s.appended()), (2, 2));
        // Expiry that removes points bumps version but not appended.
        assert_eq!(s.expire_before(2), 1);
        assert_eq!((s.version(), s.appended()), (3, 2));
        // A rejected append leaves both counters untouched.
        assert!(s.append(0, 9.0).is_err());
        assert_eq!((s.version(), s.appended()), (3, 2));
    }

    #[test]
    fn from_values_counts_as_appends() {
        let s = TimeSeries::from_values(0, 1, &[1.0, 2.0, 3.0]);
        assert_eq!((s.version(), s.appended()), (3, 3));
    }

    #[test]
    fn equality_ignores_counters() {
        let a = TimeSeries::from_pairs([(1, 1.0), (2, 2.0)]).unwrap();
        let mut c = TimeSeries::from_values(0, 1, &[0.0, 1.0, 2.0]);
        c.expire_before(1);
        // Same points, different append/expire histories (and counters).
        assert_ne!((a.version(), a.appended()), (c.version(), c.appended()));
        assert_eq!(a, c);
    }

    #[test]
    fn from_pairs_roundtrip() {
        let s = TimeSeries::from_pairs([(5, 1.5), (6, 2.5)]).unwrap();
        assert_eq!(s.values(), vec![1.5, 2.5]);
        assert_eq!(s.first_timestamp(), Some(5));
        assert_eq!(s.last_timestamp(), Some(6));
    }
}
