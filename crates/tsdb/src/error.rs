//! Error type for the time-series store.

use std::fmt;

/// Errors produced by the time-series database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsdbError {
    /// The requested series does not exist.
    SeriesNotFound(String),
    /// A query used an empty or inverted time range.
    InvalidRange,
    /// Points must be appended in non-decreasing timestamp order.
    OutOfOrderAppend {
        /// Timestamp of the last stored point.
        last: u64,
        /// The offending timestamp.
        attempted: u64,
    },
    /// A window configuration was invalid (e.g. zero-length analysis window).
    InvalidWindowConfig(&'static str),
    /// The queried window contains no data.
    EmptyWindow(&'static str),
}

impl fmt::Display for TsdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsdbError::SeriesNotFound(id) => write!(f, "series not found: {id}"),
            TsdbError::InvalidRange => write!(f, "invalid time range"),
            TsdbError::OutOfOrderAppend { last, attempted } => {
                write!(f, "out-of-order append: {attempted} after {last}")
            }
            TsdbError::InvalidWindowConfig(what) => write!(f, "invalid window config: {what}"),
            TsdbError::EmptyWindow(which) => write!(f, "no data in {which} window"),
        }
    }
}

impl std::error::Error for TsdbError {}
