//! In-memory time-series database for the FBDetect reproduction.
//!
//! Production FBDetect reads ~800,000 time series out of Meta's monitoring
//! stores. This crate is the stand-in: series are identified by
//! (service, metric kind, target), points are `(timestamp, value)` pairs,
//! and the store supports the window queries the detection pipeline needs —
//! the *historic*, *analysis*, and *extended* windows of Figure 4 — plus
//! retention, downsampling, and fleet-wide aggregation.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod aggregate;
pub mod block;
pub mod error;
pub mod scratch;
pub mod series;
pub mod snapshot;
pub mod store;
pub mod types;
pub mod window;

pub use block::{BlockBuilder, SealedBlock};
pub use error::TsdbError;
pub use scratch::ScratchPoints;
pub use series::{SummaryBounds, TimeSeries};
pub use store::{
    BatchAppendOutcome, SeriesDelta, SeriesVersion, ShardStats, StoreConfig, StoreStats, TsdbStore,
};
pub use types::{DataPoint, MetricKind, SeriesId, Timestamp};
pub use window::{
    snapshot_bounds, window_coverage, window_coverage_from_counts, windows_from_points,
    windows_from_points_into, windows_from_points_with_coverage, WindowConfig, WindowCoverage,
    WindowedData,
};

/// Convenience alias used by fallible routines in this crate.
pub type Result<T> = std::result::Result<T, TsdbError>;
