//! Core identifiers and value types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds since an arbitrary epoch (the simulator's clock).
pub type Timestamp = u64;

/// One sample of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Sample time.
    pub timestamp: Timestamp,
    /// Sample value.
    pub value: f64,
}

impl DataPoint {
    /// Creates a data point.
    pub fn new(timestamp: Timestamp, value: f64) -> Self {
        DataPoint { timestamp, value }
    }
}

/// The kind of performance metric a series records.
///
/// Matches the paper's metric inventory (§3): CPU, memory, throughput,
/// latency, error rate, coredump count, and application-defined metrics.
/// `GCpu` is the normalized subroutine-level CPU metric of §2/§4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MetricKind {
    /// Normalized subroutine CPU (fraction of stack-trace samples).
    GCpu,
    /// Endpoint-level aggregated cost from end-to-end tracing (§3).
    EndpointCost,
    /// Process-level CPU utilization.
    Cpu,
    /// Resident memory.
    Memory,
    /// Requests per second.
    Throughput,
    /// Request latency.
    Latency,
    /// Fraction of failed requests.
    ErrorRate,
    /// Count of coredumps.
    CoredumpCount,
    /// An application-defined metric.
    Application,
}

impl MetricKind {
    /// Short lowercase name used in metric IDs (e.g. `"gcpu"`).
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::GCpu => "gcpu",
            MetricKind::EndpointCost => "endpoint_cost",
            MetricKind::Cpu => "cpu",
            MetricKind::Memory => "memory",
            MetricKind::Throughput => "throughput",
            MetricKind::Latency => "latency",
            MetricKind::ErrorRate => "error_rate",
            MetricKind::CoredumpCount => "coredumps",
            MetricKind::Application => "application",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifies a monitored time series.
///
/// The `target` distinguishes what within the service is measured: a
/// subroutine name for gCPU series, an endpoint for endpoint-level series,
/// or an empty string for service-wide metrics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeriesId {
    /// Owning service (e.g. `"FrontFaaS"`).
    pub service: String,
    /// What is measured.
    pub metric: MetricKind,
    /// Subroutine, endpoint, or other sub-target; empty for service-wide.
    pub target: String,
}

impl SeriesId {
    /// Creates a series id.
    pub fn new(service: impl Into<String>, metric: MetricKind, target: impl Into<String>) -> Self {
        SeriesId {
            service: service.into(),
            metric,
            target: target.into(),
        }
    }

    /// The paper's "metric ID": subroutine name concatenated with metric
    /// name — the text feature SOMDedup hashes with TF-IDF (§5.5.1).
    pub fn metric_id(&self) -> String {
        if self.target.is_empty() {
            format!("{}.{}", self.service, self.metric)
        } else {
            format!("{}::{}.{}", self.service, self.target, self.metric)
        }
    }
}

impl fmt::Display for SeriesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.metric_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_id_includes_target() {
        let id = SeriesId::new("FrontFaaS", MetricKind::GCpu, "foo::bar");
        assert_eq!(id.metric_id(), "FrontFaaS::foo::bar.gcpu");
    }

    #[test]
    fn metric_id_service_wide() {
        let id = SeriesId::new("TAO", MetricKind::Throughput, "");
        assert_eq!(id.metric_id(), "TAO.throughput");
    }

    #[test]
    fn series_ids_hash_and_order() {
        use std::collections::HashSet;
        let a = SeriesId::new("S", MetricKind::Cpu, "x");
        let b = SeriesId::new("S", MetricKind::Cpu, "y");
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b.clone());
        set.insert(a.clone());
        assert_eq!(set.len(), 2);
        assert!(a < b);
    }

    #[test]
    fn metric_names_are_stable() {
        assert_eq!(MetricKind::GCpu.to_string(), "gcpu");
        assert_eq!(MetricKind::ErrorRate.to_string(), "error_rate");
    }
}
