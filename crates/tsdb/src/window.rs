//! Detection windows (Figure 4).
//!
//! FBDetect divides a series into three parts relative to the scan time:
//! the *historic window* (the comparison baseline), the *analysis window*
//! (where regressions are reported), and the *extended window* (used to
//! evaluate whether an observed regression persists or disappears). Each
//! workload configures its own window lengths and re-run interval (Table 1).

use crate::series::TimeSeries;
use crate::types::Timestamp;
use crate::{Result, TsdbError};

/// Seconds in one hour.
pub const HOUR: u64 = 3_600;
/// Seconds in one day.
pub const DAY: u64 = 24 * HOUR;

/// Lengths of the three detection windows plus the re-run interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Baseline window length in seconds (Table 1 "Historical Window").
    pub historic: u64,
    /// Analysis window length in seconds.
    pub analysis: u64,
    /// Extended window length in seconds; zero disables it (Table 1 "N/A").
    pub extended: u64,
    /// How often the detector re-scans, in seconds.
    pub rerun_interval: u64,
}

impl WindowConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.historic == 0 {
            return Err(TsdbError::InvalidWindowConfig("historic window is zero"));
        }
        if self.analysis == 0 {
            return Err(TsdbError::InvalidWindowConfig("analysis window is zero"));
        }
        if self.rerun_interval == 0 {
            return Err(TsdbError::InvalidWindowConfig("re-run interval is zero"));
        }
        Ok(())
    }

    /// Total span covered by all windows.
    pub fn total_span(&self) -> u64 {
        self.historic + self.analysis + self.extended
    }
}

/// Data extracted for one detection scan.
///
/// Window layout relative to the scan time `now` (Figure 4): the extended
/// window ends at `now`, preceded by the analysis window, preceded by the
/// historic window. When the extended window is disabled the analysis
/// window ends at `now`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedData {
    /// Values in the historic window, time-ordered.
    pub historic: Vec<f64>,
    /// Values in the analysis window, time-ordered.
    pub analysis: Vec<f64>,
    /// Values in the extended window (empty when disabled).
    pub extended: Vec<f64>,
    /// Start of the analysis window.
    pub analysis_start: Timestamp,
    /// End of the analysis window.
    pub analysis_end: Timestamp,
}

impl WindowedData {
    /// Analysis plus extended values, the "post-historic" region.
    pub fn analysis_and_extended(&self) -> Vec<f64> {
        let mut v = self.analysis.clone();
        v.extend_from_slice(&self.extended);
        v
    }

    /// Historic plus analysis plus extended — the whole scan region.
    pub fn all(&self) -> Vec<f64> {
        let mut v = self.historic.clone();
        v.extend_from_slice(&self.analysis);
        v.extend_from_slice(&self.extended);
        v
    }
}

/// Extracts the three windows from `series` for a scan at time `now`.
///
/// Returns an error when the historic or analysis window holds no data;
/// an empty extended window is allowed (it may simply not have elapsed).
pub fn extract_windows(
    series: &TimeSeries,
    config: &WindowConfig,
    now: Timestamp,
) -> Result<WindowedData> {
    config.validate()?;
    let extended_start = now.saturating_sub(config.extended);
    let analysis_end = extended_start;
    let analysis_start = analysis_end.saturating_sub(config.analysis);
    let historic_start = analysis_start.saturating_sub(config.historic);
    let historic = if analysis_start > historic_start {
        series
            .values_in(historic_start, analysis_start)
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    let analysis = if analysis_end > analysis_start {
        series
            .values_in(analysis_start, analysis_end)
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    let extended = if now > extended_start {
        series.values_in(extended_start, now).unwrap_or_default()
    } else {
        Vec::new()
    };
    if historic.is_empty() {
        return Err(TsdbError::EmptyWindow("historic"));
    }
    if analysis.is_empty() {
        return Err(TsdbError::EmptyWindow("analysis"));
    }
    Ok(WindowedData {
        historic,
        analysis,
        extended,
        analysis_start,
        analysis_end,
    })
}

/// Table 1 window configurations, for convenience in tests and benches.
pub mod presets {
    use super::{WindowConfig, DAY, HOUR};

    /// FrontFaaS large-regression configuration (3% threshold).
    pub const FRONTFAAS_LARGE: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 3 * HOUR,
        extended: 0,
        rerun_interval: 30 * 60,
    };
    /// FrontFaaS small-regression configuration (0.005% threshold).
    pub const FRONTFAAS_SMALL: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 4 * HOUR,
        extended: 6 * HOUR,
        rerun_interval: 2 * HOUR,
    };
    /// PythonFaaS large-regression configuration.
    pub const PYTHONFAAS_LARGE: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 6 * HOUR,
        extended: 0,
        rerun_interval: HOUR,
    };
    /// PythonFaaS small-regression configuration.
    pub const PYTHONFAAS_SMALL: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 6 * HOUR,
        extended: 6 * HOUR,
        rerun_interval: 4 * HOUR,
    };
    /// TAO (FrontFaaS traffic) configuration.
    pub const TAO_FRONTFAAS: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 4 * HOUR,
        extended: DAY,
        rerun_interval: 2 * HOUR,
    };
    /// TAO (non-FrontFaaS traffic) configuration.
    pub const TAO_OTHER: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: DAY,
        extended: 6 * HOUR,
        rerun_interval: HOUR,
    };
    /// AdServing short configuration.
    pub const ADSERVING_SHORT: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: DAY,
        extended: 12 * HOUR,
        rerun_interval: 6 * HOUR,
    };
    /// AdServing long configuration.
    pub const ADSERVING_LONG: WindowConfig = WindowConfig {
        historic: 16 * DAY,
        analysis: 9 * DAY,
        extended: 0,
        rerun_interval: DAY,
    };
    /// Invoicer configuration (small service, long windows).
    pub const INVOICER: WindowConfig = WindowConfig {
        historic: 14 * DAY,
        analysis: DAY,
        extended: DAY,
        rerun_interval: 12 * HOUR,
    };
    /// Capacity-Triage supply-side short configuration.
    pub const CT_SUPPLY_SHORT: WindowConfig = WindowConfig {
        historic: 7 * DAY,
        analysis: DAY,
        extended: DAY,
        rerun_interval: 12 * HOUR,
    };
    /// Capacity-Triage supply-side long configuration.
    pub const CT_SUPPLY_LONG: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 7 * DAY,
        extended: DAY,
        rerun_interval: 12 * HOUR,
    };
    /// Capacity-Triage demand-side configuration.
    pub const CT_DEMAND: WindowConfig = WindowConfig {
        historic: 7 * DAY,
        analysis: DAY,
        extended: 0,
        rerun_interval: 12 * HOUR,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_covering(total_seconds: u64, interval: u64) -> TimeSeries {
        let n = (total_seconds / interval) as usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        TimeSeries::from_values(0, interval, &values)
    }

    #[test]
    fn windows_partition_the_scan_region() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 10,
        };
        let s = series_covering(200, 1);
        let w = extract_windows(&s, &cfg, 200).unwrap();
        assert_eq!(w.historic.len(), 100);
        assert_eq!(w.analysis.len(), 50);
        assert_eq!(w.extended.len(), 25);
        // Historic ends where analysis begins; analysis ends where extended
        // begins.
        assert_eq!(*w.historic.last().unwrap() + 1.0, w.analysis[0]);
        assert_eq!(*w.analysis.last().unwrap() + 1.0, w.extended[0]);
        assert_eq!(w.analysis_start, 125);
        assert_eq!(w.analysis_end, 175);
    }

    #[test]
    fn disabled_extended_window_is_empty() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let s = series_covering(200, 1);
        let w = extract_windows(&s, &cfg, 150).unwrap();
        assert!(w.extended.is_empty());
        assert_eq!(w.analysis_end, 150);
    }

    #[test]
    fn empty_analysis_window_errors() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        // The series ends long before the analysis window.
        let s = series_covering(40, 1);
        let err = extract_windows(&s, &cfg, 150).unwrap_err();
        assert_eq!(err, TsdbError::EmptyWindow("analysis"));
    }

    #[test]
    fn empty_historic_window_errors() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        // Data exists only inside the analysis region.
        let s = TimeSeries::from_values(110, 1, &[1.0; 30]);
        let err = extract_windows(&s, &cfg, 150).unwrap_err();
        assert_eq!(err, TsdbError::EmptyWindow("historic"));
    }

    #[test]
    fn zero_window_config_rejected() {
        let bad = WindowConfig {
            historic: 0,
            analysis: 10,
            extended: 0,
            rerun_interval: 10,
        };
        assert!(bad.validate().is_err());
        let s = series_covering(100, 1);
        assert!(extract_windows(&s, &bad, 100).is_err());
    }

    #[test]
    fn presets_are_valid_and_match_table1() {
        use presets::*;
        for cfg in [
            FRONTFAAS_LARGE,
            FRONTFAAS_SMALL,
            PYTHONFAAS_LARGE,
            PYTHONFAAS_SMALL,
            TAO_FRONTFAAS,
            TAO_OTHER,
            ADSERVING_SHORT,
            ADSERVING_LONG,
            INVOICER,
            CT_SUPPLY_SHORT,
            CT_SUPPLY_LONG,
            CT_DEMAND,
        ] {
            cfg.validate().unwrap();
        }
        assert_eq!(FRONTFAAS_SMALL.historic, 10 * DAY);
        assert_eq!(FRONTFAAS_SMALL.analysis, 4 * HOUR);
        assert_eq!(FRONTFAAS_SMALL.extended, 6 * HOUR);
        assert_eq!(INVOICER.historic, 14 * DAY);
        assert_eq!(ADSERVING_LONG.analysis, 9 * DAY);
    }

    #[test]
    fn analysis_and_extended_concatenates() {
        let cfg = WindowConfig {
            historic: 10,
            analysis: 5,
            extended: 5,
            rerun_interval: 1,
        };
        let s = series_covering(20, 1);
        let w = extract_windows(&s, &cfg, 20).unwrap();
        let both = w.analysis_and_extended();
        assert_eq!(both.len(), 10);
        assert_eq!(w.all().len(), 20);
    }
}
