//! Detection windows (Figure 4).
//!
//! FBDetect divides a series into three parts relative to the scan time:
//! the *historic window* (the comparison baseline), the *analysis window*
//! (where regressions are reported), and the *extended window* (used to
//! evaluate whether an observed regression persists or disappears). Each
//! workload configures its own window lengths and re-run interval (Table 1).

use crate::series::TimeSeries;
use crate::types::{DataPoint, Timestamp};
use crate::{Result, TsdbError};

/// Seconds in one hour.
pub const HOUR: u64 = 3_600;
/// Seconds in one day.
pub const DAY: u64 = 24 * HOUR;

/// Lengths of the three detection windows plus the re-run interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Baseline window length in seconds (Table 1 "Historical Window").
    pub historic: u64,
    /// Analysis window length in seconds.
    pub analysis: u64,
    /// Extended window length in seconds; zero disables it (Table 1 "N/A").
    pub extended: u64,
    /// How often the detector re-scans, in seconds.
    pub rerun_interval: u64,
}

impl WindowConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.historic == 0 {
            return Err(TsdbError::InvalidWindowConfig("historic window is zero"));
        }
        if self.analysis == 0 {
            return Err(TsdbError::InvalidWindowConfig("analysis window is zero"));
        }
        if self.rerun_interval == 0 {
            return Err(TsdbError::InvalidWindowConfig("re-run interval is zero"));
        }
        Ok(())
    }

    /// Total span covered by all windows.
    pub fn total_span(&self) -> u64 {
        self.historic + self.analysis + self.extended
    }
}

/// How completely each window was populated, relative to the series'
/// observed sample cadence.
///
/// Collectors drop samples, arrive late, or start mid-window; rather than
/// silently handing truncated windows to the detectors, window extraction
/// reports what fraction of the expected samples each window actually
/// holds. A fraction of `1.0` means the window is as dense as the series'
/// steady-state cadence predicts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowCoverage {
    /// Fraction of expected historic samples present, in `[0, 1]`.
    pub historic: f64,
    /// Fraction of expected analysis samples present, in `[0, 1]`.
    pub analysis: f64,
    /// Fraction of expected extended samples present, in `[0, 1]`;
    /// `1.0` when the extended window is disabled.
    pub extended: f64,
}

impl Default for WindowCoverage {
    /// Full coverage — the assumption before any gaps are observed.
    fn default() -> Self {
        WindowCoverage {
            historic: 1.0,
            analysis: 1.0,
            extended: 1.0,
        }
    }
}

impl WindowCoverage {
    /// Whether the historic or analysis window is sparser than
    /// `min_fraction`. The extended window is excluded: it ends at the scan
    /// time, so it is routinely mid-fill under ingestion lag.
    pub fn is_partial(&self, min_fraction: f64) -> bool {
        self.historic < min_fraction || self.analysis < min_fraction
    }

    /// The sparsest of the three window fractions.
    pub fn min_fraction(&self) -> f64 {
        self.historic.min(self.analysis).min(self.extended)
    }
}

/// Data extracted for one detection scan.
///
/// Window layout relative to the scan time `now` (Figure 4): the extended
/// window ends at `now`, preceded by the analysis window, preceded by the
/// historic window. When the extended window is disabled the analysis
/// window ends at `now`.
///
/// The three windows live in one contiguous buffer with region offsets, so
/// every accessor — including [`WindowedData::all`] and
/// [`WindowedData::analysis_and_extended`] — returns a borrowed slice
/// without copying. Detectors walk these regions on every series of every
/// scan; the old three-`Vec` layout re-concatenated them on each call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowedData {
    /// Historic, analysis, then extended values, time-ordered, contiguous.
    values: Vec<f64>,
    /// Number of leading values belonging to the historic window.
    historic_len: usize,
    /// Number of values after the historic region belonging to the analysis
    /// window; the remainder of the buffer is the extended window.
    analysis_len: usize,
    /// Start of the analysis window.
    pub analysis_start: Timestamp,
    /// End of the analysis window.
    pub analysis_end: Timestamp,
    /// How completely each window was populated.
    pub coverage: WindowCoverage,
}

impl WindowedData {
    /// Builds windowed data from an already-concatenated buffer and region
    /// lengths. This is the zero-copy constructor extraction uses.
    ///
    /// Region lengths exceeding `values.len()` are clamped to the buffer
    /// (debug builds assert instead) so the region slices stay in bounds.
    pub fn from_parts(
        values: Vec<f64>,
        historic_len: usize,
        analysis_len: usize,
        analysis_start: Timestamp,
        analysis_end: Timestamp,
        coverage: WindowCoverage,
    ) -> Self {
        debug_assert!(
            historic_len + analysis_len <= values.len(),
            "window regions exceed the value buffer"
        );
        // Clamp defensively in release builds so a malformed split can
        // never push the region slices out of bounds.
        let historic_len = historic_len.min(values.len());
        let analysis_len = analysis_len.min(values.len() - historic_len);
        WindowedData {
            values,
            historic_len,
            analysis_len,
            analysis_start,
            analysis_end,
            coverage,
        }
    }

    /// Builds windowed data by concatenating three region slices. Convenience
    /// constructor for tests and synthetic fixtures; coverage defaults to
    /// full.
    pub fn from_regions(
        historic: &[f64],
        analysis: &[f64],
        extended: &[f64],
        analysis_start: Timestamp,
        analysis_end: Timestamp,
    ) -> Self {
        let mut values = Vec::with_capacity(historic.len() + analysis.len() + extended.len());
        values.extend_from_slice(historic);
        values.extend_from_slice(analysis);
        values.extend_from_slice(extended);
        WindowedData {
            values,
            historic_len: historic.len(),
            analysis_len: analysis.len(),
            analysis_start,
            analysis_end,
            coverage: WindowCoverage::default(),
        }
    }

    /// Values in the historic window, time-ordered.
    pub fn historic(&self) -> &[f64] {
        &self.values[..self.historic_len]
    }

    /// Values in the analysis window, time-ordered.
    pub fn analysis(&self) -> &[f64] {
        &self.values[self.historic_len..self.historic_len + self.analysis_len]
    }

    /// Values in the extended window (empty when disabled).
    pub fn extended(&self) -> &[f64] {
        &self.values[self.historic_len + self.analysis_len..]
    }

    /// Number of samples in the historic window.
    pub fn historic_len(&self) -> usize {
        self.historic_len
    }

    /// Number of samples in the analysis window.
    pub fn analysis_len(&self) -> usize {
        self.analysis_len
    }

    /// Number of samples in the extended window.
    pub fn extended_len(&self) -> usize {
        self.values.len() - self.historic_len - self.analysis_len
    }

    /// Total number of samples across all three windows.
    pub fn total_len(&self) -> usize {
        self.values.len()
    }

    /// Analysis plus extended values, the "post-historic" region.
    pub fn analysis_and_extended(&self) -> &[f64] {
        &self.values[self.historic_len..]
    }

    /// Historic plus analysis plus extended — the whole scan region.
    pub fn all(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the whole buffer, for in-place value transforms
    /// (e.g. orienting throughput metrics so drops read as regressions).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the windows, returning the contiguous value buffer
    /// (historic ++ analysis ++ extended) without copying.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Mutable view of the analysis region, for tests and fixtures.
    pub fn analysis_mut(&mut self) -> &mut [f64] {
        &mut self.values[self.historic_len..self.historic_len + self.analysis_len]
    }
}

/// Estimates the sample cadence over a time-ordered point slice as the
/// smallest positive gap between consecutive timestamps. Dropped samples
/// only widen gaps and duplicated timestamps produce zero gaps, so the
/// minimum positive gap is robust to both. Returns `None` when no two
/// distinct timestamps exist in the slice.
fn estimate_cadence(points: &[DataPoint]) -> Option<u64> {
    points
        .windows(2)
        .map(|w| w[1].timestamp - w[0].timestamp)
        .filter(|&gap| gap > 0)
        .min()
}

/// Sub-slice of a time-ordered point slice with timestamps in `[start, end)`.
fn points_in(points: &[DataPoint], start: Timestamp, end: Timestamp) -> &[DataPoint] {
    if start >= end {
        return &[];
    }
    let lo = points.partition_point(|p| p.timestamp < start);
    let hi = points.partition_point(|p| p.timestamp < end);
    &points[lo..hi]
}

/// Bounds `[start, end)` of the point range a scan at `now` can read: the
/// three detection windows plus the cadence-estimation span. Snapshots copy
/// exactly this range out of a series so windowing can run lock-free.
pub fn snapshot_bounds(config: &WindowConfig, now: Timestamp) -> (Timestamp, Timestamp) {
    let extended_start = now.saturating_sub(config.extended);
    let analysis_start = extended_start.saturating_sub(config.analysis);
    let historic_start = analysis_start.saturating_sub(config.historic);
    (historic_start, now.max(historic_start + 1))
}

/// Coverage fraction: samples present vs. expected at the given cadence.
fn coverage_fraction(present: usize, window_seconds: u64, cadence: Option<u64>) -> f64 {
    if window_seconds == 0 {
        return 1.0;
    }
    let Some(cadence) = cadence else {
        // Cadence unknown (at most one distinct timestamp in the whole
        // region): coverage cannot be judged, so report only empty/non-empty.
        return if present == 0 { 0.0 } else { 1.0 };
    };
    let expected = (window_seconds as f64 / cadence as f64).max(1.0);
    (present as f64 / expected).min(1.0)
}

/// Coverage of the three detection windows for a scan at `now`, computed
/// from a time-ordered point slice without building window buffers. This is
/// the exact coverage [`windows_from_points_into`] attaches to its result —
/// the streaming engine's online-advance path calls it directly so the
/// `partial` flag it replays is bit-identical to what a cold scan would have
/// produced.
pub fn window_coverage(
    points: &[DataPoint],
    config: &WindowConfig,
    now: Timestamp,
) -> WindowCoverage {
    let extended_start = now.saturating_sub(config.extended);
    let analysis_end = extended_start;
    let analysis_start = analysis_end.saturating_sub(config.analysis);
    let historic_start = analysis_start.saturating_sub(config.historic);
    let historic = points_in(points, historic_start, analysis_start);
    let analysis = points_in(points, analysis_start, analysis_end);
    let extended = points_in(points, extended_start, now);
    let cadence = estimate_cadence(points_in(
        points,
        historic_start,
        now.max(historic_start + 1),
    ));
    window_coverage_from_counts(
        historic.len(),
        analysis.len(),
        extended.len(),
        cadence,
        config,
        now,
    )
}

/// [`window_coverage`] from precomputed region point counts and an
/// externally maintained cadence (the minimum positive timestamp gap over
/// the scan range). The streaming engine's online-advance path already
/// knows every region's point count from its partition bookkeeping and
/// tracks the minimum gap incrementally per append, so it can produce the
/// `partial` flag without rescanning the window's timestamps. Bit-identical
/// to [`window_coverage`] given matching counts and cadence: both feed the
/// same `coverage_fraction`.
pub fn window_coverage_from_counts(
    historic_present: usize,
    analysis_present: usize,
    extended_present: usize,
    cadence: Option<u64>,
    config: &WindowConfig,
    now: Timestamp,
) -> WindowCoverage {
    let extended_start = now.saturating_sub(config.extended);
    let analysis_end = extended_start;
    let analysis_start = analysis_end.saturating_sub(config.analysis);
    let historic_start = analysis_start.saturating_sub(config.historic);
    WindowCoverage {
        historic: coverage_fraction(
            historic_present,
            analysis_start.saturating_sub(historic_start),
            cadence,
        ),
        analysis: coverage_fraction(
            analysis_present,
            analysis_end.saturating_sub(analysis_start),
            cadence,
        ),
        extended: if config.extended == 0 {
            1.0
        } else {
            coverage_fraction(extended_present, now.saturating_sub(extended_start), cadence)
        },
    }
}

/// Extracts the three windows from `series` for a scan at time `now`.
///
/// Returns an error only when the historic or analysis window holds *no*
/// data at all (there is nothing to detect on); an empty extended window is
/// allowed (it may simply not have elapsed). Sparse windows — collectors
/// dropping samples, late-arriving data, series that start mid-window — are
/// returned with explicit [`WindowCoverage`] instead of being silently
/// truncated, so callers can decide how much missing data they tolerate.
pub fn extract_windows(
    series: &TimeSeries,
    config: &WindowConfig,
    now: Timestamp,
) -> Result<WindowedData> {
    if let Some(points) = series.as_uncompressed() {
        // Uncompressed fast path: window straight off the borrowed slice.
        return windows_from_points(points, config, now);
    }
    // Compressed: decode only the scan range. `windows_from_points` ignores
    // out-of-range points anyway, so trimming here changes nothing but the
    // amount of decoding.
    let (start, end) = snapshot_bounds(config, now);
    let points = series.range_to_vec(start, end);
    windows_from_points(&points, config, now)
}

/// Extracts detection windows from an already-copied, time-ordered point
/// slice — the lock-free half of a snapshot scan. Semantics are identical to
/// [`extract_windows`]; points outside the scan region are ignored.
pub fn windows_from_points(
    points: &[DataPoint],
    config: &WindowConfig,
    now: Timestamp,
) -> Result<WindowedData> {
    windows_from_points_into(points, config, now, Vec::new())
}

/// [`windows_from_points`] with a caller-provided value buffer, so a
/// steady-state scan loop can reuse one allocation per series across rounds.
/// The buffer is cleared before use; its capacity is preserved.
// fbd-lint::hot
pub fn windows_from_points_into(
    points: &[DataPoint],
    config: &WindowConfig,
    now: Timestamp,
    values: Vec<f64>,
) -> Result<WindowedData> {
    build_windows(points, config, now, values, None)
}

/// [`windows_from_points_into`] with a precomputed [`WindowCoverage`], for
/// callers that already know the verdict without rescanning timestamps.
/// The streaming engine's fresh-scan arm derives it from its partition
/// bookkeeping and incremental gap runs via
/// [`window_coverage_from_counts`] — bit-identical to what
/// [`window_coverage`] would recompute over `points`, which is the
/// contract: the caller MUST supply exactly that value, or warm and cold
/// scans of the same data diverge.
// fbd-lint::hot
pub fn windows_from_points_with_coverage(
    points: &[DataPoint],
    config: &WindowConfig,
    now: Timestamp,
    values: Vec<f64>,
    coverage: WindowCoverage,
) -> Result<WindowedData> {
    build_windows(points, config, now, values, Some(coverage))
}

/// Shared body of the two extraction entry points: partition, validate,
/// fill the contiguous buffer, then attach the supplied coverage or
/// rescan for it.
// fbd-lint::hot
fn build_windows(
    points: &[DataPoint],
    config: &WindowConfig,
    now: Timestamp,
    mut values: Vec<f64>,
    coverage: Option<WindowCoverage>,
) -> Result<WindowedData> {
    config.validate()?;
    let extended_start = now.saturating_sub(config.extended);
    let analysis_end = extended_start;
    let analysis_start = analysis_end.saturating_sub(config.analysis);
    let historic_start = analysis_start.saturating_sub(config.historic);
    // Borrow each region directly from the slice (binary search, no copy)
    // and fill a single contiguous buffer in one pass.
    let historic = points_in(points, historic_start, analysis_start);
    let analysis = points_in(points, analysis_start, analysis_end);
    let extended = points_in(points, extended_start, now);
    if historic.is_empty() {
        return Err(TsdbError::EmptyWindow("historic"));
    }
    if analysis.is_empty() {
        return Err(TsdbError::EmptyWindow("analysis"));
    }
    values.clear();
    values.reserve(historic.len() + analysis.len() + extended.len());
    values.extend(historic.iter().map(|p| p.value));
    values.extend(analysis.iter().map(|p| p.value));
    values.extend(extended.iter().map(|p| p.value));
    let coverage = match coverage {
        Some(c) => c,
        None => window_coverage(points, config, now),
    };
    Ok(WindowedData::from_parts(
        values,
        historic.len(),
        analysis.len(),
        analysis_start,
        analysis_end,
        coverage,
    ))
}

/// Table 1 window configurations, for convenience in tests and benches.
pub mod presets {
    use super::{WindowConfig, DAY, HOUR};

    /// FrontFaaS large-regression configuration (3% threshold).
    pub const FRONTFAAS_LARGE: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 3 * HOUR,
        extended: 0,
        rerun_interval: 30 * 60,
    };
    /// FrontFaaS small-regression configuration (0.005% threshold).
    pub const FRONTFAAS_SMALL: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 4 * HOUR,
        extended: 6 * HOUR,
        rerun_interval: 2 * HOUR,
    };
    /// PythonFaaS large-regression configuration.
    pub const PYTHONFAAS_LARGE: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 6 * HOUR,
        extended: 0,
        rerun_interval: HOUR,
    };
    /// PythonFaaS small-regression configuration.
    pub const PYTHONFAAS_SMALL: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 6 * HOUR,
        extended: 6 * HOUR,
        rerun_interval: 4 * HOUR,
    };
    /// TAO (FrontFaaS traffic) configuration.
    pub const TAO_FRONTFAAS: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 4 * HOUR,
        extended: DAY,
        rerun_interval: 2 * HOUR,
    };
    /// TAO (non-FrontFaaS traffic) configuration.
    pub const TAO_OTHER: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: DAY,
        extended: 6 * HOUR,
        rerun_interval: HOUR,
    };
    /// AdServing short configuration.
    pub const ADSERVING_SHORT: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: DAY,
        extended: 12 * HOUR,
        rerun_interval: 6 * HOUR,
    };
    /// AdServing long configuration.
    pub const ADSERVING_LONG: WindowConfig = WindowConfig {
        historic: 16 * DAY,
        analysis: 9 * DAY,
        extended: 0,
        rerun_interval: DAY,
    };
    /// Invoicer configuration (small service, long windows).
    pub const INVOICER: WindowConfig = WindowConfig {
        historic: 14 * DAY,
        analysis: DAY,
        extended: DAY,
        rerun_interval: 12 * HOUR,
    };
    /// Capacity-Triage supply-side short configuration.
    pub const CT_SUPPLY_SHORT: WindowConfig = WindowConfig {
        historic: 7 * DAY,
        analysis: DAY,
        extended: DAY,
        rerun_interval: 12 * HOUR,
    };
    /// Capacity-Triage supply-side long configuration.
    pub const CT_SUPPLY_LONG: WindowConfig = WindowConfig {
        historic: 10 * DAY,
        analysis: 7 * DAY,
        extended: DAY,
        rerun_interval: 12 * HOUR,
    };
    /// Capacity-Triage demand-side configuration.
    pub const CT_DEMAND: WindowConfig = WindowConfig {
        historic: 7 * DAY,
        analysis: DAY,
        extended: 0,
        rerun_interval: 12 * HOUR,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_covering(total_seconds: u64, interval: u64) -> TimeSeries {
        let n = (total_seconds / interval) as usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        TimeSeries::from_values(0, interval, &values)
    }

    #[test]
    fn windows_partition_the_scan_region() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 10,
        };
        let s = series_covering(200, 1);
        let w = extract_windows(&s, &cfg, 200).unwrap();
        assert_eq!(w.historic_len(), 100);
        assert_eq!(w.analysis_len(), 50);
        assert_eq!(w.extended_len(), 25);
        // Historic ends where analysis begins; analysis ends where extended
        // begins.
        assert_eq!(*w.historic().last().unwrap() + 1.0, w.analysis()[0]);
        assert_eq!(*w.analysis().last().unwrap() + 1.0, w.extended()[0]);
        assert_eq!(w.analysis_start, 125);
        assert_eq!(w.analysis_end, 175);
    }

    #[test]
    fn disabled_extended_window_is_empty() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let s = series_covering(200, 1);
        let w = extract_windows(&s, &cfg, 150).unwrap();
        assert!(w.extended().is_empty());
        assert_eq!(w.analysis_end, 150);
    }

    #[test]
    fn empty_analysis_window_errors() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        // The series ends long before the analysis window.
        let s = series_covering(40, 1);
        let err = extract_windows(&s, &cfg, 150).unwrap_err();
        assert_eq!(err, TsdbError::EmptyWindow("analysis"));
    }

    #[test]
    fn empty_historic_window_errors() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        // Data exists only inside the analysis region.
        let s = TimeSeries::from_values(110, 1, &[1.0; 30]);
        let err = extract_windows(&s, &cfg, 150).unwrap_err();
        assert_eq!(err, TsdbError::EmptyWindow("historic"));
    }

    #[test]
    fn zero_window_config_rejected() {
        let bad = WindowConfig {
            historic: 0,
            analysis: 10,
            extended: 0,
            rerun_interval: 10,
        };
        assert!(bad.validate().is_err());
        let s = series_covering(100, 1);
        assert!(extract_windows(&s, &bad, 100).is_err());
    }

    #[test]
    fn presets_are_valid_and_match_table1() {
        use presets::*;
        for cfg in [
            FRONTFAAS_LARGE,
            FRONTFAAS_SMALL,
            PYTHONFAAS_LARGE,
            PYTHONFAAS_SMALL,
            TAO_FRONTFAAS,
            TAO_OTHER,
            ADSERVING_SHORT,
            ADSERVING_LONG,
            INVOICER,
            CT_SUPPLY_SHORT,
            CT_SUPPLY_LONG,
            CT_DEMAND,
        ] {
            cfg.validate().unwrap();
        }
        assert_eq!(FRONTFAAS_SMALL.historic, 10 * DAY);
        assert_eq!(FRONTFAAS_SMALL.analysis, 4 * HOUR);
        assert_eq!(FRONTFAAS_SMALL.extended, 6 * HOUR);
        assert_eq!(INVOICER.historic, 14 * DAY);
        assert_eq!(ADSERVING_LONG.analysis, 9 * DAY);
    }

    #[test]
    fn full_windows_report_full_coverage() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 10,
        };
        let s = series_covering(200, 1);
        let w = extract_windows(&s, &cfg, 200).unwrap();
        assert_eq!(w.coverage, WindowCoverage::default());
        assert!(!w.coverage.is_partial(0.9));
        assert_eq!(w.coverage.min_fraction(), 1.0);
    }

    #[test]
    fn dropped_samples_lower_coverage() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        // 1 Hz cadence, but half the analysis window's samples are missing.
        let pairs = (0..100)
            .map(|t| (t, 1.0))
            .chain((100..150).filter(|t| t % 2 == 0).map(|t| (t, 1.0)));
        let s = TimeSeries::from_pairs(pairs).unwrap();
        let w = extract_windows(&s, &cfg, 150).unwrap();
        assert!((w.coverage.historic - 1.0).abs() < 1e-9);
        assert!((w.coverage.analysis - 0.5).abs() < 1e-9);
        assert!(w.coverage.is_partial(0.8));
        assert!(!w.coverage.is_partial(0.4));
    }

    #[test]
    fn young_series_reports_partial_historic() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        // The series starts three quarters into the historic window.
        let s = TimeSeries::from_values(75, 1, &[1.0; 75]);
        let w = extract_windows(&s, &cfg, 150).unwrap();
        assert!((w.coverage.historic - 0.25).abs() < 1e-9);
        assert!((w.coverage.analysis - 1.0).abs() < 1e-9);
        assert!(w.coverage.is_partial(0.5));
    }

    #[test]
    fn late_extended_window_reports_low_coverage() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 50,
            rerun_interval: 10,
        };
        // No data has arrived for the extended window yet.
        let s = series_covering(150, 1);
        let w = extract_windows(&s, &cfg, 200).unwrap();
        assert_eq!(w.coverage.extended, 0.0);
        // is_partial ignores the extended window (routinely mid-fill).
        assert!(!w.coverage.is_partial(0.9));
        assert_eq!(w.coverage.min_fraction(), 0.0);
    }

    #[test]
    fn duplicated_timestamps_do_not_inflate_coverage() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 0,
            rerun_interval: 10,
        };
        let pairs = (0..150).flat_map(|t| [(t, 1.0), (t, 1.0)]);
        let s = TimeSeries::from_pairs(pairs).unwrap();
        let w = extract_windows(&s, &cfg, 150).unwrap();
        assert_eq!(w.coverage.historic, 1.0);
        assert_eq!(w.coverage.analysis, 1.0);
    }

    #[test]
    fn windows_from_points_matches_extract_windows() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 10,
        };
        // Irregular cadence with gaps and duplicate timestamps.
        let pairs = (0..200u64)
            .filter(|t| t % 7 != 3)
            .flat_map(|t| if t % 31 == 0 { vec![(t, 1.0), (t, 2.0)] } else { vec![(t, t as f64)] });
        let s = TimeSeries::from_pairs(pairs).unwrap();
        for now in [60, 150, 199, 240] {
            let via_series = extract_windows(&s, &cfg, now);
            let via_points = windows_from_points(&s.points(), &cfg, now);
            assert_eq!(via_series, via_points, "now = {now}");
        }
    }

    #[test]
    fn windows_from_points_ignores_out_of_range_points() {
        let cfg = WindowConfig {
            historic: 50,
            analysis: 25,
            extended: 0,
            rerun_interval: 5,
        };
        let s = series_covering(300, 1);
        let now = 200;
        let (start, end) = snapshot_bounds(&cfg, now);
        assert_eq!((start, end), (125, 200));
        let full = extract_windows(&s, &cfg, now).unwrap();
        // Only the snapshot range is needed; extra points around it are
        // ignored by the boundary partitioning.
        let trimmed: Vec<DataPoint> = s
            .points()
            .iter()
            .filter(|p| p.timestamp >= start && p.timestamp < end)
            .copied()
            .collect();
        assert_eq!(windows_from_points(&trimmed, &cfg, now).unwrap(), full);
    }

    #[test]
    fn windows_from_points_into_reuses_buffer() {
        let cfg = WindowConfig {
            historic: 20,
            analysis: 10,
            extended: 0,
            rerun_interval: 5,
        };
        let s = series_covering(40, 1);
        let buf = Vec::with_capacity(1024);
        let w = windows_from_points_into(&s.points(), &cfg, 40, buf).unwrap();
        assert_eq!(w.total_len(), 30);
        let recovered = w.into_values();
        assert!(recovered.capacity() >= 1024);
    }

    #[test]
    fn snapshot_bounds_saturate_near_zero() {
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 10,
        };
        assert_eq!(snapshot_bounds(&cfg, 60), (0, 60));
        assert_eq!(snapshot_bounds(&cfg, 0), (0, 1));
        assert_eq!(snapshot_bounds(&cfg, 500), (325, 500));
    }

    #[test]
    fn coverage_from_counts_matches_rescan_on_sparse_data() {
        // The streaming engine's online-advance path feeds precomputed
        // region counts and an incrementally maintained min-gap into
        // `window_coverage_from_counts`; over sparse, bursty, and
        // duplicate-timestamp data the verdict must be bit-identical to the
        // timestamp-rescanning `window_coverage`.
        let cfg = WindowConfig {
            historic: 100,
            analysis: 50,
            extended: 25,
            rerun_interval: 10,
        };
        let cases: Vec<Vec<DataPoint>> = vec![
            // Regular cadence with a hole across the analysis window.
            (0..200u64)
                .filter(|t| !(130..150).contains(t))
                .map(|t| DataPoint {
                    timestamp: t,
                    value: 1.0,
                })
                .collect(),
            // Sparse cadence-5 samples plus duplicate timestamps.
            (0..40u64)
                .flat_map(|i| {
                    let t = i * 5;
                    [
                        DataPoint {
                            timestamp: t,
                            value: 1.0,
                        },
                        DataPoint {
                            timestamp: t,
                            value: 2.0,
                        },
                    ]
                })
                .collect(),
            // A single burst entirely inside the extended window.
            (180..200u64)
                .map(|t| DataPoint {
                    timestamp: t,
                    value: 1.0,
                })
                .collect(),
            // One lonely point: cadence is unknowable.
            vec![DataPoint {
                timestamp: 160,
                value: 1.0,
            }],
        ];
        for (i, points) in cases.iter().enumerate() {
            let rescan = window_coverage(points, &cfg, 200);
            let (start, cad_end) = snapshot_bounds(&cfg, 200);
            let historic = points_in(points, start, 125).len();
            let analysis = points_in(points, 125, 175).len();
            let extended = points_in(points, 175, 200).len();
            let cadence = estimate_cadence(points_in(points, start, cad_end));
            let counted =
                window_coverage_from_counts(historic, analysis, extended, cadence, &cfg, 200);
            assert_eq!(
                rescan.historic.to_bits(),
                counted.historic.to_bits(),
                "case {i} historic"
            );
            assert_eq!(
                rescan.analysis.to_bits(),
                counted.analysis.to_bits(),
                "case {i} analysis"
            );
            assert_eq!(
                rescan.extended.to_bits(),
                counted.extended.to_bits(),
                "case {i} extended"
            );
        }
    }

    #[test]
    fn analysis_and_extended_concatenates() {
        let cfg = WindowConfig {
            historic: 10,
            analysis: 5,
            extended: 5,
            rerun_interval: 1,
        };
        let s = series_covering(20, 1);
        let w = extract_windows(&s, &cfg, 20).unwrap();
        let both = w.analysis_and_extended();
        assert_eq!(both.len(), 10);
        assert_eq!(w.all().len(), 20);
    }
}
