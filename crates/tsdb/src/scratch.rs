//! Thread-local scratch arena for [`DataPoint`] buffers.
//!
//! The streaming engine re-snapshots every scanned series each round:
//! [`crate::TsdbStore::snapshot_deltas`] copies each series' appended tail
//! (or, on reset, its whole scan range) into an owned buffer so the store
//! shard lock is held only for the raw copy. Allocating that buffer fresh
//! per series per round puts the global allocator on the round loop —
//! exactly the per-call traffic `fbd_stats::scratch::ScratchVec` removed
//! from the detectors. [`ScratchPoints`] is the same design for point
//! buffers: checkout from a per-thread pool, return capacity on drop.
//!
//! ## Determinism contract
//!
//! Identical to `ScratchVec`: only spare *capacity* is recycled, never
//! values — every checkout hands back an empty buffer — so computations
//! using pooled buffers are bit-identical to ones using fresh allocations.
//! The pool is thread-local: no locking, no cross-thread sharing, and a
//! re-entrant checkout (pool already borrowed) falls back to a plain
//! allocation rather than panicking.

use crate::types::DataPoint;
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Maximum number of idle buffers retained per thread. A snapshot batch
/// holds one buffer per in-flight series delta; shard batches run to a few
/// hundred series, and buffers past the cap simply free.
const MAX_POOLED: usize = 256;

/// Largest capacity (in points, 1 MiB) worth keeping. Bigger buffers are
/// one-off reset copies of unusually long series and are freed on drop.
const MAX_RETAINED_CAPACITY: usize = 1 << 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<DataPoint>>> = const { RefCell::new(Vec::new()) };
}

/// A [`DataPoint`] buffer checked out of the thread-local pool; spare
/// capacity returns to the pool when dropped. Derefs to `Vec<DataPoint>`,
/// so it can be indexed, sliced, extended, and passed as
/// `&mut Vec<DataPoint>` like any vector.
#[derive(Debug, Default)]
pub struct ScratchPoints {
    buf: Vec<DataPoint>,
}

impl ScratchPoints {
    fn acquire() -> Vec<DataPoint> {
        POOL.with(|p| match p.try_borrow_mut() {
            Ok(mut pool) => pool.pop().unwrap_or_default(),
            // Pool busy (re-entrant use): fall back to a fresh allocation.
            Err(_) => Vec::new(),
        })
    }

    /// An empty scratch buffer with at least `cap` spare capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut buf = Self::acquire();
        buf.clear();
        buf.reserve(cap);
        ScratchPoints { buf }
    }

    /// A scratch copy of `src`.
    pub fn copied(src: &[DataPoint]) -> Self {
        let mut buf = Self::acquire();
        buf.clear();
        buf.extend_from_slice(src);
        ScratchPoints { buf }
    }

    /// Moves the buffer out as a plain `Vec`, e.g. to hand ownership to a
    /// long-lived structure. The extracted vector is no longer pooled.
    pub fn into_vec(mut self) -> Vec<DataPoint> {
        std::mem::take(&mut self.buf)
    }
}

impl Clone for ScratchPoints {
    fn clone(&self) -> Self {
        ScratchPoints::copied(&self.buf)
    }
}

impl PartialEq for ScratchPoints {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl PartialEq<Vec<DataPoint>> for ScratchPoints {
    fn eq(&self, other: &Vec<DataPoint>) -> bool {
        self.buf == *other
    }
}

impl Drop for ScratchPoints {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 || self.buf.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        POOL.with(|p| {
            if let Ok(mut pool) = p.try_borrow_mut() {
                if pool.len() < MAX_POOLED {
                    pool.push(buf);
                }
            }
        });
    }
}

impl Deref for ScratchPoints {
    type Target = Vec<DataPoint>;

    fn deref(&self) -> &Vec<DataPoint> {
        &self.buf
    }
}

impl DerefMut for ScratchPoints {
    fn deref_mut(&mut self) -> &mut Vec<DataPoint> {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(t: u64, v: f64) -> DataPoint {
        DataPoint {
            timestamp: t,
            value: v,
        }
    }

    #[test]
    fn checkout_is_empty_even_after_reuse() {
        {
            let mut a = ScratchPoints::with_capacity(8);
            a.push(pt(1, 7.5));
        }
        let b = ScratchPoints::with_capacity(8);
        assert!(b.is_empty());
    }

    #[test]
    fn capacity_is_recycled_across_checkouts() {
        let cap = {
            let mut a = ScratchPoints::with_capacity(100);
            a.push(pt(1, 1.0));
            a.capacity()
        };
        let b = ScratchPoints::with_capacity(10);
        assert!(
            b.capacity() >= 10 && b.capacity() <= cap.max(1024),
            "expected a pooled buffer, got capacity {}",
            b.capacity()
        );
    }

    #[test]
    fn copied_matches_source() {
        let src = [pt(1, 1.0), pt(2, f64::NAN)];
        let c = ScratchPoints::copied(&src);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], pt(1, 1.0));
        assert!(c[1].value.is_nan());
    }

    #[test]
    fn into_vec_detaches_from_pool() {
        let v = ScratchPoints::copied(&[pt(4, 0.5)]).into_vec();
        assert_eq!(v, vec![pt(4, 0.5)]);
    }
}
