//! Store snapshots: serialize a whole store to a compact line-oriented
//! format and restore it.
//!
//! The bench harness and examples generate expensive simulations; snapshots
//! let a generated store be persisted and reloaded without rerunning the
//! simulator. The format is deliberately simple and versioned: one header
//! line, then one line per series (`service\tmetric\ttarget\tt:v,t:v,...`).

use crate::series::TimeSeries;
use crate::store::TsdbStore;
use crate::types::{MetricKind, SeriesId};
use crate::{Result, TsdbError};
use std::io::{BufRead, BufReader, Read, Write};

const HEADER: &str = "fbdetect-tsdb-snapshot v1";

fn metric_from_name(name: &str) -> Option<MetricKind> {
    Some(match name {
        "gcpu" => MetricKind::GCpu,
        "endpoint_cost" => MetricKind::EndpointCost,
        "cpu" => MetricKind::Cpu,
        "memory" => MetricKind::Memory,
        "throughput" => MetricKind::Throughput,
        "latency" => MetricKind::Latency,
        "error_rate" => MetricKind::ErrorRate,
        "coredumps" => MetricKind::CoredumpCount,
        "application" => MetricKind::Application,
        _ => return None,
    })
}

/// Writes a snapshot of the whole store.
pub fn write_snapshot<W: Write>(store: &TsdbStore, mut writer: W) -> Result<()> {
    let io_err = |_| TsdbError::InvalidWindowConfig("snapshot write failed");
    writeln!(writer, "{HEADER}").map_err(io_err)?;
    for id in store.series_ids() {
        store.with_series(&id, |series| {
            write!(
                writer,
                "{}\t{}\t{}\t",
                id.service,
                id.metric.name(),
                id.target
            )
            .map_err(io_err)?;
            let mut first = true;
            // Streaming decode: sealed blocks are never materialized.
            for p in series.iter() {
                if !first {
                    write!(writer, ",").map_err(io_err)?;
                }
                first = false;
                write!(writer, "{}:{}", p.timestamp, p.value).map_err(io_err)?;
            }
            writeln!(writer).map_err(io_err)
        })??;
    }
    Ok(())
}

/// Reads a snapshot into a fresh store with the default (uncompressed)
/// storage policy.
pub fn read_snapshot<R: Read>(reader: R) -> Result<TsdbStore> {
    read_snapshot_with_config(reader, crate::store::StoreConfig::default())
}

/// Reads a snapshot into a fresh store with an explicit storage policy —
/// the text format carries raw points, so restoring into a compressed
/// store re-encodes each series through [`TsdbStore::insert_series`].
pub fn read_snapshot_with_config<R: Read>(
    reader: R,
    config: crate::store::StoreConfig,
) -> Result<TsdbStore> {
    let parse_err = TsdbError::InvalidWindowConfig("malformed snapshot");
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or(parse_err.clone())?
        .map_err(|_| parse_err.clone())?;
    if header != HEADER {
        return Err(TsdbError::InvalidWindowConfig("unknown snapshot version"));
    }
    let store = TsdbStore::with_config(config);
    for line in lines {
        let line = line.map_err(|_| parse_err.clone())?;
        if line.is_empty() {
            continue;
        }
        let mut fields = line.splitn(4, '\t');
        let service = fields.next().ok_or(parse_err.clone())?;
        let metric = fields
            .next()
            .and_then(metric_from_name)
            .ok_or(parse_err.clone())?;
        let target = fields.next().ok_or(parse_err.clone())?;
        let points = fields.next().ok_or(parse_err.clone())?;
        let mut series = TimeSeries::new();
        if !points.is_empty() {
            for pair in points.split(',') {
                let (t, v) = pair.split_once(':').ok_or(parse_err.clone())?;
                let t: u64 = t.parse().map_err(|_| parse_err.clone())?;
                let v: f64 = v.parse().map_err(|_| parse_err.clone())?;
                series.append(t, v)?;
            }
        }
        store.insert_series(SeriesId::new(service, metric, target), series);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_store() -> TsdbStore {
        let store = TsdbStore::new();
        store
            .append(&SeriesId::new("svc", MetricKind::GCpu, "foo"), 10, 0.125)
            .unwrap();
        store
            .append(&SeriesId::new("svc", MetricKind::GCpu, "foo"), 20, 0.25)
            .unwrap();
        store
            .append(&SeriesId::new("other", MetricKind::Throughput, ""), 5, 1e6)
            .unwrap();
        store
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = demo_store();
        let mut buf = Vec::new();
        write_snapshot(&store, &mut buf).unwrap();
        let restored = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(restored.series_count(), store.series_count());
        for id in store.series_ids() {
            assert_eq!(restored.get(&id).unwrap(), store.get(&id).unwrap());
        }
    }

    #[test]
    fn roundtrip_preserves_float_precision() {
        let store = TsdbStore::new();
        let id = SeriesId::new("s", MetricKind::GCpu, "x");
        // Values that are not exactly representable in short decimal.
        for (t, v) in [(0u64, 0.1f64), (1, 1.0 / 3.0), (2, 5e-17)] {
            store.append(&id, t, v).unwrap();
        }
        let mut buf = Vec::new();
        write_snapshot(&store, &mut buf).unwrap();
        let restored = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(restored.get(&id).unwrap(), store.get(&id).unwrap());
    }

    #[test]
    fn compressed_store_roundtrips_and_reencodes() {
        use crate::store::StoreConfig;
        let store = TsdbStore::compressed();
        let id = SeriesId::new("s", MetricKind::GCpu, "x");
        for t in 0..300u64 {
            store.append(&id, t * 60, (t as f64 * 0.1).sin()).unwrap();
        }
        let mut buf = Vec::new();
        write_snapshot(&store, &mut buf).unwrap();
        // Restore into a compressed store: points re-encode on load.
        let restored = read_snapshot_with_config(buf.as_slice(), StoreConfig::compressed()).unwrap();
        assert_eq!(restored.get(&id).unwrap(), store.get(&id).unwrap());
        assert!(restored.stats().sealed_blocks() > 0);
        // And into an uncompressed one: same data, plain representation.
        let plain = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(plain.get(&id).unwrap(), store.get(&id).unwrap());
        assert_eq!(plain.stats().sealed_blocks(), 0);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(read_snapshot("nope\n".as_bytes()).is_err());
        assert!(read_snapshot("".as_bytes()).is_err());
    }

    #[test]
    fn malformed_line_rejected() {
        let text = format!("{HEADER}\nsvc\tgcpu\tfoo\tnot-a-point\n");
        assert!(read_snapshot(text.as_bytes()).is_err());
        let text = format!("{HEADER}\nsvc\tnosuchmetric\tfoo\t1:2\n");
        assert!(read_snapshot(text.as_bytes()).is_err());
    }

    #[test]
    fn all_metric_kinds_roundtrip() {
        use MetricKind::*;
        let store = TsdbStore::new();
        for (i, m) in [
            GCpu,
            EndpointCost,
            Cpu,
            Memory,
            Throughput,
            Latency,
            ErrorRate,
            CoredumpCount,
            Application,
        ]
        .into_iter()
        .enumerate()
        {
            store
                .append(&SeriesId::new("s", m, format!("t{i}")), 0, i as f64)
                .unwrap();
        }
        let mut buf = Vec::new();
        write_snapshot(&store, &mut buf).unwrap();
        let restored = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(restored.series_count(), 9);
    }

    #[test]
    fn empty_store_roundtrips() {
        let mut buf = Vec::new();
        write_snapshot(&TsdbStore::new(), &mut buf).unwrap();
        let restored = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(restored.series_count(), 0);
    }
}
