//! Long-term (gradual) regression detection (§5.3).
//!
//! Three steps, in the *opposite* order of the short-term path:
//!
//! 1. **Seasonality decomposition** first: STL splits the series and the
//!    detector works on the trend alone (smoothing helps gradual changes,
//!    hurts sudden ones — hence the ordering difference);
//! 2. **Regression detection** on the trend: baseline = max(mean at start
//!    of analysis window, mean at start of historic window); current =
//!    min(mean at end of analysis window, mean at end of extended window);
//!    report when `current - baseline` clears the threshold;
//! 3. **Change-point location**: fit a line to the normalized trend; a low
//!    RMSE means a gradual change starting at the beginning of the trend,
//!    otherwise a dynamic-programming search with normal loss finds the
//!    variance-minimizing partition point.

use crate::config::{DetectorConfig, Threshold};
use crate::scan_cache::ScanCache;
use crate::types::{Regression, RegressionKind};
use crate::Result;
use fbd_stats::acf;
use fbd_stats::changepoint::optimal_single_split;
use fbd_stats::descriptive;
use fbd_stats::regression::linear_fit;
use fbd_stats::stl::{decompose, StlConfig};
use fbd_tsdb::{SeriesId, Timestamp, WindowedData};

/// Loess window fraction of the no-seasonality trend fallback. Every site
/// that smooths or bounds the fallback trend (the full smooth in
/// `detect_inner`/[`ScanCache::trend`], the four edge-region means in
/// [`LongTermDetector::detect_streaming`], and the pre-filter dilation)
/// must use this one constant or the pre-filter's conservativeness proof
/// breaks.
pub(crate) const TREND_FRACTION: f64 = 0.1;

/// Geometry shared by the trend pre-filter and its online replica in the
/// streaming engine: the four sliding-mean regions the detector's decision
/// reduces to, the sliding-window width, and the dilation that covers the
/// widest Loess half-window either trend path can use. The replica must
/// evaluate *identical* regions for its refutation to imply the cold
/// pre-filter's, so both construct the geometry here.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrefilterGeometry {
    /// Sliding-mean window width (the detector's region width).
    pub edge: usize,
    /// Region dilation on each side, covering the Loess half-window.
    pub dilation: usize,
    /// `[start_of_historic, start_of_analysis, end_of_analysis,
    /// end_of_series]` as half-open index ranges into the window buffer.
    pub regions: [(usize, usize); 4],
}

/// Builds the pre-filter geometry for an `n`-point window, or `None` when
/// the pre-filter must not run (analysis region too short to bound, or the
/// sliding window would not fit the data).
pub(crate) fn prefilter_geometry(
    n: usize,
    h_len: usize,
    a_len: usize,
    max_period: usize,
) -> Option<PrefilterGeometry> {
    if a_len < 4 {
        return None;
    }
    let edge = (a_len / 4).max(2).min(a_len);
    if edge > n {
        return None;
    }
    // Widest Loess half-window either trend path can use: the fallback
    // smooths with window `ceil(TREND_FRACTION·n)`, and the STL trend for
    // period p uses window `(3p).div_ceil(2) | 1` — STL only runs when
    // `n >= 2p`, so p is capped at `min(max_period, n/2)`.
    let fallback_half = ((TREND_FRACTION * n as f64).ceil() as usize) / 2;
    let p_max = max_period.min(n / 2);
    let stl_half = ((3 * p_max).div_ceil(2) | 1) / 2;
    let dilation = fallback_half.max(stl_half) + 1;
    let analysis_end = (h_len + a_len).min(n);
    Some(PrefilterGeometry {
        edge,
        dilation,
        regions: [
            (0, edge.min(h_len).max(1)),
            (h_len, (h_len + edge).min(n)),
            (analysis_end.saturating_sub(edge), analysis_end),
            (n.saturating_sub(edge), n),
        ],
    })
}

/// The long-term regression detector.
#[derive(Debug, Clone)]
pub struct LongTermDetector {
    threshold: Threshold,
    rmse_fraction: f64,
    acf_threshold: f64,
    max_period: usize,
}

impl LongTermDetector {
    /// Creates a detector from the pipeline configuration.
    pub fn from_config(config: &DetectorConfig) -> Self {
        LongTermDetector {
            threshold: config.threshold,
            rmse_fraction: config.long_term_rmse_fraction,
            acf_threshold: config.seasonality_acf_threshold,
            max_period: config.max_seasonal_period,
        }
    }

    /// Scans one series' windows for a gradual regression.
    ///
    /// Runs the O(n) prefix-stats pre-filter first and skips the STL/Loess
    /// machinery entirely for provably-flat series; otherwise delegates to
    /// [`Self::detect_without_prefilter`].
    pub fn detect(
        &self,
        series: &SeriesId,
        windows: &WindowedData,
        now: Timestamp,
    ) -> Result<Option<Regression>> {
        self.detect_cached(series, windows, now, None)
    }

    /// [`Self::detect`] with a cross-scan [`ScanCache`]: the seasonality
    /// search and the STL/Loess trend are reused when this series' window
    /// is unchanged since a previous round.
    pub fn detect_cached(
        &self,
        series: &SeriesId,
        windows: &WindowedData,
        now: Timestamp,
        cache: Option<&ScanCache>,
    ) -> Result<Option<Regression>> {
        let data = windows.all();
        if data.len() >= 16
            && self.prefilter_says_flat(
                data,
                windows.historic_len(),
                windows.analysis_len(),
                windows.extended_len(),
            )
        {
            return Ok(None);
        }
        self.detect_inner(series, windows, now, cache)
    }

    /// Cheap O(n) trend pre-filter.
    ///
    /// The detector compares region means of the *smoothed* trend. Every
    /// trend value is a kernel-weighted local average of the raw data within
    /// one Loess half-window, so a region mean of the trend behaves like a
    /// mixture of short sliding means of the raw data near that region. The
    /// pre-filter therefore bounds the detector's best case from sliding
    /// means of width `edge` (the detector's own region width) over each
    /// region dilated by the widest Loess half-window: `baseline` is at
    /// least the larger of the two start regions' minimum sliding means, and
    /// `current` is at most the end regions' maximum sliding means. When
    /// even that optimistic pair cannot meet the threshold the full detector
    /// cannot report, and STL is skipped.
    ///
    /// Returns `false` (do not skip) whenever the bound is not provably
    /// conservative: short analysis windows, non-finite data (which must
    /// still surface errors from the full path), or a relative threshold
    /// with a non-positive baseline bound (where `Threshold::is_met` is not
    /// monotone in the baseline). Verified two ways: a property test checks
    /// that skipped series are exactly series the full detector rejects, and
    /// the fleet-seed acceptance run checks scan decisions are unchanged.
    fn prefilter_says_flat(
        &self,
        data: &[f64],
        h_len: usize,
        a_len: usize,
        extended_len: usize,
    ) -> bool {
        // `validated` rejects non-finite data, so error paths still reach
        // the full detector.
        let Ok(prefix) = fbd_stats::prefix::validated(data, 16) else {
            return false;
        };
        let n = data.len();
        let Some(geo) = prefilter_geometry(n, h_len, a_len, self.max_period) else {
            return false;
        };
        let [start_hist, start_anal, end_anal, end_series] = geo
            .regions
            .map(|(lo, hi)| sliding_mean_bounds(&prefix, lo, hi, geo.dilation, geo.edge));
        let baseline_lb = start_hist.0.max(start_anal.0);
        let current_ub = if extended_len == 0 {
            end_anal.1
        } else {
            end_anal.1.min(end_series.1)
        };
        if !baseline_lb.is_finite() || !current_ub.is_finite() {
            return false;
        }
        // `is_met` is monotone (decreasing in baseline, increasing in
        // current) for absolute thresholds always, and for relative
        // thresholds only when the baseline bound is positive and the
        // threshold non-negative — exactly the cases where refuting the
        // optimistic pair refutes every pair in the box.
        let monotone_safe = match self.threshold {
            Threshold::Absolute(_) => true,
            Threshold::Relative(t) => t >= 0.0 && baseline_lb > 0.0,
        };
        monotone_safe && !self.threshold.is_met(baseline_lb, current_ub)
    }

    /// [`Self::detect_cached`] specialized for the streaming engine: when
    /// the series has no seasonality, the wide Loess trend is only ever
    /// consumed through four edge-region means, so those regions are
    /// evaluated directly with the per-point kernel — O(edge·window)
    /// instead of smoothing all n points — and the scan concludes `None`
    /// when even the guard-banded optimistic pair cannot meet the
    /// threshold. Any other outcome (seasonal series, near-threshold
    /// margin, degenerate regions) falls back to the full path, which the
    /// shared [`ScanCache`] keeps cheap, so decisions are bit-identical to
    /// [`Self::detect_cached`].
    pub fn detect_streaming(
        &self,
        series: &SeriesId,
        windows: &WindowedData,
        now: Timestamp,
        cache: &ScanCache,
    ) -> Result<Option<Regression>> {
        let data = windows.all();
        if data.len() < 16 {
            return Ok(None);
        }
        if self.prefilter_says_flat(
            data,
            windows.historic_len(),
            windows.analysis_len(),
            windows.extended_len(),
        ) {
            return Ok(None);
        }
        let season =
            cache.seasonality(series, data, 2, self.max_period, self.acf_threshold)?;
        let period = season.map(|s| s.period).unwrap_or(0);
        if period >= 2 && data.len() >= period * 2 {
            // Seasonal: STL's trend has no cheap region shortcut.
            return self.detect_inner(series, windows, now, Some(cache));
        }
        let h_len = windows.historic_len();
        let a_len = windows.analysis_len();
        if a_len < 4 {
            return Ok(None);
        }
        let n = data.len();
        let edge = (a_len / 4).max(2).min(a_len);
        let analysis_end = (h_len + a_len).min(n);
        // The exact regions detect_inner averages the trend over.
        let regions = [
            (0, edge.min(h_len).max(1)),
            (h_len, (h_len + edge).min(n)),
            (analysis_end.saturating_sub(edge), analysis_end),
            (n.saturating_sub(edge), n),
        ];
        let mut means = [0.0; 4];
        for (slot, &(lo, hi)) in means.iter_mut().zip(&regions) {
            match fbd_stats::stl::loess_uniform_range_mean(data, TREND_FRACTION, lo, hi) {
                Ok(m) => *slot = m,
                // Empty region: the full path errors here; reproduce that.
                Err(_) => return self.detect_inner(series, windows, now, Some(cache)),
            }
        }
        let baseline = means[0].max(means[1]);
        let current = if windows.extended_len() == 0 {
            means[2]
        } else {
            means[2].min(means[3])
        };
        // Per-point edge evaluation can differ from the dispatched smooth by
        // ~1e-9·scale; a 1e-6·scale guard band dwarfs that, so refuting the
        // optimistic (baseline − g, current + g) pair refutes the true pair
        // whenever the threshold is monotone over the guard box.
        let scale = data.iter().fold(1.0f64, |a, v| a.max(v.abs()));
        let guard = 1e-6 * scale;
        let monotone_safe = match self.threshold {
            Threshold::Absolute(_) => true,
            Threshold::Relative(t) => t >= 0.0 && baseline - guard > 0.0,
        };
        if baseline.is_finite()
            && current.is_finite()
            && monotone_safe
            && !self.threshold.is_met(baseline - guard, current + guard)
        {
            return Ok(None);
        }
        self.detect_inner(series, windows, now, Some(cache))
    }

    /// The full STL/Loess detection path, without the pre-filter. Public so
    /// tests can verify the pre-filter only skips series this path rejects.
    pub fn detect_without_prefilter(
        &self,
        series: &SeriesId,
        windows: &WindowedData,
        now: Timestamp,
    ) -> Result<Option<Regression>> {
        self.detect_inner(series, windows, now, None)
    }

    fn detect_inner(
        &self,
        series: &SeriesId,
        windows: &WindowedData,
        _now: Timestamp,
        cache: Option<&ScanCache>,
    ) -> Result<Option<Regression>> {
        let data = windows.all();
        if data.len() < 16 {
            return Ok(None);
        }
        // Step 1: seasonality decomposition; the trend is the subject.
        let season = match cache {
            Some(c) => c.seasonality(series, data, 2, self.max_period, self.acf_threshold)?,
            None => acf::find_seasonality(data, 2, self.max_period, self.acf_threshold)?,
        };
        let period = season.map(|s| s.period).unwrap_or(0);
        let use_stl = period >= 2 && data.len() >= period * 2;
        let trend = match cache {
            // The cache applies the identical period → trend mapping
            // (`period == 0` encodes the Loess fallback).
            Some(c) => c.trend(series, data, if use_stl { period } else { 0 })?,
            None if use_stl => decompose(data, StlConfig::for_period(period))?.trend,
            // No seasonality: a wide Loess smooth stands in for the trend.
            None => fbd_stats::stl::loess_smooth_uniform(data, TREND_FRACTION)?,
        };
        // Step 2: regression detection on the trend alone.
        let h_len = windows.historic_len();
        let a_len = windows.analysis_len();
        if a_len < 4 {
            return Ok(None);
        }
        let edge = (a_len / 4).max(2).min(a_len);
        let start_of_historic = descriptive::mean(&trend[..edge.min(h_len).max(1)])?;
        let start_of_analysis = descriptive::mean(&trend[h_len..(h_len + edge).min(trend.len())])?;
        let baseline = start_of_historic.max(start_of_analysis);
        let analysis_end = (h_len + a_len).min(trend.len());
        let end_of_analysis =
            descriptive::mean(&trend[analysis_end.saturating_sub(edge)..analysis_end])?;
        let end_of_series = descriptive::mean(&trend[trend.len().saturating_sub(edge)..])?;
        let current = if windows.extended_len() == 0 {
            end_of_analysis
        } else {
            end_of_analysis.min(end_of_series)
        };
        if !self.threshold.is_met(baseline, current) {
            return Ok(None);
        }
        // Step 3: change-point location.
        let mut normalized = trend.clone();
        let cp = match descriptive::z_normalize(&mut normalized) {
            Ok(_) => {
                let fit = linear_fit(&normalized)?;
                let trend_std = 1.0; // Normalized.
                if fit.rmse < self.rmse_fraction * trend_std {
                    // Gradual change: the change point is the beginning of
                    // the trend.
                    0
                } else {
                    optimal_single_split(&trend)?.index
                }
            }
            Err(_) => 0, // Constant trend cannot reach here, but be safe.
        };
        let mean_before = descriptive::mean(&trend[..(cp + 1).min(trend.len())])?;
        let span = windows.analysis_end.saturating_sub(windows.analysis_start);
        let change_time = if cp <= h_len {
            windows.analysis_start
        } else {
            windows.analysis_start + span * (cp - h_len) as u64 / a_len.max(1) as u64
        };
        Ok(Some(Regression {
            series: series.clone(),
            kind: RegressionKind::LongTerm,
            change_index: cp,
            change_time,
            mean_before: mean_before.min(baseline),
            mean_after: current,
            windows: windows.clone(),
            root_cause_candidates: Vec::new(),
        }))
    }
}

/// Min and max mean over every width-`edge` window of the series that
/// intersects the region `[lo, hi)` dilated by `d` on both sides. Each
/// window mean is O(1) via the prefix sums, so a region scan is O(region +
/// 2d). Falls back to the dilated region's own mean when no full window
/// fits.
fn sliding_mean_bounds(
    prefix: &fbd_stats::prefix::PrefixStats,
    lo: usize,
    hi: usize,
    d: usize,
    edge: usize,
) -> (f64, f64) {
    let n = prefix.len();
    let lo = lo.saturating_sub(d);
    let hi = (hi + d).min(n);
    if edge == 0 || edge > n {
        let m = prefix.segment_mean(lo, hi);
        return (m, m);
    }
    // Window starts whose span [s, s + edge) intersects [lo, hi).
    let first = lo.saturating_sub(edge - 1);
    let last = hi.min(n - edge + 1);
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for s in first..last {
        let m = prefix.segment_mean(s, s + edge);
        min = min.min(m);
        max = max.max(m);
    }
    if min > max {
        let m = prefix.segment_mean(lo, hi);
        (m, m)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_tsdb::MetricKind;

    fn sid() -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, "foo")
    }

    fn windows(historic: Vec<f64>, analysis: Vec<f64>, extended: Vec<f64>) -> WindowedData {
        WindowedData::from_regions(&historic, &analysis, &extended, 10_000, 20_000)
    }

    fn detector(threshold: f64) -> LongTermDetector {
        LongTermDetector {
            threshold: Threshold::Absolute(threshold),
            rmse_fraction: 0.35,
            acf_threshold: 0.4,
            max_period: 30,
        }
    }

    fn noisy(n: usize, mean: f64, amp: f64, phase: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = (i as u64 ^ phase).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                mean + (((z >> 33) % 1000) as f64 / 1000.0 - 0.5) * amp
            })
            .collect()
    }

    #[test]
    fn detects_gradual_ramp() {
        // The mean drifts up across the analysis window.
        let historic = noisy(200, 1.0, 0.05, 1);
        let analysis: Vec<f64> = (0..200)
            .map(|i| 1.0 + 0.5 * i as f64 / 200.0)
            .zip(noisy(200, 0.0, 0.05, 2))
            .map(|(a, b)| a + b)
            .collect();
        let w = windows(historic, analysis, vec![]);
        let r = detector(0.2).detect(&sid(), &w, 0).unwrap().unwrap();
        assert_eq!(r.kind, RegressionKind::LongTerm);
        assert!(r.magnitude() > 0.2, "magnitude = {}", r.magnitude());
    }

    #[test]
    fn flat_series_not_reported() {
        let w = windows(noisy(200, 1.0, 0.05, 1), noisy(200, 1.0, 0.05, 2), vec![]);
        assert!(detector(0.05).detect(&sid(), &w, 0).unwrap().is_none());
    }

    #[test]
    fn conservative_baseline_uses_max_of_starts() {
        // The historic window starts HIGH and decays; the analysis window
        // then rises back to the historic start. Conservative baselining
        // (max of starts) must not report this as a regression.
        let historic: Vec<f64> = (0..200).map(|i| 2.0 - 0.5 * i as f64 / 200.0).collect();
        let analysis: Vec<f64> = (0..200).map(|i| 1.5 + 0.5 * i as f64 / 200.0).collect();
        let w = windows(historic, analysis, vec![]);
        assert!(detector(0.1).detect(&sid(), &w, 0).unwrap().is_none());
    }

    #[test]
    fn conservative_current_uses_min_of_ends() {
        // The analysis window ends high but the extended window shows the
        // value fell back: min-of-ends suppresses the report.
        let historic = noisy(200, 1.0, 0.02, 1);
        let analysis: Vec<f64> = (0..100).map(|i| 1.0 + 0.6 * i as f64 / 100.0).collect();
        let extended = noisy(100, 1.0, 0.02, 2);
        let w = windows(historic, analysis, extended);
        assert!(detector(0.2).detect(&sid(), &w, 0).unwrap().is_none());
    }

    #[test]
    fn sudden_step_gets_dp_change_point() {
        // A sharp step (poor linear fit) should locate the change point at
        // the step, not at the series start.
        let mut data = noisy(300, 1.0, 0.02, 1);
        for v in data[200..].iter_mut() {
            *v += 1.0;
        }
        let historic = data[..150].to_vec();
        let analysis = data[150..].to_vec();
        let w = windows(historic, analysis, vec![]);
        let r = detector(0.3).detect(&sid(), &w, 0).unwrap().unwrap();
        assert!(
            (185..=215).contains(&r.change_index),
            "cp = {}",
            r.change_index
        );
    }

    #[test]
    fn gradual_ramp_gets_start_change_point() {
        let data: Vec<f64> = (0..400).map(|i| 1.0 + i as f64 / 400.0).collect();
        let historic = data[..200].to_vec();
        let analysis = data[200..].to_vec();
        let w = windows(historic, analysis, vec![]);
        let r = detector(0.2).detect(&sid(), &w, 0).unwrap().unwrap();
        assert_eq!(r.change_index, 0);
    }

    #[test]
    fn short_series_ignored() {
        let w = windows(vec![1.0; 4], vec![1.0; 4], vec![]);
        assert!(detector(0.1).detect(&sid(), &w, 0).unwrap().is_none());
    }

    #[test]
    fn prefilter_skips_flat_but_not_ramp() {
        let d = detector(0.05);
        let flat = windows(noisy(200, 1.0, 0.05, 1), noisy(200, 1.0, 0.05, 2), vec![]);
        assert!(d.prefilter_says_flat(
            flat.all(),
            flat.historic_len(),
            flat.analysis_len(),
            flat.extended_len()
        ));
        let analysis: Vec<f64> = (0..200)
            .map(|i| 1.0 + 0.5 * i as f64 / 200.0)
            .zip(noisy(200, 0.0, 0.05, 2))
            .map(|(a, b)| a + b)
            .collect();
        let ramp = windows(noisy(200, 1.0, 0.05, 1), analysis, vec![]);
        assert!(!d.prefilter_says_flat(
            ramp.all(),
            ramp.historic_len(),
            ramp.analysis_len(),
            ramp.extended_len()
        ));
    }

    #[test]
    fn prefilter_never_flips_a_detection() {
        // Across the module's scenarios, a pre-filter skip must imply the
        // full detector also rejects.
        let cases: Vec<(WindowedData, f64)> = vec![
            (
                windows(noisy(200, 1.0, 0.05, 1), noisy(200, 1.0, 0.05, 2), vec![]),
                0.05,
            ),
            (
                windows(
                    (0..200).map(|i| 2.0 - 0.5 * i as f64 / 200.0).collect(),
                    (0..200).map(|i| 1.5 + 0.5 * i as f64 / 200.0).collect(),
                    vec![],
                ),
                0.1,
            ),
            (
                windows(
                    noisy(200, 1.0, 0.02, 1),
                    (0..100).map(|i| 1.0 + 0.6 * i as f64 / 100.0).collect(),
                    noisy(100, 1.0, 0.02, 2),
                ),
                0.2,
            ),
        ];
        for (w, thr) in cases {
            let d = detector(thr);
            let with = d.detect(&sid(), &w, 0).unwrap();
            let without = d.detect_without_prefilter(&sid(), &w, 0).unwrap();
            assert_eq!(with.is_some(), without.is_some());
        }
    }

    #[test]
    fn streaming_path_decisions_match_cached_path() {
        // The guard-banded edge-mean fast path may only refute candidates
        // the full path would also refute: across flats, ramps, steps,
        // near-threshold margins, and seasonal series, `detect_streaming`
        // and `detect_cached` must agree — and any reported regression must
        // be bit-identical.
        use crate::scan_cache::ScanCache;
        let seasonal: Vec<f64> = (0..200)
            .map(|i| 1.0 + 0.3 * (i as f64 / 12.0 * std::f64::consts::TAU).sin())
            .collect();
        let ramp: Vec<f64> = (0..200).map(|i| 1.0 + 0.5 * i as f64 / 200.0).collect();
        let mut step = noisy(200, 1.0, 0.02, 3);
        for v in step[120..].iter_mut() {
            *v += 0.4;
        }
        let near: Vec<f64> = (0..200).map(|i| 1.0 + 0.101 * i as f64 / 200.0).collect();
        let cases = [
            windows(noisy(200, 1.0, 0.05, 1), noisy(200, 1.0, 0.05, 2), vec![]),
            windows(noisy(200, 1.0, 0.05, 1), ramp, noisy(50, 1.5, 0.05, 4)),
            windows(noisy(200, 1.0, 0.02, 5), step, vec![]),
            windows(noisy(200, 1.0, 0.01, 6), near, vec![]),
            windows(seasonal.clone(), seasonal, vec![]),
        ];
        for (i, w) in cases.iter().enumerate() {
            for thr in [0.05, 0.1, 0.3] {
                let d = detector(thr);
                let cache_a = ScanCache::new();
                let cache_b = ScanCache::new();
                let cached = d.detect_cached(&sid(), w, 0, Some(&cache_a)).unwrap();
                let streaming = d.detect_streaming(&sid(), w, 0, &cache_b).unwrap();
                assert_eq!(
                    format!("{cached:?}"),
                    format!("{streaming:?}"),
                    "case {i} thr {thr}: cached and streaming long-term paths diverged"
                );
            }
        }
    }

    #[test]
    fn prefilter_relative_threshold_guard() {
        // A negative-baseline series with a relative threshold must never be
        // skipped (is_met is not monotone around zero).
        let d = LongTermDetector {
            threshold: Threshold::Relative(0.1),
            rmse_fraction: 0.35,
            acf_threshold: 0.4,
            max_period: 30,
        };
        let w = windows(noisy(200, -1.0, 0.05, 1), noisy(200, -1.0, 0.05, 2), vec![]);
        assert!(!d.prefilter_says_flat(
            w.all(),
            w.historic_len(),
            w.analysis_len(),
            w.extended_len()
        ));
    }
}
