//! Root cause analysis (§5.6).
//!
//! Given a regression, RCA generates candidates from the changes deployed
//! immediately before it, ranks them by weighted relevance factors, and
//! suggests the top three only when confidence is high enough:
//!
//! - **Subroutine gCPU attribution** — the fraction of the regression's
//!   gCPU change attributable to stack-trace samples involving subroutines
//!   the change modified (the Table 2 worked example);
//! - **Text similarity** — cosine similarity between the regression context
//!   (metric id, subroutine, stack frames) and the change context (title,
//!   summary, files);
//! - **Time-series correlation** — how well a step at the change's deploy
//!   time explains the regression series.

use crate::config::DetectorConfig;
use crate::types::Regression;
use crate::Result;
use fbd_changelog::{Change, ChangeId, ChangeLog};
use fbd_profiler::callgraph::{CallGraph, FrameId};
use fbd_profiler::sample::StackSample;
use fbd_stats::regression::pearson;
use fbd_stats::text::{cosine_similarity, weighted_word_vector};

/// Evidence available to RCA beyond the time series itself.
#[derive(Default)]
pub struct RcaContext<'a> {
    /// Stack samples collected before the change point.
    pub samples_before: &'a [StackSample],
    /// Stack samples collected after the change point.
    pub samples_after: &'a [StackSample],
    /// The service's call graph, for resolving subroutine names.
    pub graph: Option<&'a CallGraph>,
}

/// A ranked root-cause candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// The candidate change.
    pub change_id: ChangeId,
    /// Aggregate relevance score in `[0, 1]`.
    pub score: f64,
    /// Per-factor scores: `[gcpu_attribution, text, timing]`.
    pub factors: [f64; 3],
}

/// The root-cause analyzer.
#[derive(Debug, Clone)]
pub struct RootCauseAnalyzer {
    /// Factor weights for `[gcpu_attribution, text, timing]`.
    pub factor_weights: [f64; 3],
    /// Lookback before the change point, in seconds.
    pub lookback: u64,
    /// Minimum top score required before suggesting candidates.
    pub confidence_threshold: f64,
    /// How many candidates to suggest.
    pub top_k: usize,
}

impl RootCauseAnalyzer {
    /// Creates an analyzer from the pipeline configuration.
    pub fn from_config(config: &DetectorConfig) -> Self {
        RootCauseAnalyzer {
            factor_weights: [0.5, 0.25, 0.25],
            lookback: config.rca_lookback,
            confidence_threshold: config.rca_confidence_threshold,
            top_k: 3,
        }
    }

    /// Ranks candidate changes for a regression. Returns an empty list when
    /// no candidate clears the confidence threshold — the paper's behaviour
    /// of not suggesting weak root causes (§6.3).
    pub fn analyze(
        &self,
        regression: &Regression,
        log: &ChangeLog,
        context: &RcaContext<'_>,
    ) -> Result<Vec<RankedCandidate>> {
        let start = regression.change_time.saturating_sub(self.lookback);
        let candidates = log.deployed_between(start, regression.change_time + 1);
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let mut ranked = Vec::with_capacity(candidates.len());
        for change in candidates {
            let attribution = self.gcpu_attribution_factor(regression, change, context);
            let text = self.text_factor(regression, change, context);
            let timing = self.timing_factor(regression, change)?;
            let score = self.factor_weights[0] * attribution
                + self.factor_weights[1] * text
                + self.factor_weights[2] * timing;
            ranked.push(RankedCandidate {
                change_id: change.id,
                score,
                factors: [attribution, text, timing],
            });
        }
        ranked.sort_by(|a, b| b.score.total_cmp(&a.score));
        if ranked
            .first()
            .is_none_or(|c| c.score < self.confidence_threshold)
        {
            return Ok(Vec::new());
        }
        ranked.truncate(self.top_k);
        Ok(ranked)
    }

    /// Factor 1: the fraction of the regression's gCPU change attributable
    /// to samples involving subroutines the change modified.
    fn gcpu_attribution_factor(
        &self,
        regression: &Regression,
        change: &Change,
        context: &RcaContext<'_>,
    ) -> f64 {
        let Some(graph) = context.graph else {
            return 0.0;
        };
        if context.samples_before.is_empty() || context.samples_after.is_empty() {
            return 0.0;
        }
        let Ok(target) = graph.frame_by_name(&regression.series.target) else {
            return 0.0;
        };
        let modified: Vec<FrameId> = change
            .modified_subroutines
            .iter()
            .filter_map(|n| graph.frame_by_name(n).ok())
            .collect();
        if modified.is_empty() {
            return 0.0;
        }
        gcpu_attribution(
            context.samples_before,
            context.samples_after,
            target,
            &modified,
        )
    }

    /// Factor 2: cosine similarity between regression and change contexts.
    fn text_factor(
        &self,
        regression: &Regression,
        change: &Change,
        context: &RcaContext<'_>,
    ) -> f64 {
        let metric_id = regression.metric_id();
        let mut fields: Vec<(&str, f64)> = vec![
            (metric_id.as_str(), 1.0),
            (regression.series.target.as_str(), 2.0),
        ];
        // Include stack-frame names around the regressed subroutine when a
        // graph is available (the paper's "stack traces (if available)").
        let frame_names: String = context
            .graph
            .and_then(|g| {
                let id = g.frame_by_name(&regression.series.target).ok()?;
                let path = g.path_to_root(id).ok()?;
                Some(
                    path.iter()
                        .filter_map(|&f| g.frame(f).ok().map(|fr| fr.name.clone()))
                        .collect::<Vec<String>>()
                        .join(" "),
                )
            })
            .unwrap_or_default();
        if !frame_names.is_empty() {
            fields.push((frame_names.as_str(), 1.0));
        }
        let regression_vector = weighted_word_vector(&fields);
        let files = change.files.join(" ");
        let change_vector = weighted_word_vector(&[
            (change.title.as_str(), 2.0),
            (change.summary.as_str(), 1.0),
            (files.as_str(), 1.0),
            (change.modified_subroutines.join(" ").as_str(), 2.0),
        ]);
        cosine_similarity(&regression_vector, &change_vector)
    }

    /// Factor 3: Pearson correlation between the series and a unit step at
    /// the change's deploy time.
    fn timing_factor(&self, regression: &Regression, change: &Change) -> Result<f64> {
        let values = regression.windows.all();
        let n = values.len();
        if n < 4 {
            return Ok(0.0);
        }
        // Reconstruct per-sample timestamps from the analysis window bounds.
        let a_len = regression.windows.analysis_len().max(1);
        let span = regression
            .windows
            .analysis_end
            .saturating_sub(regression.windows.analysis_start)
            .max(1);
        let dt = (span as f64 / a_len as f64).max(1.0);
        let h_len = regression.windows.historic_len();
        let start_time = regression.windows.analysis_start as f64 - h_len as f64 * dt;
        let deploy_index = ((change.deploy_time as f64 - start_time) / dt).round();
        if deploy_index <= 0.0 || deploy_index as usize >= n - 1 {
            return Ok(0.0);
        }
        let step: Vec<f64> = (0..n)
            .map(|i| if (i as f64) < deploy_index { 0.0 } else { 1.0 })
            .collect();
        Ok(pearson(values, &step).map(|c| c.max(0.0)).unwrap_or(0.0))
    }
}

/// The Table 2 computation: `L/R` where `R` is the regression's gCPU change
/// and `L` is the gCPU change of samples involving both the regressed
/// subroutine and any modified subroutine. Clamped to `[0, 1]`; zero when
/// the regression's change is non-positive.
pub fn gcpu_attribution(
    samples_before: &[StackSample],
    samples_after: &[StackSample],
    target: FrameId,
    modified: &[FrameId],
) -> f64 {
    let frac = |samples: &[StackSample], also_modified: bool| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let count = samples
            .iter()
            .filter(|s| {
                s.contains(target) && (!also_modified || modified.iter().any(|&m| s.contains(m)))
            })
            .count();
        count as f64 / samples.len() as f64
    };
    let r = frac(samples_after, false) - frac(samples_before, false);
    if r <= 0.0 {
        return 0.0;
    }
    let l = frac(samples_after, true) - frac(samples_before, true);
    (l / r).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RegressionKind;
    use fbd_changelog::ChangeKind;
    use fbd_tsdb::{MetricKind, SeriesId, WindowedData};

    fn sample(trace: &[FrameId]) -> StackSample {
        StackSample {
            trace: trace.to_vec(),
            timestamp: 0,
            server: 0,
            metadata: vec![],
        }
    }

    /// Table 2: frames A=1, B=2, C=3, D=4, E=5, F=6, G=7.
    fn table2_samples() -> (Vec<StackSample>, Vec<StackSample>) {
        let mut before = Vec::new();
        // gCPU units of 0.01 over 100 samples.
        for _ in 0..1 {
            before.push(sample(&[1, 2, 3])); // A->B->C: 0.01
        }
        for _ in 0..2 {
            before.push(sample(&[2, 5, 6])); // B->E->F: 0.02
        }
        for _ in 0..2 {
            before.push(sample(&[4, 2, 3])); // D->B->C: 0.02
        }
        for _ in 0..4 {
            before.push(sample(&[2, 5, 4])); // B->E->D: 0.04
        }
        while before.len() < 100 {
            before.push(sample(&[9])); // Unrelated.
        }
        let mut after = Vec::new();
        for _ in 0..2 {
            after.push(sample(&[1, 2, 3])); // 0.02
        }
        for _ in 0..3 {
            after.push(sample(&[2, 5, 6])); // 0.03
        }
        for _ in 0..2 {
            after.push(sample(&[4, 2, 3])); // 0.02
        }
        for _ in 0..6 {
            after.push(sample(&[2, 5, 4])); // 0.06
        }
        for _ in 0..1 {
            after.push(sample(&[7, 2, 4])); // G->B->D: 0.01 (new)
        }
        while after.len() < 100 {
            after.push(sample(&[9]));
        }
        (before, after)
    }

    #[test]
    fn table2_worked_example_gives_80_percent() {
        let (before, after) = table2_samples();
        // The change modifies A (=1) and E (=5); the regression is in B (=2).
        let score = gcpu_attribution(&before, &after, 2, &[1, 5]);
        assert!((score - 0.8).abs() < 1e-9, "score = {score}");
    }

    #[test]
    fn attribution_zero_when_no_regression() {
        let (before, _) = table2_samples();
        let score = gcpu_attribution(&before, &before, 2, &[1, 5]);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn attribution_full_when_change_explains_everything() {
        let before = vec![sample(&[9]); 10];
        let after: Vec<StackSample> = (0..10)
            .map(|i| {
                if i < 5 {
                    sample(&[1, 2]) // Modified (1) invoking regressed (2).
                } else {
                    sample(&[9])
                }
            })
            .collect();
        assert_eq!(gcpu_attribution(&before, &after, 2, &[1]), 1.0);
    }

    fn regression_with_step(change_time: u64) -> Regression {
        // 100 historic + 100 analysis values, step at index 150.
        let historic = vec![1.0; 100];
        let analysis: Vec<f64> = (0..100).map(|i| if i >= 50 { 2.0 } else { 1.0 }).collect();
        Regression {
            series: SeriesId::new("svc", MetricKind::GCpu, "hot_path"),
            kind: RegressionKind::ShortTerm,
            change_index: 149,
            change_time,
            mean_before: 1.0,
            mean_after: 2.0,
            windows: WindowedData::from_regions(&historic, &analysis, &[], 10_000, 10_100),
            root_cause_candidates: vec![],
        }
    }

    fn change(id: ChangeId, deploy_time: u64, subs: &[&str], title: &str) -> Change {
        Change {
            id,
            kind: ChangeKind::Code,
            service: "svc".into(),
            deploy_time,
            modified_subroutines: subs.iter().map(|s| s.to_string()).collect(),
            title: title.into(),
            summary: String::new(),
            files: vec![],
            author: "dev".into(),
        }
    }

    #[test]
    fn ranks_the_culprit_first() {
        let mut log = ChangeLog::new();
        // The culprit modifies the regressed subroutine right at the step
        // (the step is at analysis index 50 -> time 10_050).
        log.record(change(
            1,
            10_049,
            &["hot_path"],
            "Add expensive check to hot_path",
        ));
        log.record(change(2, 10_020, &["elsewhere"], "Unrelated logging tweak"));
        let analyzer = RootCauseAnalyzer {
            factor_weights: [0.0, 0.5, 0.5],
            lookback: 10_000,
            confidence_threshold: 0.1,
            top_k: 3,
        };
        let r = regression_with_step(10_050);
        let ranked = analyzer.analyze(&r, &log, &RcaContext::default()).unwrap();
        assert!(!ranked.is_empty());
        assert_eq!(ranked[0].change_id, 1);
    }

    #[test]
    fn low_confidence_suggests_nothing() {
        let mut log = ChangeLog::new();
        log.record(change(1, 9_000, &["zzz"], "qqq"));
        let analyzer = RootCauseAnalyzer {
            factor_weights: [0.4, 0.3, 0.3],
            lookback: 10_000,
            confidence_threshold: 0.9,
            top_k: 3,
        };
        let r = regression_with_step(10_050);
        let ranked = analyzer.analyze(&r, &log, &RcaContext::default()).unwrap();
        assert!(ranked.is_empty());
    }

    #[test]
    fn no_candidates_in_window() {
        let log = ChangeLog::new();
        let analyzer = RootCauseAnalyzer {
            factor_weights: [0.4, 0.3, 0.3],
            lookback: 1_000,
            confidence_threshold: 0.0,
            top_k: 3,
        };
        let r = regression_with_step(10_050);
        assert!(analyzer
            .analyze(&r, &log, &RcaContext::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn text_similarity_breaks_ties() {
        // Neither change modifies the subroutine directly ("loosening
        // constraints for foo" example, §5.6): text must decide.
        let mut log = ChangeLog::new();
        log.record(change(1, 10_049, &[], "Loosening constraints for hot_path"));
        log.record(change(2, 10_049, &[], "Database schema migration"));
        let analyzer = RootCauseAnalyzer {
            factor_weights: [0.0, 1.0, 0.0],
            lookback: 10_000,
            confidence_threshold: 0.01,
            top_k: 3,
        };
        let r = regression_with_step(10_050);
        let ranked = analyzer.analyze(&r, &log, &RcaContext::default()).unwrap();
        assert_eq!(ranked[0].change_id, 1);
        assert!(ranked[0].factors[1] > 0.0);
    }

    #[test]
    fn top_k_is_respected() {
        let mut log = ChangeLog::new();
        for id in 1..=10 {
            log.record(change(id, 10_040, &["hot_path"], "touch hot_path"));
        }
        let analyzer = RootCauseAnalyzer {
            factor_weights: [0.0, 1.0, 0.0],
            lookback: 10_000,
            confidence_threshold: 0.0,
            top_k: 3,
        };
        let r = regression_with_step(10_050);
        let ranked = analyzer.analyze(&r, &log, &RcaContext::default()).unwrap();
        assert_eq!(ranked.len(), 3);
    }
}
