//! Cross-scan per-series artifact cache.
//!
//! The monitoring scheduler re-scans every series on a cadence, and between
//! rounds most series' windows are unchanged (no new samples arrived) or
//! merely shifted by a few points. The expensive per-series artifacts —
//! the ACF seasonality search, the STL decomposition / Loess trend, and the
//! SAX reference encoding of the historic window — are pure functions of
//! their inputs, so they can be reused across rounds whenever the inputs
//! are bit-identical.
//!
//! # Keying and invalidation
//!
//! Every cached artifact is keyed by a 64-bit content fingerprint of the
//! exact input slice (`f64::to_bits` of every sample plus the length,
//! mixed SplitMix-style) together with *all* parameters of the computation
//! (periods, thresholds, bucket counts — floats by `to_bits`). A lookup
//! hits only on exact key equality, and a store replaces the series' slot
//! for that artifact kind, so memory is bounded at one entry per artifact
//! per live series and stale values are evicted by the next differing scan
//! rather than by a clock.
//!
//! # Determinism
//!
//! A hit returns a value computed earlier by the same pure function on
//! bit-identical inputs, so scan output is unchanged by caching — with or
//! without hits, across thread counts, and across rounds. The map is a
//! `BTreeMap` (deterministic iteration, per the workspace hash-order
//! invariant) behind a `Mutex`, and per-series keys never interact, so
//! worker interleaving cannot influence values. Hit/miss counters are
//! telemetry only.

use crate::types::Regression;
use crate::Result;
use fbd_stats::acf::{self, Seasonality};
use fbd_stats::sax::{encode_in_range, SaxConfig, SaxString};
use fbd_stats::stl::{decompose, loess_smooth_uniform, StlConfig, StlDecomposition};
use fbd_tsdb::SeriesId;
use fbd_sync::{LockDomain, OrderedMutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Content fingerprint of a sample slice: length plus every sample's bit
/// pattern, mixed through a SplitMix64-style avalanche and folded FNV-style.
/// Bit-exact inputs (and only those, up to 64-bit collisions) share a
/// fingerprint.
fn fingerprint(data: &[f64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (data.len() as u64);
    for v in data {
        let mut z = v.to_bits().wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        h = (h ^ z).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Key of a cached seasonality search: data fingerprint, `min_period`,
/// `max_lag`, and the ACF threshold bits.
type SeasonalityKey = (u64, usize, usize, u64);
/// Key of a cached trend/decomposition: data fingerprint and STL period
/// (0 encodes the no-seasonality Loess fallback).
type TrendKey = (u64, usize);
/// Key of a cached SAX reference: historic fingerprint, range bits, bucket
/// count, and validity-fraction bits.
type SaxKey = (u64, u64, u64, usize, u64);

/// Key identifying a candidate regression for filter-verdict reuse: the
/// fingerprints of all three window regions plus every change field the
/// filters read. Two candidates with equal keys are bit-identical inputs to
/// the went-away and seasonality filters (up to 64-bit fingerprint
/// collisions on the window content).
pub type CandidateKey = (u64, u64, u64, usize, u64, u64, u64);

/// The [`CandidateKey`] of a candidate regression.
pub fn candidate_key(r: &Regression) -> CandidateKey {
    (
        fingerprint(r.windows.historic()),
        fingerprint(r.windows.analysis()),
        fingerprint(r.windows.extended()),
        r.change_index,
        r.change_time,
        r.mean_before.to_bits(),
        r.mean_after.to_bits(),
    )
}

/// The artifacts cached for one series — one replaceable slot per kind.
#[derive(Debug, Default, Clone)]
struct SeriesArtifacts {
    /// Round number of the last store into any slot; drives eviction.
    last_round: u64,
    seasonality: Option<(SeasonalityKey, Option<Seasonality>)>,
    trend: Option<(TrendKey, Vec<f64>)>,
    decomposition: Option<(TrendKey, StlDecomposition)>,
    sax_reference: Option<(SaxKey, SaxString)>,
    /// Memoized `keep` decisions of the went-away and seasonality filters
    /// for the series' last candidate. The filters are pure functions of
    /// the candidate (windows + change fields, all in the key), so on the
    /// scheduler cadence — where an unchanged watermark replays the same
    /// candidate round after round — the verdict is replayed too.
    went_away_keep: Option<(CandidateKey, bool)>,
    seasonality_keep: Option<(CandidateKey, bool)>,
}

/// Hit/miss telemetry for a [`ScanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Series entries dropped by the capacity bound.
    pub evicted: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-series cross-scan cache of seasonality, STL, and SAX artifacts.
///
/// Owned by the pipeline so it persists across [`crate::scheduler`] rounds;
/// shared with the parallel detection workers by reference (the interior
/// `Mutex` makes it `Sync`). See the module docs for the keying,
/// invalidation, and determinism arguments.
#[derive(Debug)]
pub struct ScanCache {
    /// Ranked `scan-cache` (a leaf) in `LOCK_ORDER.manifest`: no other
    /// supervised lock may be acquired while this guard is live.
    inner: OrderedMutex<BTreeMap<SeriesId, SeriesArtifacts>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    /// Maximum retained series entries (0 disables the bound).
    capacity: usize,
    /// Monotone round counter; stores stamp entries with the current value.
    round: AtomicU64,
}

/// Default bound on retained series entries: comfortably above any single
/// round's working set while capping steady-state memory on long-lived
/// pipelines that churn through many distinct series.
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

impl Default for ScanCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl ScanCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache retaining at most `capacity` series entries
    /// (0 disables the bound).
    pub fn with_capacity(capacity: usize) -> Self {
        ScanCache {
            inner: OrderedMutex::new(LockDomain::ScanCache, BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            capacity,
            round: AtomicU64::new(0),
        }
    }

    /// Advances the round counter and enforces the capacity bound.
    ///
    /// Called by the pipeline at the start of each scan round, outside the
    /// worker fan-out. Eviction happens only here — never inside a store —
    /// so the victim set is a pure function of which rounds touched which
    /// series, independent of worker interleaving: entries are dropped
    /// oldest round first, ties in `SeriesId` order, until at most
    /// `capacity` remain. Within a round the map may transiently exceed the
    /// bound by the number of newly seen series.
    pub fn note_round(&self) {
        self.round.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return;
        }
        let mut guard = self.inner.lock();
        let mut excess = guard.len().saturating_sub(self.capacity);
        while excess > 0 {
            let victim = guard
                .iter()
                .min_by(|(ida, a), (idb, b)| {
                    a.last_round.cmp(&b.last_round).then_with(|| ida.cmp(idb))
                })
                .map(|(id, _)| id.clone());
            let Some(id) = victim else {
                break;
            };
            guard.remove(&id);
            self.evicted.fetch_add(1, Ordering::Relaxed);
            excess -= 1;
        }
    }

    /// The configured capacity bound (0 means unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// Resets the hit/miss/eviction counters (entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evicted.store(0, Ordering::Relaxed);
    }

    /// Number of series with at least one cached artifact.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no series has cached artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Cached [`acf::find_seasonality`].
    pub fn seasonality(
        &self,
        series: &SeriesId,
        data: &[f64],
        min_period: usize,
        max_lag: usize,
        threshold: f64,
    ) -> Result<Option<Seasonality>> {
        let key = (fingerprint(data), min_period, max_lag, threshold.to_bits());
        if let Some(cached) = self.lookup(series, |a| {
            a.seasonality.as_ref().filter(|(k, _)| *k == key).map(|(_, v)| *v)
        }) {
            return Ok(cached);
        }
        let computed = acf::find_seasonality(data, min_period, max_lag, threshold)?;
        self.store(series, |a| a.seasonality = Some((key, computed)));
        Ok(computed)
    }

    /// Cached long-term trend: the STL trend for `period >= 2` (via
    /// [`StlConfig::for_period`]), or the wide uniform Loess fallback
    /// (fraction [`crate::long_term::TREND_FRACTION`]) when `period == 0`
    /// — mirroring the long-term detector's trend selection exactly.
    ///
    /// The STL case is answered from the [`Self::decomposition`] slot: the
    /// seasonality filter decomposes the same `(data, period)` later in the
    /// round, so sharing one slot means one STL run per series per round
    /// instead of two. The trend slot only holds the Loess fallback.
    pub fn trend(&self, series: &SeriesId, data: &[f64], period: usize) -> Result<Vec<f64>> {
        if period >= 2 {
            return Ok(self.decomposition(series, data, period)?.trend);
        }
        let key = (fingerprint(data), period);
        if let Some(cached) = self.lookup(series, |a| {
            a.trend.as_ref().filter(|(k, _)| *k == key).map(|(_, t)| t.clone())
        }) {
            return Ok(cached);
        }
        let computed = loess_smooth_uniform(data, crate::long_term::TREND_FRACTION)?;
        self.store(series, |a| a.trend = Some((key, computed.clone())));
        Ok(computed)
    }

    /// Cached full STL decomposition at [`StlConfig::for_period`]`(period)`
    /// (the seasonality detector needs the seasonal and residual components
    /// too, not just the trend).
    pub fn decomposition(
        &self,
        series: &SeriesId,
        data: &[f64],
        period: usize,
    ) -> Result<StlDecomposition> {
        let key = (fingerprint(data), period);
        if let Some(cached) = self.lookup(series, |a| {
            a.decomposition
                .as_ref()
                .filter(|(k, _)| *k == key)
                .map(|(_, d)| d.clone())
        }) {
            return Ok(cached);
        }
        let computed = decompose(data, StlConfig::for_period(period))?;
        self.store(series, |a| a.decomposition = Some((key, computed.clone())));
        Ok(computed)
    }

    /// Cached SAX reference encoding of the historic window
    /// ([`encode_in_range`]).
    pub fn sax_reference(
        &self,
        series: &SeriesId,
        historic: &[f64],
        range_min: f64,
        range_max: f64,
        config: SaxConfig,
    ) -> Result<SaxString> {
        let key = (
            fingerprint(historic),
            range_min.to_bits(),
            range_max.to_bits(),
            config.buckets,
            config.validity_fraction.to_bits(),
        );
        if let Some(cached) = self.lookup(series, |a| {
            a.sax_reference
                .as_ref()
                .filter(|(k, _)| *k == key)
                .map(|(_, s)| s.clone())
        }) {
            return Ok(cached);
        }
        let computed = encode_in_range(historic, range_min, range_max, config)?;
        self.store(series, |a| a.sax_reference = Some((key, computed.clone())));
        Ok(computed)
    }

    /// Memoized went-away `keep` decision for a candidate, or `None` on a
    /// key mismatch (the caller evaluates and stores).
    pub fn went_away_keep(&self, series: &SeriesId, key: CandidateKey) -> Option<bool> {
        self.lookup(series, |a| {
            a.went_away_keep.filter(|(k, _)| *k == key).map(|(_, keep)| keep)
        })
    }

    /// Stores a went-away `keep` decision for the candidate identified by
    /// `key`.
    pub fn store_went_away_keep(&self, series: &SeriesId, key: CandidateKey, keep: bool) {
        self.store(series, |a| a.went_away_keep = Some((key, keep)));
    }

    /// Memoized seasonality-filter `keep` decision for a candidate.
    pub fn seasonality_keep(&self, series: &SeriesId, key: CandidateKey) -> Option<bool> {
        self.lookup(series, |a| {
            a.seasonality_keep.filter(|(k, _)| *k == key).map(|(_, keep)| keep)
        })
    }

    /// Stores a seasonality-filter `keep` decision for the candidate
    /// identified by `key`.
    pub fn store_seasonality_keep(&self, series: &SeriesId, key: CandidateKey, keep: bool) {
        self.store(series, |a| a.seasonality_keep = Some((key, keep)));
    }

    /// One locked lookup; counts a hit or miss. Computation never happens
    /// under the lock.
    fn lookup<T>(&self, series: &SeriesId, get: impl Fn(&SeriesArtifacts) -> Option<T>) -> Option<T> {
        let found = self.inner.lock().get(series).and_then(get);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// One locked replace-on-mismatch store into the series' slot. Stamps
    /// the entry with the current round so eviction can order by recency.
    fn store(&self, series: &SeriesId, put: impl FnOnce(&mut SeriesArtifacts)) {
        let round = self.round.load(Ordering::Relaxed);
        let mut guard = self.inner.lock();
        let entry = guard.entry(series.clone()).or_default();
        entry.last_round = round;
        put(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_tsdb::MetricKind;

    fn sid(name: &str) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, name)
    }

    fn sine(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 / period as f64 * std::f64::consts::TAU).sin())
            .collect()
    }

    #[test]
    fn fingerprint_sensitive_to_content_and_length() {
        let a = vec![1.0, 2.0, 3.0];
        let mut b = a.clone();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        b[2] = 3.0000000001;
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&a[..2]));
        // -0.0 and 0.0 differ bitwise and must not collide.
        assert_ne!(fingerprint(&[0.0]), fingerprint(&[-0.0]));
    }

    #[test]
    fn second_identical_call_hits_and_matches() {
        let cache = ScanCache::new();
        let data = sine(240, 24);
        let s = sid("a");
        let first = cache.seasonality(&s, &data, 2, 30, 0.4).unwrap();
        let second = cache.seasonality(&s, &data, 2, 30, 0.4).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, acf::find_seasonality(&data, 2, 30, 0.4).unwrap());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn changed_data_or_params_invalidate() {
        let cache = ScanCache::new();
        let s = sid("a");
        let data = sine(240, 24);
        cache.seasonality(&s, &data, 2, 30, 0.4).unwrap();
        // Different threshold: miss.
        cache.seasonality(&s, &data, 2, 30, 0.5).unwrap();
        // Appended data: miss (the slot now holds the new key).
        let mut longer = data.clone();
        longer.push(0.0);
        cache.seasonality(&s, &longer, 2, 30, 0.5).unwrap();
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 3);
        // The latest key is the live one.
        cache.seasonality(&s, &longer, 2, 30, 0.5).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn trend_matches_uncached_paths() {
        let cache = ScanCache::new();
        let s = sid("t");
        let data = sine(240, 24);
        // STL path.
        let cached = cache.trend(&s, &data, 24).unwrap();
        let direct = decompose(&data, StlConfig::for_period(24)).unwrap().trend;
        assert_eq!(cached, direct);
        // Loess fallback path (period 0) — different key, so a miss.
        let cached = cache.trend(&s, &data, 0).unwrap();
        let direct = loess_smooth_uniform(&data, crate::long_term::TREND_FRACTION).unwrap();
        for (c, d) in cached.iter().zip(&direct) {
            assert_eq!(c.to_bits(), d.to_bits());
        }
        // Re-request the Loess trend: hit, identical bits.
        let again = cache.trend(&s, &data, 0).unwrap();
        for (c, d) in again.iter().zip(&cached) {
            assert_eq!(c.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn series_slots_are_independent() {
        let cache = ScanCache::new();
        let data = sine(240, 24);
        cache.trend(&sid("a"), &data, 24).unwrap();
        cache.trend(&sid("b"), &data, 24).unwrap();
        // Same data, different series: each series misses once.
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_round_first() {
        let cache = ScanCache::with_capacity(2);
        let data = sine(240, 24);
        // Round 1: a and b. Round 2: c, plus a refresh of a.
        cache.note_round();
        cache.trend(&sid("a"), &data, 24).unwrap();
        cache.trend(&sid("b"), &data, 24).unwrap();
        cache.note_round();
        cache.trend(&sid("c"), &data, 24).unwrap();
        cache.trend(&sid("a"), &data, 24).unwrap();
        assert_eq!(cache.len(), 3); // Transient overshoot within the round.
        // Round 3 enforces the bound: b (round 1) is the oldest entry.
        cache.note_round();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evicted, 1);
        cache.trend(&sid("a"), &data, 24).unwrap();
        cache.trend(&sid("c"), &data, 24).unwrap();
        cache.trend(&sid("b"), &data, 24).unwrap();
        // a and c survived (hits); b was evicted (miss).
        assert_eq!(cache.stats().hits, 3); // a's round-2 hit + these two.
    }

    #[test]
    fn capacity_ties_break_in_series_id_order() {
        let cache = ScanCache::with_capacity(1);
        let data = sine(240, 24);
        cache.note_round();
        cache.trend(&sid("b"), &data, 24).unwrap();
        cache.trend(&sid("a"), &data, 24).unwrap();
        cache.trend(&sid("c"), &data, 24).unwrap();
        cache.note_round();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evicted, 2);
        // Same round stamps: the smallest SeriesIds go first, "c" survives.
        cache.trend(&sid("c"), &data, 24).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_disables_the_bound() {
        let cache = ScanCache::with_capacity(0);
        let data = sine(240, 24);
        for name in ["a", "b", "c", "d"] {
            cache.trend(&sid(name), &data, 24).unwrap();
            cache.note_round();
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evicted, 0);
    }

    #[test]
    fn sax_reference_round_trip() {
        let cache = ScanCache::new();
        let s = sid("x");
        let historic: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64 * 0.01).collect();
        let cfg = SaxConfig::default();
        let a = cache.sax_reference(&s, &historic, 0.9, 1.2, cfg).unwrap();
        let b = cache.sax_reference(&s, &historic, 0.9, 1.2, cfg).unwrap();
        assert_eq!(a, b);
        let direct = encode_in_range(&historic, 0.9, 1.2, cfg).unwrap();
        assert_eq!(a, direct);
        assert_eq!(cache.stats().hits, 1);
    }
}
