//! Cross-scan per-series artifact cache.
//!
//! The monitoring scheduler re-scans every series on a cadence, and between
//! rounds most series' windows are unchanged (no new samples arrived) or
//! merely shifted by a few points. The expensive per-series artifacts —
//! the ACF seasonality search, the STL decomposition / Loess trend, and the
//! SAX reference encoding of the historic window — are pure functions of
//! their inputs, so they can be reused across rounds whenever the inputs
//! are bit-identical.
//!
//! # Keying and invalidation
//!
//! Every cached artifact is keyed by a 64-bit content fingerprint of the
//! exact input slice (`f64::to_bits` of every sample plus the length,
//! mixed SplitMix-style) together with *all* parameters of the computation
//! (periods, thresholds, bucket counts — floats by `to_bits`). A lookup
//! hits only on exact key equality, and a store replaces the series' slot
//! for that artifact kind, so memory is bounded at one entry per artifact
//! per live series and stale values are evicted by the next differing scan
//! rather than by a clock.
//!
//! # Determinism
//!
//! A hit returns a value computed earlier by the same pure function on
//! bit-identical inputs, so scan output is unchanged by caching — with or
//! without hits, across thread counts, and across rounds. The map is a
//! `BTreeMap` (deterministic iteration, per the workspace hash-order
//! invariant) behind a `Mutex`, and per-series keys never interact, so
//! worker interleaving cannot influence values. Hit/miss counters are
//! telemetry only.

use crate::Result;
use fbd_stats::acf::{self, Seasonality};
use fbd_stats::sax::{encode_in_range, SaxConfig, SaxString};
use fbd_stats::stl::{decompose, loess_smooth_uniform, StlConfig, StlDecomposition};
use fbd_tsdb::SeriesId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Content fingerprint of a sample slice: length plus every sample's bit
/// pattern, mixed through a SplitMix64-style avalanche and folded FNV-style.
/// Bit-exact inputs (and only those, up to 64-bit collisions) share a
/// fingerprint.
fn fingerprint(data: &[f64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ (data.len() as u64);
    for v in data {
        let mut z = v.to_bits().wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        h = (h ^ z).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Key of a cached seasonality search: data fingerprint, `min_period`,
/// `max_lag`, and the ACF threshold bits.
type SeasonalityKey = (u64, usize, usize, u64);
/// Key of a cached trend/decomposition: data fingerprint and STL period
/// (0 encodes the no-seasonality Loess fallback).
type TrendKey = (u64, usize);
/// Key of a cached SAX reference: historic fingerprint, range bits, bucket
/// count, and validity-fraction bits.
type SaxKey = (u64, u64, u64, usize, u64);

/// The artifacts cached for one series — one replaceable slot per kind.
#[derive(Debug, Default, Clone)]
struct SeriesArtifacts {
    seasonality: Option<(SeasonalityKey, Option<Seasonality>)>,
    trend: Option<(TrendKey, Vec<f64>)>,
    decomposition: Option<(TrendKey, StlDecomposition)>,
    sax_reference: Option<(SaxKey, SaxString)>,
}

/// Hit/miss telemetry for a [`ScanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-series cross-scan cache of seasonality, STL, and SAX artifacts.
///
/// Owned by the pipeline so it persists across [`crate::scheduler`] rounds;
/// shared with the parallel detection workers by reference (the interior
/// `Mutex` makes it `Sync`). See the module docs for the keying,
/// invalidation, and determinism arguments.
#[derive(Debug, Default)]
pub struct ScanCache {
    inner: Mutex<BTreeMap<SeriesId, SeriesArtifacts>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Resets the hit/miss counters (entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Number of series with at least one cached artifact.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no series has cached artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Cached [`acf::find_seasonality`].
    pub fn seasonality(
        &self,
        series: &SeriesId,
        data: &[f64],
        min_period: usize,
        max_lag: usize,
        threshold: f64,
    ) -> Result<Option<Seasonality>> {
        let key = (fingerprint(data), min_period, max_lag, threshold.to_bits());
        if let Some(cached) = self.lookup(series, |a| {
            a.seasonality.as_ref().filter(|(k, _)| *k == key).map(|(_, v)| *v)
        }) {
            return Ok(cached);
        }
        let computed = acf::find_seasonality(data, min_period, max_lag, threshold)?;
        self.store(series, |a| a.seasonality = Some((key, computed)));
        Ok(computed)
    }

    /// Cached long-term trend: the STL trend for `period >= 2` (via
    /// [`StlConfig::for_period`]), or the wide uniform Loess fallback
    /// (fraction 0.3) when `period == 0` — mirroring the long-term
    /// detector's trend selection exactly.
    pub fn trend(&self, series: &SeriesId, data: &[f64], period: usize) -> Result<Vec<f64>> {
        let key = (fingerprint(data), period);
        if let Some(cached) = self.lookup(series, |a| {
            a.trend.as_ref().filter(|(k, _)| *k == key).map(|(_, t)| t.clone())
        }) {
            return Ok(cached);
        }
        let computed = if period >= 2 {
            decompose(data, StlConfig::for_period(period))?.trend
        } else {
            loess_smooth_uniform(data, 0.3)?
        };
        self.store(series, |a| a.trend = Some((key, computed.clone())));
        Ok(computed)
    }

    /// Cached full STL decomposition at [`StlConfig::for_period`]`(period)`
    /// (the seasonality detector needs the seasonal and residual components
    /// too, not just the trend).
    pub fn decomposition(
        &self,
        series: &SeriesId,
        data: &[f64],
        period: usize,
    ) -> Result<StlDecomposition> {
        let key = (fingerprint(data), period);
        if let Some(cached) = self.lookup(series, |a| {
            a.decomposition
                .as_ref()
                .filter(|(k, _)| *k == key)
                .map(|(_, d)| d.clone())
        }) {
            return Ok(cached);
        }
        let computed = decompose(data, StlConfig::for_period(period))?;
        self.store(series, |a| a.decomposition = Some((key, computed.clone())));
        Ok(computed)
    }

    /// Cached SAX reference encoding of the historic window
    /// ([`encode_in_range`]).
    pub fn sax_reference(
        &self,
        series: &SeriesId,
        historic: &[f64],
        range_min: f64,
        range_max: f64,
        config: SaxConfig,
    ) -> Result<SaxString> {
        let key = (
            fingerprint(historic),
            range_min.to_bits(),
            range_max.to_bits(),
            config.buckets,
            config.validity_fraction.to_bits(),
        );
        if let Some(cached) = self.lookup(series, |a| {
            a.sax_reference
                .as_ref()
                .filter(|(k, _)| *k == key)
                .map(|(_, s)| s.clone())
        }) {
            return Ok(cached);
        }
        let computed = encode_in_range(historic, range_min, range_max, config)?;
        self.store(series, |a| a.sax_reference = Some((key, computed.clone())));
        Ok(computed)
    }

    /// One locked lookup; counts a hit or miss. Computation never happens
    /// under the lock.
    fn lookup<T>(&self, series: &SeriesId, get: impl Fn(&SeriesArtifacts) -> Option<T>) -> Option<T> {
        let found = self.inner.lock().get(series).and_then(get);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// One locked replace-on-mismatch store into the series' slot.
    fn store(&self, series: &SeriesId, put: impl FnOnce(&mut SeriesArtifacts)) {
        let mut guard = self.inner.lock();
        put(guard.entry(series.clone()).or_default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbd_tsdb::MetricKind;

    fn sid(name: &str) -> SeriesId {
        SeriesId::new("svc", MetricKind::GCpu, name)
    }

    fn sine(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 / period as f64 * std::f64::consts::TAU).sin())
            .collect()
    }

    #[test]
    fn fingerprint_sensitive_to_content_and_length() {
        let a = vec![1.0, 2.0, 3.0];
        let mut b = a.clone();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        b[2] = 3.0000000001;
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&a[..2]));
        // -0.0 and 0.0 differ bitwise and must not collide.
        assert_ne!(fingerprint(&[0.0]), fingerprint(&[-0.0]));
    }

    #[test]
    fn second_identical_call_hits_and_matches() {
        let cache = ScanCache::new();
        let data = sine(240, 24);
        let s = sid("a");
        let first = cache.seasonality(&s, &data, 2, 30, 0.4).unwrap();
        let second = cache.seasonality(&s, &data, 2, 30, 0.4).unwrap();
        assert_eq!(first, second);
        assert_eq!(first, acf::find_seasonality(&data, 2, 30, 0.4).unwrap());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn changed_data_or_params_invalidate() {
        let cache = ScanCache::new();
        let s = sid("a");
        let data = sine(240, 24);
        cache.seasonality(&s, &data, 2, 30, 0.4).unwrap();
        // Different threshold: miss.
        cache.seasonality(&s, &data, 2, 30, 0.5).unwrap();
        // Appended data: miss (the slot now holds the new key).
        let mut longer = data.clone();
        longer.push(0.0);
        cache.seasonality(&s, &longer, 2, 30, 0.5).unwrap();
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 3);
        // The latest key is the live one.
        cache.seasonality(&s, &longer, 2, 30, 0.5).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn trend_matches_uncached_paths() {
        let cache = ScanCache::new();
        let s = sid("t");
        let data = sine(240, 24);
        // STL path.
        let cached = cache.trend(&s, &data, 24).unwrap();
        let direct = decompose(&data, StlConfig::for_period(24)).unwrap().trend;
        assert_eq!(cached, direct);
        // Loess fallback path (period 0) — different key, so a miss.
        let cached = cache.trend(&s, &data, 0).unwrap();
        let direct = loess_smooth_uniform(&data, 0.3).unwrap();
        for (c, d) in cached.iter().zip(&direct) {
            assert_eq!(c.to_bits(), d.to_bits());
        }
        // Re-request the Loess trend: hit, identical bits.
        let again = cache.trend(&s, &data, 0).unwrap();
        for (c, d) in again.iter().zip(&cached) {
            assert_eq!(c.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn series_slots_are_independent() {
        let cache = ScanCache::new();
        let data = sine(240, 24);
        cache.trend(&sid("a"), &data, 24).unwrap();
        cache.trend(&sid("b"), &data, 24).unwrap();
        // Same data, different series: each series misses once.
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn sax_reference_round_trip() {
        let cache = ScanCache::new();
        let s = sid("x");
        let historic: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64 * 0.01).collect();
        let cfg = SaxConfig::default();
        let a = cache.sax_reference(&s, &historic, 0.9, 1.2, cfg).unwrap();
        let b = cache.sax_reference(&s, &historic, 0.9, 1.2, cfg).unwrap();
        assert_eq!(a, b);
        let direct = encode_in_range(&historic, 0.9, 1.2, cfg).unwrap();
        assert_eq!(a, direct);
        assert_eq!(cache.stats().hits, 1);
    }
}
